//! Integration: market generation → eviction statistics → provisioning
//! strategies → trace-driven simulation, asserting the paper's headline
//! claims at small scale.

use hourglass::cloud::tracegen;
use hourglass::core::strategies::{
    DeadlineProtected, EagerStrategy, HourglassStrategy, OnDemandStrategy, ProteusStrategy,
};

use hourglass::sim::job::{PaperJob, ReloadMode};
use hourglass::sim::runner::{derive_eviction_models, run_job, SimulationSetup};
use hourglass::sim::Experiment;

struct World {
    market: hourglass::cloud::Market,
    models: Vec<(
        hourglass::cloud::InstanceType,
        hourglass::cloud::EvictionModel,
    )>,
}

fn world(seed: u64) -> World {
    let market = tracegen::simulation_market(seed).expect("market");
    let history = tracegen::history_market(seed).expect("market");
    let models = derive_eviction_models(&history, 24.0 * 3600.0, 600, seed).expect("models");
    World { market, models }
}

#[test]
fn headline_claim_hourglass_saves_without_missing() {
    let w = world(101);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::GraphColoring
        .description(50.0, ReloadMode::Fast)
        .expect("job");
    let summary = Experiment::new(40, 9)
        .run(&setup, &job, &HourglassStrategy::new())
        .expect("experiment");
    assert_eq!(summary.missed_pct, 0.0, "Hourglass must never miss");
    assert!(
        summary.savings_pct() > 30.0,
        "expected substantial savings, got {:.1}%",
        summary.savings_pct()
    );
}

#[test]
fn dp_variants_never_miss_but_save_less_at_tight_slack() {
    let w = world(102);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::GraphColoring
        .description(20.0, ReloadMode::Fast)
        .expect("job");
    let e = Experiment::new(30, 4);
    let hourglass = e
        .run(&setup, &job, &HourglassStrategy::new())
        .expect("experiment");
    let spoton_dp = e
        .run(&setup, &job, &DeadlineProtected::new(EagerStrategy))
        .expect("experiment");
    assert_eq!(hourglass.missed_pct, 0.0);
    assert_eq!(spoton_dp.missed_pct, 0.0, "+DP protects deadlines");
    assert!(
        hourglass.normalized_cost <= spoton_dp.normalized_cost + 0.05,
        "Hourglass ({:.3}) should be at least as cheap as SpotOn+DP ({:.3}) at tight slack",
        hourglass.normalized_cost,
        spoton_dp.normalized_cost
    );
}

#[test]
fn oblivious_strategies_miss_deadlines_on_long_jobs() {
    let w = world(103);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::GraphColoring
        .description(30.0, ReloadMode::Fast)
        .expect("job");
    let e = Experiment::new(30, 5);
    let eager = e.run(&setup, &job, &EagerStrategy).expect("experiment");
    let proteus = e.run(&setup, &job, &ProteusStrategy).expect("experiment");
    assert!(
        eager.missed_pct + proteus.missed_pct > 0.0,
        "greedy strategies should miss at least some deadlines on GC \
         (eager {:.0}%, proteus {:.0}%)",
        eager.missed_pct,
        proteus.missed_pct
    );
}

#[test]
fn on_demand_normalizes_to_about_one() {
    let w = world(104);
    let setup = SimulationSetup::new(&w.market, &w.models);
    for kind in PaperJob::ALL {
        let job = kind.description(50.0, ReloadMode::Fast).expect("job");
        let s = Experiment::new(10, 6)
            .run(&setup, &job, &OnDemandStrategy)
            .expect("experiment");
        assert!(
            (0.9..1.4).contains(&s.normalized_cost),
            "{}: normalized on-demand cost {:.3}",
            kind.name(),
            s.normalized_cost
        );
        assert_eq!(s.missed_pct, 0.0);
    }
}

#[test]
fn fast_reload_beats_repartition_reload_under_churn() {
    let w = world(105);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let fast = PaperJob::GraphColoring
        .description(60.0, ReloadMode::Fast)
        .expect("job");
    let slow = PaperJob::GraphColoring
        .description(
            60.0,
            ReloadMode::Repartition {
                partition_seconds: 900.0,
            },
        )
        .expect("job");
    let e = Experiment::new(30, 8);
    let s_fast = e
        .run(&setup, &fast, &HourglassStrategy::new())
        .expect("experiment");
    let s_slow = e
        .run(&setup, &slow, &HourglassStrategy::new())
        .expect("experiment");
    assert!(
        s_fast.normalized_cost < s_slow.normalized_cost,
        "fast reload {:.3} must beat repartition reload {:.3}",
        s_fast.normalized_cost,
        s_slow.normalized_cost
    );
}

#[test]
fn single_run_is_deterministic() {
    let w = world(106);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::PageRank
        .description(40.0, ReloadMode::Fast)
        .expect("job");
    let s = HourglassStrategy::new();
    let a = run_job(&setup, &job, &s, 123_456.0).expect("run");
    let b = run_job(&setup, &job, &s, 123_456.0).expect("run");
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.finish_time, b.finish_time);
    assert_eq!(a.evictions, b.evictions);
}
