//! Integration: market generation → eviction statistics → provisioning
//! strategies → trace-driven simulation, asserting the paper's headline
//! claims at small scale.

use hourglass::cloud::tracegen;
use hourglass::core::strategies::{
    DeadlineProtected, EagerStrategy, HourglassStrategy, OnDemandStrategy, ProteusStrategy,
};

use hourglass::sim::events::parse_jsonl;
use hourglass::sim::job::{PaperJob, ReloadMode};
use hourglass::sim::runner::{derive_eviction_models, run_job, SimulationSetup};
use hourglass::sim::{
    sweep_jobs, EventAggregate, EventSink, Experiment, FaultPlan, JsonlSink, SimEvent, VecSink,
};
use std::collections::BTreeMap;

struct World {
    market: hourglass::cloud::Market,
    models: Vec<(
        hourglass::cloud::InstanceType,
        hourglass::cloud::DynEviction,
    )>,
}

fn world(seed: u64) -> World {
    let market = tracegen::simulation_market(seed).expect("market");
    let history = tracegen::history_market(seed).expect("market");
    let models = derive_eviction_models(&history, 24.0 * 3600.0, 600, seed).expect("models");
    World { market, models }
}

#[test]
fn headline_claim_hourglass_saves_without_missing() {
    let w = world(101);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::GraphColoring
        .description(50.0, ReloadMode::Fast)
        .expect("job");
    let summary = Experiment::new(40, 9)
        .run(&setup, &job, &HourglassStrategy::new())
        .expect("experiment");
    assert_eq!(summary.missed_pct, 0.0, "Hourglass must never miss");
    assert!(
        summary.savings_pct() > 30.0,
        "expected substantial savings, got {:.1}%",
        summary.savings_pct()
    );
}

#[test]
fn dp_variants_never_miss_but_save_less_at_tight_slack() {
    let w = world(102);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::GraphColoring
        .description(20.0, ReloadMode::Fast)
        .expect("job");
    let e = Experiment::new(30, 4);
    let hourglass = e
        .run(&setup, &job, &HourglassStrategy::new())
        .expect("experiment");
    let spoton_dp = e
        .run(&setup, &job, &DeadlineProtected::new(EagerStrategy))
        .expect("experiment");
    assert_eq!(hourglass.missed_pct, 0.0);
    assert_eq!(spoton_dp.missed_pct, 0.0, "+DP protects deadlines");
    assert!(
        hourglass.normalized_cost <= spoton_dp.normalized_cost + 0.05,
        "Hourglass ({:.3}) should be at least as cheap as SpotOn+DP ({:.3}) at tight slack",
        hourglass.normalized_cost,
        spoton_dp.normalized_cost
    );
}

#[test]
fn oblivious_strategies_miss_deadlines_on_long_jobs() {
    let w = world(103);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::GraphColoring
        .description(30.0, ReloadMode::Fast)
        .expect("job");
    let e = Experiment::new(30, 5);
    let eager = e.run(&setup, &job, &EagerStrategy).expect("experiment");
    let proteus = e.run(&setup, &job, &ProteusStrategy).expect("experiment");
    assert!(
        eager.missed_pct + proteus.missed_pct > 0.0,
        "greedy strategies should miss at least some deadlines on GC \
         (eager {:.0}%, proteus {:.0}%)",
        eager.missed_pct,
        proteus.missed_pct
    );
}

#[test]
fn on_demand_normalizes_to_about_one() {
    let w = world(104);
    let setup = SimulationSetup::new(&w.market, &w.models);
    for kind in PaperJob::ALL {
        let job = kind.description(50.0, ReloadMode::Fast).expect("job");
        let s = Experiment::new(10, 6)
            .run(&setup, &job, &OnDemandStrategy)
            .expect("experiment");
        assert!(
            (0.9..1.4).contains(&s.normalized_cost),
            "{}: normalized on-demand cost {:.3}",
            kind.name(),
            s.normalized_cost
        );
        assert_eq!(s.missed_pct, 0.0);
    }
}

#[test]
fn fast_reload_beats_repartition_reload_under_churn() {
    let w = world(105);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let fast = PaperJob::GraphColoring
        .description(60.0, ReloadMode::Fast)
        .expect("job");
    let slow = PaperJob::GraphColoring
        .description(
            60.0,
            ReloadMode::Repartition {
                partition_seconds: 900.0,
            },
        )
        .expect("job");
    let e = Experiment::new(30, 8);
    let s_fast = e
        .run(&setup, &fast, &HourglassStrategy::new())
        .expect("experiment");
    let s_slow = e
        .run(&setup, &slow, &HourglassStrategy::new())
        .expect("experiment");
    assert!(
        s_fast.normalized_cost < s_slow.normalized_cost,
        "fast reload {:.3} must beat repartition reload {:.3}",
        s_fast.normalized_cost,
        s_slow.normalized_cost
    );
}

/// Audits the cost ledger through the event log: every `Bill` belongs to
/// the deployment currently held, bills never overlap, they are
/// contiguous within a tenure (setup, compute and spike-wait idling chain
/// without gaps), and no bill extends past the eviction instant or the
/// run's completion.
#[test]
fn event_log_satisfies_ledger_invariants() {
    let w = world(107);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::GraphColoring
        .description(30.0, ReloadMode::Fast)
        .expect("job");
    let strategy = HourglassStrategy::new();
    let starts = Experiment::new(25, 11).start_points(&setup, &job);
    let mut sink = VecSink::new();
    let outcomes = sweep_jobs(&setup, &job, &strategy, &starts, true, &mut sink).expect("sweep");

    let mut per_run: BTreeMap<u32, Vec<&SimEvent>> = BTreeMap::new();
    for (run, event) in &sink.events {
        per_run.entry(*run).or_default().push(event);
    }
    assert_eq!(per_run.len(), outcomes.len(), "every run must log events");

    let mut bills_audited = 0usize;
    let mut evicts_seen = 0u64;
    for (run, events) in &per_run {
        let mut tenure: Option<usize> = None;
        let mut prev_to: Option<f64> = None;
        let mut last_to = f64::NEG_INFINITY;
        let mut billed = 0.0;
        for event in events {
            match event {
                SimEvent::Acquire { pick, .. } => {
                    tenure = Some(*pick);
                    prev_to = None;
                }
                SimEvent::Bill {
                    t, to, pick, cost, ..
                } => {
                    let held = tenure.expect("bill outside any tenure");
                    assert_eq!(*pick, held, "run {run}: billed a config not held");
                    assert!(*to > *t - 1e-9, "run {run}: non-positive bill [{t},{to}]");
                    assert!(
                        *t >= last_to - 1e-9,
                        "run {run}: bill [{t},{to}] overlaps previous (ended {last_to})"
                    );
                    if let Some(p) = prev_to {
                        assert!(
                            (*t - p).abs() < 1e-6,
                            "run {run}: gap in tenure between {p} and {t}"
                        );
                    }
                    prev_to = Some(*to);
                    last_to = *to;
                    billed += cost;
                    bills_audited += 1;
                }
                SimEvent::Evict { t, .. } => {
                    assert!(tenure.is_some(), "run {run}: eviction without a tenure");
                    if let Some(p) = prev_to {
                        assert!(
                            p <= *t + 1e-6,
                            "run {run}: billed to {p}, past eviction at {t}"
                        );
                    }
                    tenure = None;
                    prev_to = None;
                    evicts_seen += 1;
                }
                SimEvent::Complete { t, online_cost, .. } => {
                    assert!(
                        last_to <= *t + 1e-6,
                        "run {run}: billed to {last_to}, past completion at {t}"
                    );
                    assert!(
                        (billed - online_cost).abs() < 1e-6,
                        "run {run}: bills sum to {billed}, outcome says {online_cost}"
                    );
                }
                _ => {}
            }
        }
    }
    assert!(bills_audited > 0, "the sweep must bill something");
    assert_eq!(
        evicts_seen,
        outcomes.iter().map(|o| o.evictions as u64).sum::<u64>(),
        "one Evict event per counted eviction"
    );
}

/// The tentpole determinism contract, end to end through the public API:
/// a parallel sweep is bit-identical to a sequential one, and the JSONL
/// event log round-trips into the same aggregate as the in-memory stream.
#[test]
fn parallel_sweep_and_event_log_are_faithful() {
    let w = world(108);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::PageRank
        .description(40.0, ReloadMode::Fast)
        .expect("job");
    let strategy = HourglassStrategy::new();
    let starts = Experiment::new(16, 13).start_points(&setup, &job);

    let mut seq_sink = VecSink::new();
    let seq = sweep_jobs(&setup, &job, &strategy, &starts, false, &mut seq_sink).expect("seq");
    let mut par_sink = VecSink::new();
    let par = sweep_jobs(&setup, &job, &strategy, &starts, true, &mut par_sink).expect("par");

    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.online_cost.to_bits(), b.online_cost.to_bits());
        assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.missed_deadline, b.missed_deadline);
    }
    // Event streams match exactly: no nondeterministic fields remain in
    // the deterministic payload (wall-clock decision latency lives in the
    // metrics registry, not in events).
    assert_eq!(seq_sink.events, par_sink.events);

    // JSONL round-trip: parse(serialize(stream)) aggregates identically.
    let mut jsonl = JsonlSink::new(Vec::new());
    for (run, event) in &par_sink.events {
        jsonl.record(*run, event);
    }
    let buf = jsonl.finish().expect("serialize");
    let replayed = parse_jsonl(&buf[..]).expect("parse");
    assert_eq!(replayed, par_sink.events);
    assert_eq!(
        EventAggregate::from_events(&replayed),
        EventAggregate::from_events(&par_sink.events)
    );
}

/// The fault-injection acceptance contract, end to end through the
/// public API: with the canned io-flaky plan installed, a parallel
/// sweep stays bit-identical to a sequential one — same outcomes, same
/// event streams including every `Degraded` event — the plan visibly
/// injects faults, and every run still completes on time.
#[test]
fn faulted_sweep_is_bit_identical_across_execution_modes() {
    let w = world(109);
    let setup =
        SimulationSetup::new(&w.market, &w.models).with_fault_plan(FaultPlan::io_flaky(109));
    let job = PaperJob::GraphColoring
        .description(50.0, ReloadMode::Fast)
        .expect("job");
    let strategy = HourglassStrategy::new();
    let starts = Experiment::new(16, 17).start_points(&setup, &job);

    let mut seq_sink = VecSink::new();
    let seq = sweep_jobs(&setup, &job, &strategy, &starts, false, &mut seq_sink).expect("seq");
    let mut par_sink = VecSink::new();
    let par = sweep_jobs(&setup, &job, &strategy, &starts, true, &mut par_sink).expect("par");

    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.online_cost.to_bits(), b.online_cost.to_bits());
        assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
        assert_eq!(a.evictions, b.evictions);
        assert_eq!(a.missed_deadline, b.missed_deadline);
        assert!(a.completed, "a faulted run failed to complete");
        assert!(
            !a.missed_deadline,
            "Hourglass missed a deadline under the io-flaky plan"
        );
    }
    assert_eq!(
        seq_sink.events, par_sink.events,
        "parallel scheduling perturbed the injected fault sequence"
    );

    let agg = EventAggregate::from_events(&par_sink.events);
    assert!(agg.degraded > 0, "the io-flaky plan injected nothing");
    assert!(
        par_sink
            .events
            .iter()
            .any(|(_, e)| matches!(e, SimEvent::Degraded { .. })),
        "no Degraded events in the stream"
    );
}

#[test]
fn single_run_is_deterministic() {
    let w = world(106);
    let setup = SimulationSetup::new(&w.market, &w.models);
    let job = PaperJob::PageRank
        .description(40.0, ReloadMode::Fast)
        .expect("job");
    let s = HourglassStrategy::new();
    let a = run_job(&setup, &job, &s, 123_456.0).expect("run");
    let b = run_job(&setup, &job, &s, 123_456.0).expect("run");
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.finish_time, b.finish_time);
    assert_eq!(a.evictions, b.evictions);
}
