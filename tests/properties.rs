//! Property-based tests on the workspace's core invariants.

use hourglass::cloud::eviction::EvictionModel;
use hourglass::cloud::{tracegen, InstanceType, PriceTrace};
use hourglass::core::checkpoint::daly_interval;
use hourglass::graph::generators;
use hourglass::partition::cluster::cluster_micro_partitions;
use hourglass::partition::fennel::Fennel;
use hourglass::partition::hash::{HashPartitioner, RandomPartitioner};
use hourglass::partition::micro::{quotient_graph, MicroPartitioner};
use hourglass::partition::multilevel::Multilevel;
use hourglass::partition::quality::{edge_cut, edge_cut_fraction};
use hourglass::partition::{Balance, Partitioner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every partitioner assigns every vertex to exactly one in-range
    /// partition, with an edge-cut fraction in [0, 1].
    #[test]
    fn partitioners_produce_total_in_range_assignments(
        scale in 6u32..9,
        edge_factor in 4usize..10,
        k in 2u32..9,
        seed in 0u64..50,
    ) {
        let g = generators::rmat(scale, edge_factor, generators::RmatParams::SOCIAL, seed)
            .expect("generate");
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(HashPartitioner),
            Box::new(RandomPartitioner { seed }),
            Box::new(Fennel::new()),
            Box::new(Multilevel::with_seed(seed)),
        ];
        for p in &partitioners {
            let part = p.partition(&g, k).expect("partition");
            prop_assert_eq!(part.num_vertices(), g.num_vertices());
            prop_assert!(part.assignment().iter().all(|&a| a < k));
            let cut = edge_cut_fraction(&g, &part);
            prop_assert!((0.0..=1.0).contains(&cut), "{} cut {}", p.name(), cut);
            prop_assert!(edge_cut(&g, &part) <= g.num_edges() as u64);
        }
    }

    /// The quotient graph conserves vertex weight and counts exactly the
    /// cut arcs; clustering it yields a finer-or-equal cut than random.
    #[test]
    fn quotient_graph_conserves_mass(
        scale in 6u32..9,
        seed in 0u64..30,
        m in 8u32..33,
    ) {
        let g = generators::rmat(scale, 8, generators::RmatParams::WEB, seed).expect("generate");
        let micro = HashPartitioner.partition(&g, m).expect("partition");
        let q = quotient_graph(&g, &micro, Balance::Vertices).expect("quotient");
        prop_assert_eq!(q.num_vertices(), m as usize);
        prop_assert_eq!(q.total_vertex_weight(), g.num_vertices() as u64);
        prop_assert_eq!(q.total_arc_weight(), 2 * edge_cut(&g, &micro));
    }

    /// Clustering micro-partitions routes every vertex through its micro
    /// assignment (the parallel-recovery property).
    #[test]
    fn clustering_composes_with_micro_assignment(
        seed in 0u64..20,
        k in prop::sample::select(vec![2u32, 4, 8, 16]),
    ) {
        let g = generators::rmat(8, 8, generators::RmatParams::SOCIAL, seed).expect("generate");
        let mp = MicroPartitioner::new(Multilevel::with_seed(seed), 16)
            .run(&g)
            .expect("micro");
        let c = cluster_micro_partitions(&mp, k, seed).expect("cluster");
        for v in 0..g.num_vertices() as u32 {
            let micro = mp.micro().part_of(v);
            prop_assert_eq!(
                c.vertex_partitioning().part_of(v),
                c.micro_to_macro()[micro as usize]
            );
        }
    }

    /// Eviction CDFs are monotone, bounded and consistent with MTTF.
    #[test]
    fn eviction_cdf_is_monotone(seed in 0u64..30) {
        let cfg = tracegen::TraceGenConfig::default();
        let trace = tracegen::generate_trace(InstanceType::R44xlarge, &cfg, seed)
            .expect("trace");
        let bid = InstanceType::R44xlarge.on_demand_price();
        let m = EvictionModel::from_trace(&trace, bid, 12.0 * 3600.0, 400, seed)
            .expect("model");
        let mut last = 0.0;
        for i in 0..50 {
            let u = i as f64 * 1000.0;
            let c = m.cdf(u);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= last);
            last = c;
        }
        prop_assert!(m.mttf() > 0.0);
        prop_assert!(m.mttf() <= 12.0 * 3600.0 + 1.0);
    }

    /// Price traces bill exactly the price integral: splitting an interval
    /// anywhere never changes the total.
    #[test]
    fn billing_is_additive(
        seed in 0u64..30,
        a in 0.0f64..100_000.0,
        len in 100.0f64..50_000.0,
        frac in 0.01f64..0.99,
    ) {
        let cfg = tracegen::TraceGenConfig { days: 3.0, ..Default::default() };
        let trace = tracegen::generate_trace(InstanceType::R42xlarge, &cfg, seed)
            .expect("trace");
        let b = (a + len).min(trace.horizon());
        let a = a.min(b);
        let mid = a + (b - a) * frac;
        let whole = trace.cost_between(a, b).expect("cost");
        let split = trace.cost_between(a, mid).expect("cost")
            + trace.cost_between(mid, b).expect("cost");
        prop_assert!((whole - split).abs() < 1e-9);
        prop_assert!(whole >= 0.0);
    }

    /// Daly's interval is monotone in both arguments and bounded below by
    /// the save time.
    #[test]
    fn daly_interval_properties(
        t_save in 1.0f64..1000.0,
        mttf in 10.0f64..1e6,
    ) {
        let t = daly_interval(t_save, mttf);
        prop_assert!(t >= t_save);
        prop_assert!(t >= daly_interval(t_save, mttf / 2.0) || mttf < 2.0 * t_save);
        prop_assert!(daly_interval(t_save * 2.0, mttf) >= t);
    }

    /// Crossing searches on synthetic traces are consistent with point
    /// lookups: the price strictly exceeds the threshold at the crossing.
    #[test]
    fn crossing_search_is_sound(seed in 0u64..20, threshold in 0.1f64..3.0) {
        let prices: Vec<f64> = (0..200)
            .map(|i| ((i as f64 * 0.7 + seed as f64).sin() + 1.2).abs())
            .collect();
        let trace = PriceTrace::new(60.0, prices).expect("trace");
        if let Some(t) = trace.next_crossing_above(0.0, threshold) {
            prop_assert!(trace.price_at(t).expect("in range") > threshold);
            // No earlier sample crosses.
            let mut s = 0.0;
            while s < t {
                prop_assert!(trace.price_at(s).expect("in range") <= threshold);
                s += 60.0;
            }
        } else {
            for i in 0..200 {
                prop_assert!(trace.price_at(i as f64 * 60.0).expect("in range") <= threshold);
            }
        }
    }
}

// --- engine properties (self-contained: engine + graph + partition only) ---
mod engine_properties {
    use hourglass::engine::apps::{coloring_is_proper, GraphColoring, PageRank};
    use hourglass::engine::{BspEngine, ComputeContext, DeliveryMode, EngineConfig, VertexProgram};
    use hourglass::graph::{generators, Graph, VertexId};
    use hourglass::partition::hash::HashPartitioner;
    use hourglass::partition::Partitioner;
    use proptest::prelude::*;

    /// Floods the max vertex id for one hop, then halts. Max is
    /// order-insensitive and exact, so results must be identical across
    /// every worker count and execution mode (shared with the fault
    /// properties below, where exactness makes corruption detectable).
    pub(crate) struct MaxId;

    impl VertexProgram for MaxId {
        type Value = u32;
        type Message = u32;

        fn init(&self, v: VertexId, _g: &Graph) -> u32 {
            v
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
            if ctx.superstep == 0 {
                let me = *ctx.value_ref();
                ctx.send_to_neighbors(me);
            } else if let Some(&best) = messages.iter().max() {
                if best > *ctx.value_ref() {
                    *ctx.value() = best;
                }
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
            Some(*a.max(b))
        }
    }

    fn engine_on<P: VertexProgram>(
        program: P,
        g: &Graph,
        k: u32,
        parallel: bool,
    ) -> BspEngine<'_, P> {
        let p = HashPartitioner.partition(g, k).expect("partition");
        let config = EngineConfig {
            parallel,
            ..EngineConfig::default()
        };
        BspEngine::new(program, g, p, config).expect("engine")
    }

    fn run_values<P: VertexProgram>(
        program: P,
        g: &Graph,
        k: u32,
        parallel: bool,
    ) -> Vec<P::Value> {
        let mut e = engine_on(program, g, k, parallel);
        e.run().expect("run");
        e.into_values()
    }

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The engine computes the same answer at every worker count, in
        /// both execution modes, as the single-worker sequential reference:
        /// exactly for integer programs (MaxId, GraphColoring), and within
        /// 1e-9 for PageRank (summation order shifts across partitionings).
        #[test]
        fn engine_matches_sequential_reference(
            scale in 6u32..9,
            seed in 0u64..20,
            k in prop::sample::select(vec![1u32, 2, 4, 8]),
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");

            let max_ref = run_values(MaxId, &g, 1, false);
            prop_assert_eq!(&run_values(MaxId, &g, k, false), &max_ref);
            prop_assert_eq!(&run_values(MaxId, &g, k, true), &max_ref);

            let pr_ref = run_values(PageRank::fixed(10), &g, 1, false);
            let pr_seq = run_values(PageRank::fixed(10), &g, k, false);
            let pr_par = run_values(PageRank::fixed(10), &g, k, true);
            prop_assert_eq!(&pr_seq, &pr_par, "threading must not change results");
            prop_assert!(max_abs_diff(&pr_ref, &pr_seq) < 1e-9);

            let gc_seq = run_values(GraphColoring::default(), &g, k, false);
            let gc_par = run_values(GraphColoring::default(), &g, k, true);
            prop_assert_eq!(&gc_seq, &gc_par, "threading must not change results");
            prop_assert!(coloring_is_proper(&g, &gc_seq));
        }

        /// Cache-blocked delivery is bit-identical to flat delivery — not
        /// within an epsilon: the blocked scatter preserves per-slot
        /// message order, so even float programs must agree exactly, in
        /// both execution modes at every worker count.
        #[test]
        fn blocked_delivery_is_bit_identical_to_flat(
            scale in 6u32..9,
            seed in 0u64..20,
            k in prop::sample::select(vec![1u32, 2, 4, 8]),
            parallel in prop::sample::select(vec![false, true]),
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let p = HashPartitioner.partition(&g, k).expect("partition");
            let run_pr = |delivery: DeliveryMode| {
                let config = EngineConfig { parallel, delivery, ..EngineConfig::default() };
                let mut e = BspEngine::new(PageRank::fixed(10), &g, p.clone(), config)
                    .expect("engine");
                e.run().expect("run");
                e.into_values()
            };
            let flat = run_pr(DeliveryMode::Flat);
            prop_assert_eq!(&run_pr(DeliveryMode::Blocked), &flat, "blocked PageRank");
            prop_assert_eq!(&run_pr(DeliveryMode::Auto), &flat, "auto PageRank");

            let run_max = |delivery: DeliveryMode| {
                let config = EngineConfig { parallel, delivery, ..EngineConfig::default() };
                let mut e = BspEngine::new(MaxId, &g, p.clone(), config).expect("engine");
                e.run().expect("run");
                e.into_values()
            };
            prop_assert_eq!(run_max(DeliveryMode::Blocked), run_max(DeliveryMode::Flat));
        }

        /// Checkpointing at an arbitrary superstep and restoring onto an
        /// arbitrary (possibly different) worker count finishes with the
        /// same answer as the uninterrupted run.
        #[test]
        fn engine_checkpoint_restore_preserves_results(
            seed in 0u64..20,
            k_from in prop::sample::select(vec![1u32, 2, 4, 8]),
            k_to in prop::sample::select(vec![1u32, 2, 4, 8]),
            cut in 0usize..6,
        ) {
            let g = generators::rmat(7, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");

            // PageRank: interrupt after `cut` supersteps, resume on k_to.
            let mut a = engine_on(PageRank::fixed(8), &g, k_from, true);
            for _ in 0..cut {
                if a.step().expect("step") {
                    break;
                }
            }
            let ckpt = a.checkpoint_state();
            a.run().expect("finish original");
            let mut b = engine_on(PageRank::fixed(8), &g, k_to, true);
            b.restore_state(ckpt).expect("restore");
            b.run().expect("finish restored");
            prop_assert!(max_abs_diff(&a.values(), &b.values()) < 1e-9);

            // MaxId: exact equality across the same interruption.
            let mut a = engine_on(MaxId, &g, k_from, true);
            for _ in 0..cut {
                if a.step().expect("step") {
                    break;
                }
            }
            let ckpt = a.checkpoint_state();
            a.run().expect("finish original");
            let mut b = engine_on(MaxId, &g, k_to, true);
            b.restore_state(ckpt).expect("restore");
            b.run().expect("finish restored");
            prop_assert_eq!(a.values(), b.values());
        }
    }
}

mod loader_properties {
    use hourglass::engine::loaders::{
        hash_load, loaded_adjacency, micro_load, reload_graph, stream_load, Datastore,
    };
    use hourglass::graph::io_binary::ShardedArcs;
    use hourglass::graph::io_mmap::MappedShards;
    use hourglass::graph::{generators, Graph};
    use hourglass::partition::hash::HashPartitioner;
    use hourglass::partition::Partitioner;
    use proptest::prelude::*;

    fn expected_adjacency(g: &Graph) -> Vec<(u32, Vec<u32>)> {
        (0..g.num_vertices() as u32)
            .filter(|&v| g.degree(v) > 0)
            .map(|v| (v, g.neighbors(v).to_vec()))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Every loader × store-format combination loads bit-identical
        /// adjacency on random R-MAT graphs at every paper worker count,
        /// and the binary micro path reconstructs the exact input CSR.
        #[test]
        fn loaders_agree_across_stores_and_strategies(
            scale in 6u32..9,
            seed in 0u64..20,
            k in prop::sample::select(vec![1u32, 2, 4, 8]),
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let p = HashPartitioner.partition(&g, k).expect("partition");
            let micro = HashPartitioner.partition(&g, 16).expect("micro");
            // k always divides 16, so round-robin is a valid clustering.
            let micro_to_worker: Vec<u32> = (0..16).map(|m| m % k).collect();
            let expect = expected_adjacency(&g);

            for store in [Datastore::text_flat(&g), Datastore::binary_flat(&g)] {
                let (sw, ss) = stream_load(&store, &p);
                prop_assert_eq!(&loaded_adjacency(&sw), &expect);
                prop_assert_eq!(ss.lines_skipped, 0);
                let (hw, hs) = hash_load(&store, &p);
                prop_assert_eq!(&loaded_adjacency(&hw), &expect);
                prop_assert_eq!(hs.lines_skipped, 0);
            }
            for store in [
                Datastore::text_micro(&g, &micro).expect("store"),
                Datastore::binary_micro(&g, &micro).expect("store"),
            ] {
                let (mw, ms) = micro_load(&store, &micro, &micro_to_worker, k).expect("load");
                prop_assert_eq!(&loaded_adjacency(&mw), &expect);
                prop_assert_eq!(ms.arcs_exchanged, 0, "micro loading never shuffles");
                prop_assert_eq!(ms.lines_skipped, 0);
                let reloaded = reload_graph(&mw, g.num_vertices(), g.is_directed())
                    .expect("reload");
                prop_assert_eq!(&reloaded, &g);
            }
        }

        /// The sharded binary store serializes and deserializes losslessly,
        /// and the deserialized copy loads the same adjacency as the text
        /// baseline built from the same graph.
        #[test]
        fn binary_store_roundtrips(scale in 6u32..9, seed in 0u64..20) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let micro = HashPartitioner.partition(&g, 16).expect("micro");
            let sharded = ShardedArcs::from_graph_buckets(&g, micro.assignment(), 16)
                .expect("shard");
            let mut buf = Vec::new();
            sharded.write_to(&mut buf).expect("write");
            prop_assert_eq!(buf.len() as u64, sharded.serialized_size());
            let read = ShardedArcs::read_from(&buf[..]).expect("read");
            prop_assert_eq!(&read, &sharded);

            let micro_to_worker: Vec<u32> = (0..16).map(|m| m % 4).collect();
            let text = Datastore::text_micro(&g, &micro).expect("store");
            let (tw, _) = micro_load(&text, &micro, &micro_to_worker, 4).expect("load");
            let (bw, _) =
                micro_load(&Datastore::Binary(read), &micro, &micro_to_worker, 4).expect("load");
            prop_assert_eq!(loaded_adjacency(&tw), loaded_adjacency(&bw));
        }

        /// The memory-mapped HGS2 store is bit-identical to the in-memory
        /// binary store through all three loaders at every paper worker
        /// count: same slabs, same stats, same reconstructed CSR.
        #[test]
        fn mapped_store_matches_in_memory_across_loaders(
            scale in 6u32..9,
            seed in 0u64..20,
            k in prop::sample::select(vec![1u32, 2, 4, 8]),
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let p = HashPartitioner.partition(&g, k).expect("partition");
            let micro = HashPartitioner.partition(&g, 16).expect("micro");
            let micro_to_worker: Vec<u32> = (0..16).map(|m| m % k).collect();

            let dir = std::env::temp_dir();
            let tag = format!(
                "hg-props-{}-{:?}-{scale}-{seed}-{k}",
                std::process::id(),
                std::thread::current().id()
            );
            let flat_path = dir.join(format!("{tag}-flat.hgs2"));
            let micro_path = dir.join(format!("{tag}-micro.hgs2"));

            let bin_flat = Datastore::binary_flat(&g);
            let map_flat = Datastore::mapped_flat(&g, &flat_path).expect("mapped flat");
            let (sw, ss) = stream_load(&bin_flat, &p);
            let (mw, ms) = stream_load(&map_flat, &p);
            prop_assert_eq!(&mw, &sw, "stream slabs");
            prop_assert_eq!(&ms, &ss, "stream stats");
            let (hw, hs) = hash_load(&bin_flat, &p);
            let (hmw, hms) = hash_load(&map_flat, &p);
            prop_assert_eq!(&hmw, &hw, "hash slabs");
            prop_assert_eq!(&hms, &hs, "hash stats");

            let bin_micro = Datastore::binary_micro(&g, &micro).expect("store");
            let map_micro =
                Datastore::mapped_micro(&g, &micro, &micro_path).expect("mapped micro");
            let (bw, bs) = micro_load(&bin_micro, &micro, &micro_to_worker, k).expect("load");
            let (qw, qs) = micro_load(&map_micro, &micro, &micro_to_worker, k).expect("load");
            prop_assert_eq!(&qw, &bw, "micro slabs");
            prop_assert_eq!(&qs, &bs, "micro stats");
            let reloaded =
                reload_graph(&qw, g.num_vertices(), g.is_directed()).expect("reload");
            prop_assert_eq!(&reloaded, &g);

            std::fs::remove_file(&flat_path).ok();
            std::fs::remove_file(&micro_path).ok();
        }

        /// The HGS2 per-bucket CRC trailer localizes payload corruption:
        /// flipping any payload byte leaves the (metadata-checksummed) open
        /// succeeding but fails `verify_all`, and the failing bucket is
        /// exactly the one whose arc range covers the flipped byte.
        #[test]
        fn mapped_store_localizes_payload_corruption(
            scale in 6u32..8,
            seed in 0u64..20,
            offset_sel in 0u64..u64::MAX,
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let micro = HashPartitioner.partition(&g, 16).expect("micro");
            let sharded = ShardedArcs::from_graph_buckets(&g, micro.assignment(), 16)
                .expect("shard");
            prop_assert!(sharded.payload_bytes() > 0, "R-MAT graphs always have arcs");

            let path = std::env::temp_dir().join(format!(
                "hg-props-crc-{}-{:?}-{scale}-{seed}.hgs2",
                std::process::id(),
                std::thread::current().id()
            ));
            let mut bytes = Vec::new();
            sharded.write_to(&mut bytes).expect("serialize");
            // HGS2 layout: 20-byte header, 16 u64 bucket counts, payload.
            let payload_off = 20 + 8 * sharded.num_buckets() as usize;
            let flip = offset_sel as usize % sharded.payload_bytes();
            bytes[payload_off + flip] ^= 0x5A;
            std::fs::write(&path, &bytes).expect("write corrupted store");

            let mapped = MappedShards::open(&path).expect("metadata is intact");
            prop_assert!(mapped.verify_all().is_err(), "corruption must be caught");
            let mut cut = 0u64;
            for b in 0..sharded.num_buckets() {
                let len = 8 * sharded.bucket_len(b);
                let hit = (cut..cut + len).contains(&(flip as u64));
                prop_assert_eq!(
                    mapped.verify_bucket(b).is_err(),
                    hit,
                    "bucket {} (flip at payload byte {})",
                    b,
                    flip
                );
                cut += len;
            }

            std::fs::remove_file(&path).ok();
        }
    }
}
mod fault_properties {
    use super::engine_properties::MaxId;
    use hourglass::engine::apps::PageRank;
    use hourglass::engine::recovery::{restore_latest, save_epoch};
    use hourglass::engine::{
        BspEngine, CheckpointStore, EngineConfig, EngineError, FaultyStore, MemoryStore,
        VertexProgram,
    };
    use hourglass::faults::{FaultKind, FaultPlan, IoKind, RetryPolicy, Site, Trigger};
    use hourglass::graph::{generators, Graph};
    use hourglass::partition::hash::HashPartitioner;
    use hourglass::partition::Partitioner;
    use proptest::prelude::*;

    fn engine_on<P: VertexProgram>(program: P, g: &Graph) -> BspEngine<'_, P> {
        let p = HashPartitioner.partition(g, 4).expect("partition");
        BspEngine::new(program, g, p, EngineConfig::default()).expect("engine")
    }

    /// One checkpoint-and-recover cycle against a (possibly faulty)
    /// store: step `cut` times saving an epoch after each step, then
    /// restore the newest epoch into a fresh engine and finish. Every
    /// store failure surfaces as the typed error this returns.
    fn faulted_run(
        g: &Graph,
        store: &dyn CheckpointStore,
        retry: &RetryPolicy,
        cut: usize,
    ) -> Result<Vec<u32>, EngineError> {
        let mut a = engine_on(MaxId, g);
        let mut epochs = 0usize;
        for _ in 0..cut {
            if a.step()? {
                break;
            }
            save_epoch::<MaxId>(store, "job", epochs, &a.checkpoint_state(), retry)?;
            epochs += 1;
        }
        let mut b = engine_on(MaxId, g);
        if epochs > 0 {
            restore_latest(&mut b, store, "job", epochs - 1, retry)?
                .ok_or_else(|| EngineError::Checkpoint("saved epochs vanished".into()))?;
        }
        b.run()?;
        Ok(b.into_values())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Recovering through a randomly faulty checkpoint store either
        /// reproduces the fault-free answer bit for bit or fails with a
        /// typed error — never a panic, never a silently wrong answer —
        /// and two identically seeded attempts agree on which.
        #[test]
        fn faulted_recovery_is_bit_identical_or_typed_error(
            scale in 6u32..8,
            seed in 0u64..20,
            cut in 1usize..4,
            put_per_mille in 0u32..500,
            get_every in 1u64..6,
            flip_budget in 0u32..4,
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let reference = {
                let mut e = engine_on(MaxId, &g);
                e.run().expect("fault-free run");
                e.into_values()
            };

            let plan = FaultPlan::new(seed ^ 0xFA)
                .rule(
                    Site::StorePut,
                    Trigger::Ratio { per_mille: put_per_mille },
                    FaultKind::Io(IoKind::TimedOut),
                )
                .rule_budgeted(
                    Site::StoreGet,
                    Trigger::EveryNth { every: get_every, phase: 0 },
                    FaultKind::BitFlip { offset: 11 },
                    flip_budget,
                );
            let retry = RetryPolicy::from_plan(&plan);
            let r1 = faulted_run(
                &g,
                &FaultyStore::new(MemoryStore::new(), plan.injector()),
                &retry,
                cut,
            );
            let r2 = faulted_run(
                &g,
                &FaultyStore::new(MemoryStore::new(), plan.injector()),
                &retry,
                cut,
            );
            match (r1, r2) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a, &b, "same plan, same outcome");
                    prop_assert_eq!(&a, &reference, "recovery changed the answer");
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
                (a, b) => prop_assert!(
                    false,
                    "identically seeded attempts diverged: ok={} vs ok={}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }

        /// A torn write on the *final* checkpoint leaves earlier epochs
        /// intact: restore degrades to epoch N−1 (exactly one fallback)
        /// and the resumed run still reaches the fault-free answer.
        #[test]
        fn torn_final_checkpoint_recovers_previous_epoch(
            scale in 6u32..8,
            seed in 0u64..20,
            epochs in 2usize..5,
            fraction in 0.05f64..0.95,
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let plan = FaultPlan::new(seed).rule_budgeted(
                Site::StorePut,
                Trigger::OnCall((epochs - 1) as u64),
                FaultKind::TornWrite { fraction },
                1,
            );
            let store = FaultyStore::new(MemoryStore::new(), plan.injector());
            // No retries on save: the torn blob must stay the newest
            // epoch (a retry would immediately repair it).
            let once = RetryPolicy {
                attempts: 1,
                ..RetryPolicy::default()
            };

            let mut e = engine_on(PageRank::fixed(8), &g);
            for epoch in 0..epochs {
                e.step().expect("step");
                let saved =
                    save_epoch::<PageRank>(&store, "job", epoch, &e.checkpoint_state(), &once);
                if epoch + 1 == epochs {
                    prop_assert!(saved.is_err(), "the final save must tear");
                } else {
                    saved.expect("clean save");
                }
            }

            let mut b = engine_on(PageRank::fixed(8), &g);
            let (epoch, stats) =
                restore_latest(&mut b, &store, "job", epochs - 1, &RetryPolicy::default())
                    .expect("restore degrades instead of failing")
                    .expect("earlier epochs exist");
            prop_assert_eq!(epoch, epochs - 2, "must fall back exactly one epoch");
            prop_assert_eq!(stats.fallback_epochs, 1);
            b.run().expect("resumed run finishes");

            let mut r = engine_on(PageRank::fixed(8), &g);
            r.run().expect("fault-free run");
            let worst = r
                .values()
                .iter()
                .zip(b.values().iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(worst < 1e-9, "recovered run diverged by {}", worst);
        }
    }
}
mod delta_migration_properties {
    use super::engine_properties::MaxId;
    use hourglass::engine::loaders::{
        delta_load, delta_load_faulty, micro_load, reload_graph, Datastore, ReloadFaults,
    };
    use hourglass::engine::{BspEngine, EngineConfig};
    use hourglass::faults::{FaultKind, FaultPlan, IoKind, Site, Trigger};
    use hourglass::graph::generators;
    use hourglass::partition::cluster::{cluster_micro_partitions, ClusteringDelta};
    use hourglass::partition::micro::MicroPartitioner;
    use hourglass::partition::multilevel::Multilevel;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Elastic reconfiguration by delta migration is indistinguishable
        /// from tearing the deployment down: on random R-MAT graphs and
        /// random re-clusterings (same or different worker counts), the
        /// delta-migrated worker slabs are bit-identical to a full micro
        /// reload, and vertex state carried through the resize matches a
        /// checkpoint-save/restore cycle exactly.
        #[test]
        fn delta_migration_matches_full_reload_and_checkpoint_restore(
            scale in 6u32..8,
            seed in 0u64..20,
            k_from in prop::sample::select(vec![1u32, 2, 4, 8]),
            k_to in prop::sample::select(vec![1u32, 2, 4, 8]),
            cut in 0usize..4,
        ) {
            let g = generators::rmat(scale, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let mp = MicroPartitioner::new(Multilevel::with_seed(seed), 16)
                .run(&g)
                .expect("micro");
            // Different clustering seeds so even k_from == k_to produces
            // genuine moves.
            let from = cluster_micro_partitions(&mp, k_from, seed).expect("cluster");
            let to = cluster_micro_partitions(&mp, k_to, seed ^ 0x5A).expect("cluster");
            let delta = ClusteringDelta::between(&mp, &from, &to).expect("delta");

            for store in [
                Datastore::binary_micro(&g, mp.micro()).expect("store"),
                Datastore::text_micro(&g, mp.micro()).expect("store"),
            ] {
                let (old, _) = micro_load(&store, mp.micro(), from.micro_to_macro(), k_from)
                    .expect("old load");
                let (dw, ds) = delta_load(&store, mp.micro(), &delta, to.micro_to_macro(), old)
                    .expect("delta load");
                let (fw, _) = micro_load(&store, mp.micro(), to.micro_to_macro(), k_to)
                    .expect("full load");
                prop_assert_eq!(&dw, &fw, "delta slabs must be bit-identical to a full reload");
                if delta.is_empty() {
                    prop_assert_eq!(ds.bytes_parsed, 0, "an empty delta reads nothing");
                }
                let reloaded = reload_graph(&dw, g.num_vertices(), g.is_directed())
                    .expect("reload");
                prop_assert_eq!(&reloaded, &g);
            }

            // Vertex state (values, halt flags, superstep) carried through
            // the resize matches a checkpoint-save/restore cycle exactly.
            let config = EngineConfig::default();
            let mut a = BspEngine::new(MaxId, &g, from.vertex_partitioning().clone(), config)
                .expect("engine");
            for _ in 0..cut {
                if a.step().expect("step") {
                    break;
                }
            }
            let mut adopted =
                BspEngine::new(MaxId, &g, to.vertex_partitioning().clone(), config)
                    .expect("engine");
            adopted.adopt_state_from(&a).expect("adopt");
            let mut restored =
                BspEngine::new(MaxId, &g, to.vertex_partitioning().clone(), config)
                    .expect("engine");
            restored.restore_state(a.checkpoint_state()).expect("restore");
            prop_assert_eq!(adopted.values(), restored.values());
            adopted.run().expect("finish adopted");
            restored.run().expect("finish restored");
            a.run().expect("finish original");
            prop_assert_eq!(adopted.values(), restored.values());
            prop_assert_eq!(adopted.values(), a.values());
        }

        /// Under a flaky shard store a delta migration either succeeds with
        /// the exact full-reload slabs (transient faults retried away) or
        /// fails with a typed error — and the full-reload fallback then
        /// rebuilds the correct graph. Never corruption, never a panic.
        #[test]
        fn faulted_delta_migration_falls_back_without_corruption(
            seed in 0u64..20,
            per_mille in 0u32..1000,
            k_to in prop::sample::select(vec![2u32, 4, 8]),
        ) {
            let g = generators::rmat(6, 8, generators::RmatParams::SOCIAL, seed)
                .expect("generate");
            let mp = MicroPartitioner::new(Multilevel::with_seed(seed), 16)
                .run(&g)
                .expect("micro");
            let from = cluster_micro_partitions(&mp, 4, seed).expect("cluster");
            let to = cluster_micro_partitions(&mp, k_to, seed ^ 0x5A).expect("cluster");
            let delta = ClusteringDelta::between(&mp, &from, &to).expect("delta");
            let store = Datastore::binary_micro(&g, mp.micro()).expect("store");
            let (old, _) = micro_load(&store, mp.micro(), from.micro_to_macro(), 4)
                .expect("old load");
            let (fw, _) = micro_load(&store, mp.micro(), to.micro_to_macro(), k_to)
                .expect("full load");

            let plan = FaultPlan::new(seed ^ 0xDE).rule(
                Site::ShardRead,
                Trigger::Ratio { per_mille },
                FaultKind::Io(IoKind::TimedOut),
            );
            let faults = ReloadFaults::from_plan(&plan);
            match delta_load_faulty(
                &store,
                mp.micro(),
                &delta,
                to.micro_to_macro(),
                old,
                Some(&faults),
            ) {
                Ok((dw, _)) => {
                    prop_assert_eq!(&dw, &fw, "degraded delta must still be exact");
                }
                Err(e) => {
                    // Typed error only; the caller's fallback path is a
                    // full reload, which must rebuild the graph intact.
                    let msg = e.to_string();
                    prop_assert!(msg.contains("unreadable"), "unexpected error: {}", msg);
                    let (dw, _) = micro_load(&store, mp.micro(), to.micro_to_macro(), k_to)
                        .expect("fallback load");
                    let reloaded = reload_graph(&dw, g.num_vertices(), g.is_directed())
                        .expect("reload");
                    prop_assert_eq!(&reloaded, &g);
                }
            }
        }
    }
}
// --- end engine properties ---

// --- eviction-process properties (every implementation, one contract) ---
mod eviction_process_properties {
    use hourglass::cloud::eviction::{
        BathtubModel, DynEviction, EvictionModel, LifetimeCapped, WeibullPhase,
    };
    use hourglass::cloud::{fit, tracegen, InstanceType};
    use proptest::prelude::*;
    use std::sync::Arc;

    /// One instance of every [`EvictionProcess`] implementation, all
    /// derived from the same synthetic trace so their scales agree:
    /// the empirical crossing CDF, a lifetime-capped composition over it,
    /// the bathtub fitted to its samples, and a hand-built bathtub.
    fn all_processes(seed: u64) -> Vec<(&'static str, DynEviction)> {
        let cfg = tracegen::TraceGenConfig::default();
        let trace = tracegen::generate_trace(InstanceType::R44xlarge, &cfg, seed).expect("trace");
        let bid = InstanceType::R44xlarge.on_demand_price();
        let window = 12.0 * 3600.0;
        let empirical: DynEviction =
            Arc::new(EvictionModel::from_trace(&trace, bid, window, 400, seed).expect("model"));
        let capped: DynEviction =
            Arc::new(LifetimeCapped::new(empirical.clone(), 4.0 * 3600.0).expect("capped"));
        let fitted: DynEviction =
            Arc::new(fit::fit_bathtub(&trace, bid, window, 400, seed).expect("fit"));
        let synthetic: DynEviction = Arc::new(
            BathtubModel::new(
                vec![
                    WeibullPhase {
                        start: 0.0,
                        shape: 0.6,
                        scale: 30_000.0,
                    },
                    WeibullPhase {
                        start: 3_600.0,
                        shape: 1.0,
                        scale: 50_000.0,
                    },
                    WeibullPhase {
                        start: 6.0 * 3_600.0,
                        shape: 2.0,
                        scale: 40_000.0,
                    },
                ],
                window,
            )
            .expect("bathtub"),
        );
        vec![
            ("empirical", empirical),
            ("capped", capped),
            ("fitted-bathtub", fitted),
            ("synthetic-bathtub", synthetic),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Every CDF is a distribution function: F(0) = 0, monotone
        /// non-decreasing, bounded by 1 over the whole window.
        #[test]
        fn cdfs_are_distributions(seed in 0u64..12) {
            for (name, m) in all_processes(seed) {
                prop_assert_eq!(m.cdf(0.0), 0.0, "{}", name);
                let w = m.window();
                let mut last = 0.0;
                for i in 0..=60 {
                    let t = w * i as f64 / 60.0;
                    let c = m.cdf(t);
                    prop_assert!((0.0..=1.0).contains(&c), "{} cdf({})={}", name, t, c);
                    prop_assert!(c + 1e-12 >= last, "{} cdf not monotone at {}", name, t);
                    last = c;
                }
            }
        }

        /// `prob_between` is non-negative and partitions the window: the
        /// slices of any regular grid sum back to `cdf(window)`.
        #[test]
        fn prob_between_partitions_the_window(seed in 0u64..12, slices in 2usize..9) {
            for (name, m) in all_processes(seed) {
                let w = m.window();
                let mut sum = 0.0;
                for i in 0..slices {
                    let a = w * i as f64 / slices as f64;
                    let b = w * (i + 1) as f64 / slices as f64;
                    let p = m.prob_between(a, b);
                    prop_assert!(p >= -1e-12, "{} prob_between({},{})={}", name, a, b, p);
                    sum += p;
                }
                prop_assert!(
                    (sum - m.cdf(w)).abs() < 1e-9,
                    "{}: slices sum to {} but cdf(window) is {}",
                    name, sum, m.cdf(w)
                );
            }
        }

        /// MTTF is finite, positive and censoring-consistent: survival is
        /// non-increasing, so `window·S(window) ≤ MTTF ≤ window`.
        #[test]
        fn mttf_is_finite_and_censoring_consistent(seed in 0u64..12) {
            for (name, m) in all_processes(seed) {
                let w = m.window();
                let mttf = m.mttf();
                prop_assert!(mttf.is_finite() && mttf > 0.0, "{} mttf {}", name, mttf);
                prop_assert!(mttf <= w + 1.0, "{} mttf {} beyond window {}", name, mttf, w);
                let floor = w * (1.0 - m.cdf(w));
                prop_assert!(
                    mttf + w * 1e-3 >= floor,
                    "{} mttf {} below censoring floor {}",
                    name, mttf, floor
                );
            }
        }

        /// Conditional sampling respects the process: a drawn eviction
        /// never precedes the uptime or overshoots the window, and a
        /// censored draw (None) only happens when surviving the whole
        /// window has positive probability.
        #[test]
        fn sampling_respects_uptime_and_window(
            seed in 0u64..12,
            uptime_frac in 0.0f64..0.9,
            u in 0.0f64..1.0,
        ) {
            for (name, m) in all_processes(seed) {
                let w = m.window();
                let uptime = w * uptime_frac;
                match m.sample_next_eviction(uptime, u) {
                    Some(t) => {
                        prop_assert!(t >= uptime - 1e-9, "{} sampled {} before uptime {}", name, t, uptime);
                        prop_assert!(t <= w + 1e-6, "{} sampled {} beyond window {}", name, t, w);
                    }
                    None => prop_assert!(
                        m.cdf(w) < 1.0,
                        "{}: censored draw although cdf(window) = 1",
                        name
                    ),
                }
            }
        }
    }
}
// --- end eviction-process properties ---

// --- scenario determinism: parallel sweeps == sequential, per scenario ---
mod scenario_determinism {
    use hourglass::sim::{Experiment, ScenarioKind, VecSink};

    /// Under every cell of the scenario matrix — including the sampled
    /// bathtub ground truth and the crunch-perturbed market — the parallel
    /// sweep must replay the exact event stream of the sequential one.
    #[test]
    fn parallel_sweeps_are_bit_identical_under_every_scenario() {
        use hourglass::sim::job::{PaperJob, ReloadMode};
        use hourglass::sim::Scenario;

        let job = PaperJob::PageRank
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        for kind in ScenarioKind::ALL {
            let scenario = Scenario::build(kind, 11, 24.0 * 3600.0, 300).expect("scenario");
            let setup = scenario.setup();
            let strategy = hourglass::core::strategies::HourglassStrategy::new();
            let run = |parallel: bool| {
                let mut exp = Experiment::new(6, 23);
                if !parallel {
                    exp = exp.sequential();
                }
                let mut sink = VecSink::new();
                let summary = exp
                    .run_observed(&setup, &job, &strategy, &mut sink)
                    .expect("sweep");
                (summary, sink.events)
            };
            let (par, par_events) = run(true);
            let (seq, seq_events) = run(false);
            assert_eq!(
                par.mean_cost.to_bits(),
                seq.mean_cost.to_bits(),
                "{}: parallel cost diverged",
                kind.name()
            );
            assert_eq!(par.missed_pct.to_bits(), seq.missed_pct.to_bits());
            assert_eq!(
                par_events,
                seq_events,
                "{}: parallel event stream diverged from sequential",
                kind.name()
            );
        }
    }
}
// --- end scenario determinism ---

// --- metrics determinism: metered sweeps == unmetered, seq == par ---
mod metrics_determinism {
    use hourglass::metrics as hm;
    use hourglass::sim::job::{PaperJob, ReloadMode};
    use hourglass::sim::{
        derive_eviction_models, sweep_jobs, MetricsBridge, SimulationSetup, TeeSink, VecSink,
    };
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Sequential and parallel metered sweeps fold bit-identical
        /// deterministic metric snapshots, and metering changes neither
        /// the outcomes nor the event stream relative to an unmetered
        /// sweep of the same runs.
        #[test]
        fn metered_sweeps_fold_identical_deterministic_snapshots(
            seed in 0u64..12,
            runs in 4usize..10,
        ) {
            let market = hourglass::cloud::tracegen::simulation_market(seed).expect("market");
            let history = hourglass::cloud::tracegen::history_market(seed).expect("market");
            let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
            let setup = SimulationSetup::new(&market, &models);
            let job = PaperJob::PageRank
                .description(60.0, ReloadMode::Fast)
                .expect("job");
            let strategy = hourglass::core::strategies::HourglassStrategy::new();
            let starts: Vec<f64> = (0..runs).map(|i| i as f64 * 110_000.0).collect();

            // Unmetered reference.
            let mut plain_sink = VecSink::new();
            let plain = sweep_jobs(&setup, &job, &strategy, &starts, true, &mut plain_sink)
                .expect("plain");

            let mut metered = Vec::new();
            for parallel in [false, true] {
                let session = hm::MetricsSession::start();
                let mut bridge = MetricsBridge::new("hourglass");
                let mut events = VecSink::new();
                let mut tee = TeeSink { first: &mut events, second: &mut bridge };
                let out = sweep_jobs(&setup, &job, &strategy, &starts, parallel, &mut tee)
                    .expect("metered");
                // Metering must not perturb outcomes or the event stream.
                prop_assert_eq!(out.len(), plain.len());
                for (a, b) in out.iter().zip(&plain) {
                    prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                    prop_assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
                }
                prop_assert_eq!(&events.events, &plain_sink.events);
                metered.push(session.finish());
            }
            prop_assert!(
                metered[0].deterministic().bit_eq(&metered[1].deterministic()),
                "sequential and parallel metric snapshots diverged"
            );
            let labels = [("strategy", "hourglass")];
            prop_assert_eq!(
                metered[0].scalar("hourglass_sim_runs_total", &labels),
                runs as f64
            );
        }
    }
}
// --- end metrics determinism ---

// --- fleet invariants: billing, capacity, preemption, determinism ---
mod fleet_properties {
    use hourglass::core::strategies::HourglassStrategy;
    use hourglass::sim::job::{PaperJob, ReloadMode};
    use hourglass::sim::{
        derive_eviction_models, run_fleet_observed, sweep_fleet, EventAggregate, FleetConfig,
        FleetJob, FleetWorkload, SacrificePolicy, ScenarioKind, SimEvent, SimulationSetup,
        TaggedVecSink,
    };
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn fixture(
        seed: u64,
    ) -> (
        hourglass::cloud::Market,
        Vec<(
            hourglass::cloud::InstanceType,
            hourglass::cloud::DynEviction,
        )>,
    ) {
        let market = hourglass::cloud::tracegen::simulation_market(seed).expect("market");
        let history = hourglass::cloud::tracegen::history_market(seed).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
        (market, models)
    }

    /// Largest transient worker count across a catalog: a capacity cap at
    /// this value admits any single deployment but forbids all overlap.
    fn max_transient_workers(workload: &FleetWorkload) -> usize {
        workload
            .catalog
            .iter()
            .flat_map(|j| j.configs.iter())
            .filter(|p| p.config.is_transient())
            .map(|p| p.config.num_workers as usize)
            .max()
            .expect("catalog has a transient config")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Per-tenant billed dollars folded from the tagged event stream
        /// agree bit-for-bit with each `TenantOutcome`, and the tenant
        /// ledger sums exactly to the fleet ledger.
        #[test]
        fn tenant_billing_sums_to_the_fleet_ledger(
            seed in 0u64..10,
            tenants in 1usize..5,
            recurrences in 1usize..4,
            share in 0u8..2,
            capped in 0u8..2,
            pol in 0usize..3,
        ) {
            let (market, models) = fixture(seed);
            let setup = SimulationSetup::new(&market, &models);
            let strategy = HourglassStrategy::new();
            let workload =
                FleetWorkload::canned_recurring(tenants, recurrences).expect("workload");
            let config = FleetConfig {
                policy: SacrificePolicy::ALL[pol],
                capacity: (capped == 1).then(|| max_transient_workers(&workload)),
                share: share == 1,
            };
            let mut sink = TaggedVecSink::new();
            let fleet = run_fleet_observed(&setup, &workload, &strategy, &config, 0, &mut sink)
                .expect("fleet");
            let mut sum = 0.0f64;
            for t in &fleet.tenants {
                sum += t.billed;
            }
            prop_assert_eq!(sum.to_bits(), fleet.ledger_total.to_bits());
            let agg = EventAggregate::from_tagged_events(&sink.events);
            for t in &fleet.tenants {
                let ta = agg.tenants.get(&t.tenant).expect("tenant in aggregate");
                prop_assert_eq!(
                    ta.billed_dollars.to_bits(),
                    t.billed.to_bits(),
                    "tenant {}: stream fold diverged from the scheduler ledger",
                    t.tenant
                );
                prop_assert_eq!(ta.runs as usize, t.jobs.len());
            }
            prop_assert_eq!(
                agg.tenants.values().map(|t| t.preemptions as usize).sum::<usize>(),
                fleet.preemptions
            );
        }

        /// Under a capacity cap, the transient tenures reconstructed from
        /// the tagged event stream never overlap beyond the cap at any
        /// simulated instant, and every `Preempt` names a victim holding a
        /// live transient deployment at that moment.
        #[test]
        fn capped_fleets_never_double_book_an_instance(
            seed in 0u64..8,
            tenants in 2usize..6,
            gap in 1u64..6,
            pol in 0usize..3,
        ) {
            let (market, models) = fixture(seed);
            let setup = SimulationSetup::new(&market, &models);
            let strategy = HourglassStrategy::new();
            let job = PaperJob::PageRank
                .description(80.0, ReloadMode::Fast)
                .expect("job");
            let workload = FleetWorkload {
                catalog: vec![job],
                arrivals: (0..tenants)
                    .map(|t| FleetJob {
                        tenant: t as u32,
                        arrival: 50_000.0 + t as f64 * gap as f64 * 1_000.0,
                        job: 0,
                    })
                    .collect(),
            };
            let cap = max_transient_workers(&workload);
            let config = FleetConfig {
                policy: SacrificePolicy::ALL[pol],
                capacity: Some(cap),
                share: false,
            };
            let mut sink = TaggedVecSink::new();
            run_fleet_observed(&setup, &workload, &strategy, &config, 0, &mut sink)
                .expect("fleet");

            // One job per tenant, so the tenant id identifies the actor and
            // per-tenant held state can be replayed from the stream alone.
            let workers_of = |pick: usize| {
                let c = &workload.catalog[0].configs[pick].config;
                c.is_transient().then_some(c.num_workers as usize)
            };
            let mut held: BTreeMap<u32, usize> = BTreeMap::new();
            // Signed worker deltas at simulated instants; releases sort
            // before grants at equal times, matching the ledger's view of
            // an atomic switch.
            let mut deltas: Vec<(f64, i64)> = Vec::new();
            for (_, tenant, event) in &sink.events {
                let tn = tenant.expect("fleet events carry a tenant tag");
                match event {
                    SimEvent::Acquire {
                        t, pick, released, ..
                    } => {
                        if let Some(w) = released.and_then(workers_of) {
                            deltas.push((*t, -(w as i64)));
                        }
                        match workers_of(*pick) {
                            Some(w) => {
                                deltas.push((*t, w as i64));
                                held.insert(tn, w);
                            }
                            None => {
                                held.remove(&tn);
                            }
                        }
                    }
                    SimEvent::Evict { t, pick, .. } => {
                        if let Some(w) = workers_of(*pick) {
                            deltas.push((*t, -(w as i64)));
                        }
                        held.remove(&tn);
                    }
                    SimEvent::Complete { t, .. } => {
                        if let Some(w) = held.remove(&tn) {
                            deltas.push((*t, -(w as i64)));
                        }
                    }
                    SimEvent::Preempt { victim, .. } => {
                        prop_assert!(
                            held.contains_key(victim),
                            "preempted tenant {} held no transient deployment",
                            victim
                        );
                    }
                    _ => {}
                }
            }
            deltas.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite sim times")
                    .then(a.1.cmp(&b.1))
            });
            let mut in_use = 0i64;
            for (t, d) in deltas {
                in_use += d;
                prop_assert!(in_use >= 0, "negative occupancy at t={t}");
                prop_assert!(
                    in_use <= cap as i64,
                    "double-booked at t={t}: {in_use} workers live under a cap of {cap}"
                );
            }
        }

        /// Parallel fleet sweeps replay the sequential event stream and
        /// outcomes bit-for-bit under every scenario kind.
        #[test]
        fn fleet_sweeps_are_bit_identical_in_parallel(
            seed in 0u64..12,
            kind_idx in 0usize..4,
        ) {
            let kind = ScenarioKind::ALL[kind_idx];
            let seeds = [seed, seed + 17];
            let workload = FleetWorkload::canned_recurring(2, 2).expect("workload");
            let strategy = HourglassStrategy::new();
            let config = FleetConfig::default();
            let run = |parallel: bool| {
                let mut sink = TaggedVecSink::new();
                let out = sweep_fleet(
                    kind, &seeds, &workload, &strategy, &config, 250, parallel, &mut sink,
                )
                .expect("sweep");
                (out, sink.events)
            };
            let (seq, seq_events) = run(false);
            let (par, par_events) = run(true);
            prop_assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                prop_assert_eq!(a.ledger_total.to_bits(), b.ledger_total.to_bits());
                prop_assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
                prop_assert_eq!(a.runs, b.runs);
                prop_assert_eq!(a.missed, b.missed);
                prop_assert_eq!(a.rejected, b.rejected);
                prop_assert_eq!(a.preemptions, b.preemptions);
                prop_assert_eq!(a.share_hits, b.share_hits);
            }
            prop_assert_eq!(
                seq_events,
                par_events,
                "{}: parallel fleet stream diverged from sequential",
                kind.name()
            );
        }
    }
}
// --- end fleet invariants ---
