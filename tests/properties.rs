//! Property-based tests on the workspace's core invariants.

use hourglass::cloud::eviction::EvictionModel;
use hourglass::cloud::{tracegen, InstanceType, PriceTrace};
use hourglass::core::checkpoint::daly_interval;
use hourglass::graph::generators;
use hourglass::partition::cluster::cluster_micro_partitions;
use hourglass::partition::fennel::Fennel;
use hourglass::partition::hash::{HashPartitioner, RandomPartitioner};
use hourglass::partition::micro::{quotient_graph, MicroPartitioner};
use hourglass::partition::multilevel::Multilevel;
use hourglass::partition::quality::{edge_cut, edge_cut_fraction};
use hourglass::partition::{Balance, Partitioner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every partitioner assigns every vertex to exactly one in-range
    /// partition, with an edge-cut fraction in [0, 1].
    #[test]
    fn partitioners_produce_total_in_range_assignments(
        scale in 6u32..9,
        edge_factor in 4usize..10,
        k in 2u32..9,
        seed in 0u64..50,
    ) {
        let g = generators::rmat(scale, edge_factor, generators::RmatParams::SOCIAL, seed)
            .expect("generate");
        let partitioners: Vec<Box<dyn Partitioner>> = vec![
            Box::new(HashPartitioner),
            Box::new(RandomPartitioner { seed }),
            Box::new(Fennel::new()),
            Box::new(Multilevel::with_seed(seed)),
        ];
        for p in &partitioners {
            let part = p.partition(&g, k).expect("partition");
            prop_assert_eq!(part.num_vertices(), g.num_vertices());
            prop_assert!(part.assignment().iter().all(|&a| a < k));
            let cut = edge_cut_fraction(&g, &part);
            prop_assert!((0.0..=1.0).contains(&cut), "{} cut {}", p.name(), cut);
            prop_assert!(edge_cut(&g, &part) <= g.num_edges() as u64);
        }
    }

    /// The quotient graph conserves vertex weight and counts exactly the
    /// cut arcs; clustering it yields a finer-or-equal cut than random.
    #[test]
    fn quotient_graph_conserves_mass(
        scale in 6u32..9,
        seed in 0u64..30,
        m in 8u32..33,
    ) {
        let g = generators::rmat(scale, 8, generators::RmatParams::WEB, seed).expect("generate");
        let micro = HashPartitioner.partition(&g, m).expect("partition");
        let q = quotient_graph(&g, &micro, Balance::Vertices).expect("quotient");
        prop_assert_eq!(q.num_vertices(), m as usize);
        prop_assert_eq!(q.total_vertex_weight(), g.num_vertices() as u64);
        prop_assert_eq!(q.total_arc_weight(), 2 * edge_cut(&g, &micro));
    }

    /// Clustering micro-partitions routes every vertex through its micro
    /// assignment (the parallel-recovery property).
    #[test]
    fn clustering_composes_with_micro_assignment(
        seed in 0u64..20,
        k in prop::sample::select(vec![2u32, 4, 8, 16]),
    ) {
        let g = generators::rmat(8, 8, generators::RmatParams::SOCIAL, seed).expect("generate");
        let mp = MicroPartitioner::new(Multilevel::with_seed(seed), 16)
            .run(&g)
            .expect("micro");
        let c = cluster_micro_partitions(&mp, k, seed).expect("cluster");
        for v in 0..g.num_vertices() as u32 {
            let micro = mp.micro().part_of(v);
            prop_assert_eq!(
                c.vertex_partitioning().part_of(v),
                c.micro_to_macro()[micro as usize]
            );
        }
    }

    /// Eviction CDFs are monotone, bounded and consistent with MTTF.
    #[test]
    fn eviction_cdf_is_monotone(seed in 0u64..30) {
        let cfg = tracegen::TraceGenConfig::default();
        let trace = tracegen::generate_trace(InstanceType::R44xlarge, &cfg, seed)
            .expect("trace");
        let bid = InstanceType::R44xlarge.on_demand_price();
        let m = EvictionModel::from_trace(&trace, bid, 12.0 * 3600.0, 400, seed)
            .expect("model");
        let mut last = 0.0;
        for i in 0..50 {
            let u = i as f64 * 1000.0;
            let c = m.cdf(u);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= last);
            last = c;
        }
        prop_assert!(m.mttf() > 0.0);
        prop_assert!(m.mttf() <= 12.0 * 3600.0 + 1.0);
    }

    /// Price traces bill exactly the price integral: splitting an interval
    /// anywhere never changes the total.
    #[test]
    fn billing_is_additive(
        seed in 0u64..30,
        a in 0.0f64..100_000.0,
        len in 100.0f64..50_000.0,
        frac in 0.01f64..0.99,
    ) {
        let cfg = tracegen::TraceGenConfig { days: 3.0, ..Default::default() };
        let trace = tracegen::generate_trace(InstanceType::R42xlarge, &cfg, seed)
            .expect("trace");
        let b = (a + len).min(trace.horizon());
        let a = a.min(b);
        let mid = a + (b - a) * frac;
        let whole = trace.cost_between(a, b).expect("cost");
        let split = trace.cost_between(a, mid).expect("cost")
            + trace.cost_between(mid, b).expect("cost");
        prop_assert!((whole - split).abs() < 1e-9);
        prop_assert!(whole >= 0.0);
    }

    /// Daly's interval is monotone in both arguments and bounded below by
    /// the save time.
    #[test]
    fn daly_interval_properties(
        t_save in 1.0f64..1000.0,
        mttf in 10.0f64..1e6,
    ) {
        let t = daly_interval(t_save, mttf);
        prop_assert!(t >= t_save);
        prop_assert!(t >= daly_interval(t_save, mttf / 2.0) || mttf < 2.0 * t_save);
        prop_assert!(daly_interval(t_save * 2.0, mttf) >= t);
    }

    /// Crossing searches on synthetic traces are consistent with point
    /// lookups: the price strictly exceeds the threshold at the crossing.
    #[test]
    fn crossing_search_is_sound(seed in 0u64..20, threshold in 0.1f64..3.0) {
        let prices: Vec<f64> = (0..200)
            .map(|i| ((i as f64 * 0.7 + seed as f64).sin() + 1.2).abs())
            .collect();
        let trace = PriceTrace::new(60.0, prices).expect("trace");
        if let Some(t) = trace.next_crossing_above(0.0, threshold) {
            prop_assert!(trace.price_at(t).expect("in range") > threshold);
            // No earlier sample crosses.
            let mut s = 0.0;
            while s < t {
                prop_assert!(trace.price_at(s).expect("in range") <= threshold);
                s += 60.0;
            }
        } else {
            for i in 0..200 {
                prop_assert!(trace.price_at(i as f64 * 60.0).expect("in range") <= threshold);
            }
        }
    }
}
