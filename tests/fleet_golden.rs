//! Golden-trace equivalence: the fleet scheduler vs. the legacy runner.
//!
//! A fleet of one tenant with sharing and capacity off must be *exactly*
//! the legacy `run_job`/`run_recurring` path — same outcome bits, same
//! event stream once the fleet-only `Admit`/`Preempt`/`ShareHit` markers
//! are stripped. A pinned aggregate of the canonical shared fleet trace
//! guards the scheduler against silent behavioural drift.

use hourglass::core::strategies::HourglassStrategy;
use hourglass::sim::events::EventKind;
use hourglass::sim::job::{JobDescription, PaperJob, ReloadMode};
use hourglass::sim::{
    derive_eviction_models, run_fleet_observed, run_job_observed, run_recurring_observed,
    EventAggregate, FleetConfig, FleetJob, FleetWorkload, Scenario, ScenarioKind, SimEvent,
    SimulationSetup, TaggedVecSink, VecSink,
};

fn fixture(
    seed: u64,
) -> (
    hourglass::cloud::Market,
    Vec<(
        hourglass::cloud::InstanceType,
        hourglass::cloud::DynEviction,
    )>,
) {
    let market = hourglass::cloud::tracegen::simulation_market(seed).expect("market");
    let history = hourglass::cloud::tracegen::history_market(seed).expect("market");
    let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
    (market, models)
}

fn legacy_config() -> FleetConfig {
    FleetConfig {
        capacity: None,
        share: false,
        ..FleetConfig::default()
    }
}

fn one_tenant_workload(job: JobDescription, arrivals: &[f64]) -> FleetWorkload {
    FleetWorkload {
        catalog: vec![job],
        arrivals: arrivals
            .iter()
            .map(|&t| FleetJob {
                tenant: 0,
                arrival: t,
                job: 0,
            })
            .collect(),
    }
}

/// Strips the fleet-only event kinds, leaving the legacy runner's view.
fn legacy_view(events: &[(u32, Option<u32>, SimEvent)]) -> Vec<(u32, SimEvent)> {
    events
        .iter()
        .filter(|(_, _, e)| {
            !matches!(
                e.kind(),
                EventKind::Admit | EventKind::Preempt | EventKind::ShareHit
            )
        })
        .map(|(run, _, e)| (*run, e.clone()))
        .collect()
}

fn assert_close(actual: f64, expected: f64, what: &str) {
    let scale = expected.abs().max(1e-12);
    assert!(
        ((actual - expected) / scale).abs() < 1e-6,
        "{what} drifted: actual {actual:.9}, pinned {expected:.9} \
         (update the golden constants from this run if the change is intended)"
    );
}

/// A one-tenant fleet replays a single legacy `run_job` event-for-event.
#[test]
fn one_tenant_fleet_is_the_legacy_single_job_runner() {
    let (market, models) = fixture(77);
    let setup = SimulationSetup::new(&market, &models);
    let strategy = HourglassStrategy::new();
    let job = PaperJob::GraphColoring
        .description(50.0, ReloadMode::Fast)
        .expect("job");
    let start = 40_000.0;

    let mut legacy_sink = VecSink::new();
    let legacy =
        run_job_observed(&setup, &job, &strategy, start, 0, &mut legacy_sink).expect("legacy");

    let workload = one_tenant_workload(job, &[start]);
    let mut fleet_sink = TaggedVecSink::new();
    let fleet = run_fleet_observed(
        &setup,
        &workload,
        &strategy,
        &legacy_config(),
        0,
        &mut fleet_sink,
    )
    .expect("fleet");

    assert_eq!(fleet.runs, 1);
    assert_eq!(fleet.rejected, 0);
    assert_eq!(fleet.preemptions, 0);
    assert_eq!(fleet.share_hits, 0);
    let out = &fleet.tenants[0].jobs[0];
    assert_eq!(out.cost.to_bits(), legacy.cost.to_bits());
    assert_eq!(out.online_cost.to_bits(), legacy.online_cost.to_bits());
    assert_eq!(out.finish_time.to_bits(), legacy.finish_time.to_bits());
    assert_eq!(out.missed_deadline, legacy.missed_deadline);
    assert_eq!(out.completed, legacy.completed);
    assert_eq!(out.evictions, legacy.evictions);
    assert_eq!(out.deployments, legacy.deployments);
    assert!(
        fleet_sink.events.iter().all(|(_, t, _)| *t == Some(0)),
        "every fleet event must carry the tenant tag"
    );
    assert_eq!(
        legacy_view(&fleet_sink.events),
        legacy_sink.events,
        "one-tenant fleet stream diverged from the legacy runner"
    );
}

/// A one-tenant fleet with arrivals on the period grid replays a legacy
/// recurring chain event-for-event.
#[test]
fn one_tenant_fleet_is_the_legacy_recurring_chain() {
    let (market, models) = fixture(78);
    let setup = SimulationSetup::new(&market, &models);
    let strategy = HourglassStrategy::new();
    let job = PaperJob::PageRank
        .description(60.0, ReloadMode::Fast)
        .expect("job");
    let (start, count) = (30_000.0, 3);
    let period = job.deadline;

    let mut legacy_sink = VecSink::new();
    let legacy = run_recurring_observed(
        &setup,
        &job,
        &strategy,
        start,
        period,
        count,
        0,
        &mut legacy_sink,
    )
    .expect("legacy");

    let arrivals: Vec<f64> = (0..count).map(|i| start + i as f64 * period).collect();
    let workload = one_tenant_workload(job, &arrivals);
    let mut fleet_sink = TaggedVecSink::new();
    let fleet = run_fleet_observed(
        &setup,
        &workload,
        &strategy,
        &legacy_config(),
        0,
        &mut fleet_sink,
    )
    .expect("fleet");

    assert_eq!(fleet.runs, count);
    assert_eq!(
        fleet.total_cost.to_bits(),
        legacy.total_cost.to_bits(),
        "chain cost diverged"
    );
    assert_eq!(fleet.missed, legacy.missed);
    for (a, b) in fleet.tenants[0].jobs.iter().zip(&legacy.runs) {
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
        assert_eq!(a.completed, b.completed);
    }
    assert_eq!(
        legacy_view(&fleet_sink.events),
        legacy_sink.events,
        "one-tenant fleet stream diverged from the legacy recurring chain"
    );
}

/// The canonical shared fleet trace, pinned. Integer counters are exact;
/// dollar totals allow 1e-6 relative drift (powf is not bit-stable across
/// platforms). On mismatch the assert message carries the actual value so
/// the constants can be regenerated deliberately.
#[test]
fn canonical_fleet_trace_matches_pinned_aggregate() {
    let (market, models) = fixture(7);
    let setup = SimulationSetup::new(&market, &models);
    let strategy = HourglassStrategy::new();
    let workload = FleetWorkload::canned_recurring(3, 2).expect("workload");
    let mut sink = TaggedVecSink::new();
    let fleet = run_fleet_observed(
        &setup,
        &workload,
        &strategy,
        &FleetConfig::default(),
        0,
        &mut sink,
    )
    .expect("fleet");
    let agg = EventAggregate::from_tagged_events(&sink.events);

    let counters = (
        agg.admits,
        agg.rejects,
        agg.preemptions,
        agg.share_hits,
        agg.runs,
        agg.acquires,
        agg.evictions,
        agg.missed_deadlines,
        fleet.runs as u64,
        fleet.rejected as u64,
    );
    let pinned = (6, 0, 0, 3, 6, 13, 1, 0, 6, 0);
    assert_eq!(
        counters, pinned,
        "canonical fleet counters drifted (admits, rejects, preemptions, \
         share_hits, runs, acquires, evictions, missed_deadlines, \
         fleet_runs, fleet_rejected); update the pinned tuple deliberately"
    );
    // All four coincide for the canned workload: offline cost is zero, so
    // the online spend is the whole bill.
    assert_close(fleet.ledger_total, 15.008578802, "ledger_total");
    assert_close(fleet.total_cost, 15.008578802, "total_cost");
    assert_close(agg.billed_dollars, 15.008578802, "billed_dollars");
    assert_close(agg.total_dollars, 15.008578802, "total_dollars");
    // Bit-exactness holds per tenant (the global folds differ only in
    // summation order, so they may sit 1 ulp apart).
    for t in &fleet.tenants {
        let ta = agg.tenants.get(&t.tenant).expect("tenant in aggregate");
        assert_eq!(
            ta.billed_dollars.to_bits(),
            t.billed.to_bits(),
            "tenant {}: stream fold and scheduler ledger must agree exactly",
            t.tenant
        );
    }
}

/// A fleet event log survives the JSONL round trip with its tenant
/// attribution intact: parse(serialize(stream)) returns the identical
/// tagged triples and folds into the identical aggregate.
#[test]
fn fleet_event_log_round_trips_tenant_attribution() {
    use hourglass::sim::events::parse_jsonl_tagged;
    use hourglass::sim::{EventSink, JsonlSink};

    let (market, models) = fixture(7);
    let setup = SimulationSetup::new(&market, &models);
    let strategy = HourglassStrategy::new();
    let workload = FleetWorkload::canned_recurring(3, 2).expect("workload");
    let mut sink = TaggedVecSink::new();
    run_fleet_observed(
        &setup,
        &workload,
        &strategy,
        &FleetConfig::default(),
        0,
        &mut sink,
    )
    .expect("fleet");
    assert!(!sink.events.is_empty());

    let mut jsonl = JsonlSink::new(Vec::new());
    for (run, tenant, event) in &sink.events {
        jsonl.record_tenant(*run, tenant.expect("fleet events are tagged"), event);
    }
    let buf = jsonl.finish().expect("serialize");
    let replayed = parse_jsonl_tagged(&buf[..]).expect("parse");
    assert_eq!(
        replayed, sink.events,
        "tenant tags lost in the JSONL round trip"
    );
    assert_eq!(
        EventAggregate::from_tagged_events(&replayed),
        EventAggregate::from_tagged_events(&sink.events)
    );
}

/// A market-wide crunch with a hard capacity cap: every tenant can be
/// evicted at once, and the fleet must recover them in a deterministic
/// order with nobody starved.
#[test]
fn crunch_evicting_the_whole_fleet_recovers_deterministically() {
    let scenario = Scenario::build(ScenarioKind::Crunch, 17, 24.0 * 3600.0, 300).expect("scenario");
    let setup = scenario.setup();
    let strategy = HourglassStrategy::new();
    let job = PaperJob::PageRank
        .description(80.0, ReloadMode::Fast)
        .expect("job");
    let cap = job
        .configs
        .iter()
        .filter(|p| p.config.is_transient())
        .map(|p| p.config.num_workers as usize)
        .max()
        .expect("transient config");
    let tenants = 4u32;
    let workload = FleetWorkload {
        catalog: vec![job],
        arrivals: (0..tenants)
            .map(|t| FleetJob {
                tenant: t,
                arrival: 40_000.0 + t as f64 * 500.0,
                job: 0,
            })
            .collect(),
    };
    let config = FleetConfig {
        capacity: Some(cap),
        share: false,
        ..FleetConfig::default()
    };

    let run = || {
        let mut sink = TaggedVecSink::new();
        let fleet =
            run_fleet_observed(&setup, &workload, &strategy, &config, 0, &mut sink).expect("fleet");
        (fleet, sink.events)
    };
    let (a, ea) = run();
    let (b, eb) = run();
    assert_eq!(ea, eb, "crunch recovery ordering is not deterministic");
    assert_eq!(a.ledger_total.to_bits(), b.ledger_total.to_bits());

    // Nobody is starved: every tenant's job runs to an outcome.
    assert_eq!(a.runs, tenants as usize);
    assert_eq!(a.rejected, 0);
    for t in &a.tenants {
        assert_eq!(t.jobs.len(), 1, "tenant {} lost its job", t.tenant);
    }
    // The cap plus the crunch actually bites: somebody was sacrificed,
    // and each sacrificed tenant still reached completion afterwards.
    assert!(
        a.preemptions > 0,
        "expected the capped crunch to force at least one preemption"
    );
    let agg = EventAggregate::from_tagged_events(&ea);
    for (id, ta) in &agg.tenants {
        if ta.preemptions > 0 {
            let t = a
                .tenants
                .iter()
                .find(|t| t.tenant == *id)
                .expect("preempted tenant in outcome");
            assert!(t.jobs[0].completed, "preempted tenant {id} never recovered");
        }
    }
}
