//! The paper's headline invariant, property-tested: **Hourglass never
//! misses a deadline**, across randomized markets, job shapes and slacks
//! (provided the performance model holds — which the simulator enforces
//! by construction, exactly the paper's §5 caveat).

use hourglass::cloud::tracegen::{generate_market, TraceGenConfig};
use hourglass::core::strategies::{DeadlineProtected, EagerStrategy, HourglassStrategy};
use hourglass::sim::job::{PaperJob, ReloadMode};
use hourglass::sim::runner::{derive_eviction_models, run_job, SimulationSetup};
use proptest::prelude::*;

proptest! {
    // Each case builds a full synthetic month, so keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hourglass meets the deadline on every sampled start, for arbitrary
    /// market harshness within the generator's envelope.
    #[test]
    fn hourglass_never_misses(
        market_seed in 0u64..1000,
        spikes_per_day in 0.3f64..4.0,
        discount in 0.18f64..0.45,
        slack_pct in prop::sample::select(vec![15.0, 30.0, 60.0, 90.0]),
        job in prop::sample::select(vec![PaperJob::PageRank, PaperJob::GraphColoring]),
    ) {
        let cfg = TraceGenConfig {
            seed: market_seed,
            spikes_per_day,
            mean_discount: discount,
            ..TraceGenConfig::default()
        };
        let market = generate_market(&cfg).expect("market");
        let hist = TraceGenConfig {
            seed: market_seed ^ 0xBEEF,
            ..cfg
        };
        let history = generate_market(&hist).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, market_seed)
            .expect("models");
        let setup = SimulationSetup::new(&market, &models);
        let job = job.description(slack_pct, ReloadMode::Fast).expect("job");
        let strategy = HourglassStrategy::new();
        // A handful of deterministic starts spread over the month.
        for i in 0..4 {
            let start = (i as f64 + 0.37) * 5.5 * 86_400.0;
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            prop_assert!(out.completed, "did not complete at start {start}");
            prop_assert!(
                !out.missed_deadline,
                "missed at start {start}: finish {:.0}s vs deadline {:.0}s \
                 (seed {market_seed}, spikes {spikes_per_day:.1}, slack {slack_pct}%)",
                out.finish_time,
                job.deadline
            );
        }
    }

    /// The +DP wrapper inherits the same guarantee for any inner strategy.
    #[test]
    fn dp_wrapper_never_misses(
        market_seed in 0u64..1000,
        slack_pct in prop::sample::select(vec![20.0, 50.0, 80.0]),
    ) {
        let cfg = TraceGenConfig {
            seed: market_seed,
            ..TraceGenConfig::default()
        };
        let market = generate_market(&cfg).expect("market");
        let hist = TraceGenConfig {
            seed: market_seed ^ 0xBEEF,
            ..cfg
        };
        let history = generate_market(&hist).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, market_seed)
            .expect("models");
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::GraphColoring
            .description(slack_pct, ReloadMode::Fast)
            .expect("job");
        let strategy = DeadlineProtected::new(EagerStrategy);
        for i in 0..3 {
            let start = (i as f64 + 0.61) * 7.3 * 86_400.0;
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            prop_assert!(!out.missed_deadline, "DP missed at start {start}");
        }
    }
}
