//! Integration: the cross-layer tracing subsystem end to end.
//!
//! One session traces partitioning, loading and a BSP PageRank run; the
//! collected trace is exported as Chrome Trace Event JSON, parsed back,
//! and compared span-for-span against what was recorded. A second run
//! without a session asserts that tracing never perturbs results.

use hourglass::engine::apps::PageRank;
use hourglass::engine::loaders::{micro_load, reload_graph, Datastore};
use hourglass::engine::{BspEngine, EngineConfig};
use hourglass::graph::generators;
use hourglass::obs;
use hourglass::partition::cluster::cluster_micro_partitions;
use hourglass::partition::hash::HashPartitioner;
use hourglass::partition::micro::MicroPartitioner;

fn traced_pipeline(seed: u64) -> Vec<f64> {
    let g = generators::community(3, 80, 0.3, 40, seed).expect("gen");
    let mp = MicroPartitioner::new(HashPartitioner, 16)
        .run(&g)
        .expect("micro partitioning");
    let clustering = cluster_micro_partitions(&mp, 4, seed).expect("clustering");
    let store = Datastore::binary_micro(&g, mp.micro()).expect("store");
    let (workers, stats) =
        micro_load(&store, mp.micro(), clustering.micro_to_macro(), 4).expect("load");
    assert_eq!(stats.lines_skipped, 0);
    let rg = reload_graph(&workers, g.num_vertices(), false).expect("reload");
    let mut engine = BspEngine::new(
        PageRank::fixed(5),
        &rg,
        clustering.vertex_partitioning().clone(),
        EngineConfig::default(),
    )
    .expect("engine");
    engine.run().expect("run");
    engine.into_values()
}

#[test]
fn chrome_export_round_trips_the_recorded_trace() {
    let untraced = obs::with_tracing_disabled(|| traced_pipeline(11));

    let session = obs::TraceSession::start();
    let traced = traced_pipeline(11);
    let trace = session.finish();

    assert_eq!(untraced, traced, "tracing perturbed the computed values");
    for cat in ["partition", "loader", "engine"] {
        assert!(
            trace.in_category(cat).next().is_some(),
            "no {cat:?} spans recorded"
        );
    }

    // Export → parse → the duration-span multiset survives exactly.
    let json = obs::chrome::chrome_trace_json(&trace);
    let events = obs::chrome::parse_chrome_trace(&json).expect("exported trace parses");

    let mut recorded: Vec<(String, String, u64, u64, u64, u64)> = trace
        .spans
        .iter()
        .filter(|s| s.kind == obs::RecordKind::Span)
        .map(|s| {
            let (pid, tid) = obs::chrome::pid_tid(s.track);
            (
                s.name.to_string(),
                s.cat.to_string(),
                pid,
                tid,
                s.start_ns,
                s.end_ns.saturating_sub(s.start_ns),
            )
        })
        .collect();
    let mut parsed: Vec<(String, String, u64, u64, u64, u64)> = events
        .iter()
        .filter(|e| e.ph == 'X')
        .map(|e| {
            (
                e.name.clone(),
                e.cat.clone(),
                e.pid,
                e.tid,
                e.ts_ns,
                e.dur_ns,
            )
        })
        .collect();
    recorded.sort();
    parsed.sort();
    assert_eq!(recorded, parsed, "span set changed across export + parse");

    // A fresh session starts empty: nothing leaked from the last one.
    let empty = obs::TraceSession::start().finish();
    assert!(empty.spans.is_empty());
}
