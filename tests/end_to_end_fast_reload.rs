//! Integration: the complete fast-reload story across crates.
//!
//! dataset → offline micro-partitioning → BSP execution → checkpoint to a
//! durable store → "eviction" → recluster for a different worker count →
//! restore → identical results.

use hourglass::engine::apps::{coloring_is_proper, GraphColoring, PageRank};
use hourglass::engine::checkpoint::{CheckpointStore, MemoryStore};
use hourglass::engine::engine::EngineCheckpoint;
use hourglass::engine::loaders::{loaded_adjacency, micro_load, reload_graph, Datastore};
use hourglass::engine::{BspEngine, EngineConfig};
use hourglass::graph::datasets::Dataset;
use hourglass::partition::cluster::cluster_micro_partitions;
use hourglass::partition::micro::{num_micro_partitions, MicroPartitioner};
use hourglass::partition::multilevel::Multilevel;
use hourglass::partition::quality::edge_cut_fraction;

#[test]
fn eviction_recovery_preserves_results() {
    let graph = Dataset::Orkut.generate_tiny(7).expect("dataset");
    let m = num_micro_partitions(&[16, 8, 4], 64).expect("micro count");
    assert_eq!(m, 64);
    let micro = MicroPartitioner::new(Multilevel::new(), m)
        .run(&graph)
        .expect("micro-partition");

    // Deploy on 8 workers, run half the job, checkpoint.
    let c8 = cluster_micro_partitions(&micro, 8, 1).expect("cluster");
    let program = PageRank::fixed(12);
    let mut engine = BspEngine::new(
        program,
        &graph,
        c8.vertex_partitioning().clone(),
        EngineConfig::default(),
    )
    .expect("engine");
    for _ in 0..6 {
        engine.step().expect("step");
    }
    let store = MemoryStore::new();
    let blob = serde_json::to_vec(&engine.checkpoint_state()).expect("serialize");
    store.put("ckpt-superstep-6", &blob).expect("put");

    // Reference: finish on the original deployment.
    engine.run().expect("run");
    let reference = engine.into_values();

    // "Eviction": recover on 4 workers from the durable checkpoint.
    let c4 = cluster_micro_partitions(&micro, 4, 1).expect("cluster");
    let mut recovered = BspEngine::new(
        PageRank::fixed(12),
        &graph,
        c4.vertex_partitioning().clone(),
        EngineConfig::default(),
    )
    .expect("engine");
    let blob = store
        .get("ckpt-superstep-6")
        .expect("get")
        .expect("checkpoint exists");
    let ckpt: EngineCheckpoint<f64, f64> = serde_json::from_slice(&blob).expect("deserialize");
    recovered.restore_state(ckpt).expect("restore");
    assert_eq!(recovered.superstep(), 6);
    recovered.run().expect("run");
    let after = recovered.into_values();

    // Synchronous BSP: results must be bit-identical across deployments
    // aside from float summation order; PageRank message sums are combined
    // in delivery order, so allow a tiny tolerance.
    let max_diff = reference
        .iter()
        .zip(&after)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-9, "recovery drifted by {max_diff}");
}

#[test]
fn micro_loading_feeds_the_engine_consistently() {
    let graph = Dataset::Wiki.generate_tiny(3).expect("dataset");
    let micro = MicroPartitioner::new(Multilevel::new(), 16)
        .run(&graph)
        .expect("micro-partition");
    let text = Datastore::text_micro(&graph, micro.micro()).expect("store");
    let binary = Datastore::binary_micro(&graph, micro.micro()).expect("store");

    for k in [2u32, 4, 8] {
        let clustering = cluster_micro_partitions(&micro, k, 5).expect("cluster");
        for store in [&text, &binary] {
            let (workers, stats) =
                micro_load(store, micro.micro(), clustering.micro_to_macro(), k).expect("load");
            assert_eq!(stats.arcs_exchanged, 0, "micro loading never shuffles");
            assert_eq!(stats.lines_skipped, 0, "well-formed stores parse fully");
            let loaded_arcs: usize = workers.iter().map(|w| w.num_arcs()).sum();
            assert_eq!(loaded_arcs, graph.num_directed_edges());
        }
    }
}

#[test]
fn binary_reload_roundtrips_into_the_engine() {
    // The full fast-reload deployment path on the binary store: sharded
    // datastore → exchange-free micro load → reload_graph → BSP run, with
    // results identical to running on the original in-memory graph.
    let graph = Dataset::Wiki.generate_tiny(9).expect("dataset");
    let micro = MicroPartitioner::new(Multilevel::new(), 16)
        .run(&graph)
        .expect("micro-partition");
    let store = Datastore::binary_micro(&graph, micro.micro()).expect("store");
    let clustering = cluster_micro_partitions(&micro, 4, 1).expect("cluster");
    let (workers, stats) =
        micro_load(&store, micro.micro(), clustering.micro_to_macro(), 4).expect("load");
    assert_eq!(stats.lines_skipped, 0);

    // The loaded slabs reconstruct the graph exactly...
    let reloaded =
        reload_graph(&workers, graph.num_vertices(), graph.is_directed()).expect("reload");
    assert_eq!(reloaded, graph, "reloaded CSR must match the original");
    assert_eq!(
        loaded_adjacency(&workers).len(),
        (0..graph.num_vertices() as u32)
            .filter(|&v| graph.degree(v) > 0)
            .count()
    );

    // ...so a run over the reloaded graph is bit-identical to one over
    // the original.
    let run = |g: &hourglass::graph::Graph| {
        let mut engine = BspEngine::new(
            PageRank::fixed(8),
            g,
            clustering.vertex_partitioning().clone(),
            EngineConfig::default(),
        )
        .expect("engine");
        engine.run().expect("run");
        engine.into_values()
    };
    assert_eq!(run(&graph), run(&reloaded));
}

#[test]
fn coloring_survives_reclustering() {
    let graph = Dataset::HumanGene.generate_tiny(11).expect("dataset");
    let micro = MicroPartitioner::new(Multilevel::new(), 16)
        .run(&graph)
        .expect("micro-partition");
    for k in [2u32, 4, 16] {
        let c = cluster_micro_partitions(&micro, k, 2).expect("cluster");
        let mut engine = BspEngine::new(
            GraphColoring::default(),
            &graph,
            c.vertex_partitioning().clone(),
            EngineConfig::default(),
        )
        .expect("engine");
        engine.run().expect("run");
        let colors = engine.into_values();
        assert!(
            coloring_is_proper(&graph, &colors),
            "improper coloring at k={k}"
        );
    }
}

#[test]
fn clustering_quality_stays_below_random() {
    let graph = Dataset::Hollywood.generate_tiny(5).expect("dataset");
    let micro = MicroPartitioner::new(Multilevel::new(), 64)
        .run(&graph)
        .expect("micro-partition");
    for k in [2u32, 4, 8, 16, 32] {
        let c = cluster_micro_partitions(&micro, k, 3).expect("cluster");
        let cut = edge_cut_fraction(&graph, c.vertex_partitioning());
        let random = 1.0 - 1.0 / k as f64;
        assert!(
            cut < 0.9 * random,
            "k={k}: clustered cut {cut:.3} not below random {random:.3}"
        );
    }
}
