//! The §1 motivation, recomputed: what a year of recurring graph analytics
//! costs on-demand versus on spot, and what Hourglass adds on top.
//!
//! The paper's anecdote: a recurrent community-detection job on a
//! billion-edge graph costs >$93K/year on on-demand EC2 and ~$13K/year on
//! spot (86% cheaper) — but plain spot misses deadlines.
//!
//! Run with: `cargo run --release --example cost_of_recurrence`

use hourglass::cloud::config::{DeploymentConfig, ResourceClass};
use hourglass::cloud::{tracegen, InstanceType};

fn main() {
    // A G-miner-like setup: a cluster of memory-optimized machines held
    // for a 4-hour job, 6 times a day, year round.
    let cluster = DeploymentConfig::new(InstanceType::R48xlarge, 4, ResourceClass::OnDemand);
    let hours_per_run = 4.0;
    let runs_per_day = 6.0;
    let hours_per_year = hours_per_run * runs_per_day * 365.0;

    let od_per_year = cluster.on_demand_rate() * hours_per_year;
    println!(
        "cluster: {} | {} vCPUs | ${:.2}/h on demand",
        cluster.label(),
        cluster.total_vcpus(),
        cluster.on_demand_rate()
    );
    println!("recurrence: {hours_per_run} h/run, {runs_per_day} runs/day");
    println!();
    println!("on-demand, year:  ${od_per_year:>10.0}");

    // Spot price from the synthetic market.
    let market = tracegen::simulation_market(2016).expect("market");
    let trace = market.trace(InstanceType::R48xlarge).expect("trace");
    let spot_rate = trace.mean_price() * cluster.num_workers as f64;
    let spot_per_year = spot_rate * hours_per_year;
    println!(
        "plain spot, year: ${spot_per_year:>10.0}   ({:.0}% cheaper — but deadline-blind)",
        100.0 * (1.0 - spot_per_year / od_per_year)
    );

    // Hourglass lands between plain spot and on-demand: it pays the spot
    // price most of the time plus occasional last-resort fallbacks. The
    // evaluation (Figure 5) measures 60-70% total savings on long jobs.
    let hourglass_estimate = od_per_year * 0.35;
    println!(
        "Hourglass, year:  ${hourglass_estimate:>10.0}   (~65% cheaper, ZERO missed deadlines;"
    );
    println!("                  measured by `cargo run -p hourglass-bench --bin fig5_overall`)");
}
