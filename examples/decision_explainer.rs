//! Watch Hourglass think: per-candidate expected-cost breakdowns as a
//! job's slack evaporates.
//!
//! Prints the full Table-1 quantities (slack, useful interval, checkpoint
//! interval, eviction probability, expected cost) for every candidate at
//! three moments of a GC job — comfortable slack, tightening slack, and
//! the point where only the last-resort configuration remains viable.
//!
//! Run with: `cargo run --release --example decision_explainer`

use hourglass::cloud::tracegen;
use hourglass::core::expected_cost::EcParams;
use hourglass::core::explain::explain;
use hourglass::core::DecisionContext;
use hourglass::sim::job::{PaperJob, ReloadMode};
use hourglass::sim::runner::{build_decision_candidates, derive_eviction_models, SimulationSetup};

fn main() {
    let seed = 42;
    let market = tracegen::simulation_market(seed).expect("market");
    let history = tracegen::history_market(seed).expect("market");
    let models = derive_eviction_models(&history, 24.0 * 3600.0, 2000, seed).expect("models");
    let setup = SimulationSetup::new(&market, &models);
    let job = PaperJob::GraphColoring
        .description(50.0, ReloadMode::Fast)
        .expect("job");

    let candidates =
        build_decision_candidates(&setup, &job, 6.0 * 3600.0, false).expect("candidates");

    // Three moments: fresh job, half done but half the time gone, and
    // almost out of slack with work remaining.
    let moments = [
        ("job start, full slack", 0.0, 1.0),
        ("halfway, on schedule", job.deadline * 0.45, 0.5),
        ("slack nearly gone", job.deadline * 0.62, 0.55),
    ];
    for (label, now, work_left) in moments {
        let ctx = DecisionContext {
            now,
            deadline: job.deadline,
            work_left,
            t_boot: job.t_boot,
            candidates: &candidates,
            current: None,
            save_retry_factor: 0.0,
        };
        let report = explain(&ctx, &EcParams::default()).expect("explain");
        println!("--- {label} (t = {:.1} h) ---", now / 3600.0);
        print!("{report}");
        println!();
    }
    println!("Note how transient candidates flip to EC = inf as the slack shrinks,");
    println!("until only the last-resort configuration (the lrc) is selectable.");
}
