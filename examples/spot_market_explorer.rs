//! Explore the synthetic spot market: discounts, spikes and eviction
//! statistics per instance type.
//!
//! Run with: `cargo run --release --example spot_market_explorer`

use hourglass::cloud::eviction::EvictionModel;
use hourglass::cloud::{tracegen, InstanceType};

fn main() {
    let seed = 2016;
    let market = tracegen::simulation_market(seed).expect("market");
    println!("synthetic us-east-1, one month, 1-minute resolution\n");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "type", "OD $/h", "mean spot", "discount", "MTTF (h)", "P[evict<1h]", "P[evict<6h]"
    );
    for ty in InstanceType::ALL {
        let trace = market.trace(ty).expect("trace");
        let od = ty.on_demand_price();
        let model = EvictionModel::from_trace(trace, od, 24.0 * 3600.0, 4000, seed)
            .expect("eviction model");
        println!(
            "{:<14} {:>10.3} {:>12.4} {:>11.0}% {:>12.1} {:>12.3} {:>12.3}",
            ty.api_name(),
            od,
            trace.mean_price(),
            100.0 * (1.0 - trace.mean_price() / od),
            model.mttf() / 3600.0,
            model.cdf(3600.0),
            model.cdf(6.0 * 3600.0),
        );
    }

    // A small ASCII sparkline of two days of r4.8xlarge prices.
    let trace = market.trace(InstanceType::R48xlarge).expect("trace");
    let od = InstanceType::R48xlarge.on_demand_price();
    println!("\nr4.8xlarge, first 48 h ('#' above bid = eviction):");
    let cols = 96;
    let window = 48.0 * 3600.0;
    let mut line = String::new();
    for c in 0..cols {
        let t = c as f64 * window / cols as f64;
        let p = trace.price_at(t).expect("in range");
        line.push(if p > od {
            '#'
        } else if p > 0.5 * od {
            '+'
        } else {
            '.'
        });
    }
    println!("{line}");
    println!(". = deep discount   + = elevated   # = above on-demand (evicts spot)");
}
