//! Fast reload under the microscope: what an eviction actually costs with
//! and without micro-partitioning.
//!
//! Simulates the reconfiguration sequence 16 → 8 → 4 workers (two
//! evictions) on a scaled Orkut graph, measuring for each step:
//!
//! - the *online* cost of producing a partitioning for the new worker
//!   count (re-running the multilevel partitioner vs clustering the
//!   quotient graph), and
//! - the quality (edge cut) of what each approach produces.
//!
//! Run with: `cargo run --release --example fast_reload_demo`

use hourglass::graph::datasets::Dataset;
use hourglass::partition::cluster::cluster_micro_partitions;
use hourglass::partition::micro::{num_micro_partitions, MicroPartitioner};
use hourglass::partition::multilevel::Multilevel;
use hourglass::partition::quality::edge_cut_fraction;
use hourglass::partition::Partitioner;
use std::time::Instant;

fn main() {
    let graph = Dataset::Orkut.generate_small(42).expect("dataset");
    println!(
        "Orkut stand-in: {} vertices, {} edges\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Offline phase, paid once.
    let m = num_micro_partitions(&[16, 8, 4], 64).expect("micro count");
    let t0 = Instant::now();
    let micro = MicroPartitioner::new(Multilevel::new(), m)
        .run(&graph)
        .expect("micro-partition");
    let offline = t0.elapsed();
    println!("offline: {m} micro-partitions in {offline:.2?} (paid once)\n");

    println!(
        "{:<26} {:>14} {:>12} | {:>14} {:>12}",
        "reconfiguration", "repartition", "cut %", "fast reload", "cut %"
    );
    for k in [16u32, 8, 4] {
        // The old way: run the offline partitioner again for this k.
        let t0 = Instant::now();
        let direct = Multilevel::new().partition(&graph, k).expect("partition");
        let t_direct = t0.elapsed();
        let cut_direct = 100.0 * edge_cut_fraction(&graph, &direct);

        // Fast reload: cluster the 64 micro-partitions.
        let t0 = Instant::now();
        let clustered = cluster_micro_partitions(&micro, k, 7).expect("cluster");
        let t_cluster = t0.elapsed();
        let cut_cluster = 100.0 * edge_cut_fraction(&graph, clustered.vertex_partitioning());

        println!(
            "{:<26} {:>14.2?} {:>12.1} | {:>14.2?} {:>12.1}",
            format!("evicted → {k} workers"),
            t_direct,
            cut_direct,
            t_cluster,
            cut_cluster
        );
    }
    println!();
    println!("Fast reload turns a full partitioning run into a millisecond-scale");
    println!("clustering of the quotient graph, at a few points of edge-cut cost —");
    println!("and loading needs no network shuffle because micro-partition data");
    println!("never moves (parallel recovery, paper §6.2).");
}
