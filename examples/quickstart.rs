//! Quickstart: the Hourglass pipeline on a small graph, end to end.
//!
//! 1. Generate a social-network-like graph.
//! 2. Micro-partition it offline (64 micro-partitions, multilevel base).
//! 3. Cluster the micro-partitions for a 4-worker deployment and run
//!    PageRank on the BSP engine.
//! 4. "Get evicted": recluster for an 8-worker deployment — no
//!    re-partitioning — and verify the results agree.
//!
//! Run with: `cargo run --release --example quickstart`

use hourglass::engine::apps::PageRank;
use hourglass::engine::{BspEngine, EngineConfig};
use hourglass::graph::generators::{self, RmatParams};
use hourglass::partition::cluster::cluster_micro_partitions;
use hourglass::partition::micro::MicroPartitioner;
use hourglass::partition::multilevel::Multilevel;
use hourglass::partition::quality::edge_cut_fraction;

fn main() {
    // 1. A 2^12-vertex R-MAT graph with social-network skew.
    let graph = generators::rmat(12, 16, RmatParams::SOCIAL, 42).expect("generate graph");
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Offline: micro-partition once.
    let micro = MicroPartitioner::new(Multilevel::new(), 64)
        .run(&graph)
        .expect("micro-partition");
    println!(
        "offline: 64 micro-partitions, quotient graph has {} nodes / {} edges",
        micro.quotient().num_vertices(),
        micro.quotient().num_edges()
    );

    // 3. Online: cluster for 4 workers and run PageRank.
    let c4 = cluster_micro_partitions(&micro, 4, 7).expect("cluster for 4 workers");
    println!(
        "4 workers: edge cut {:.1}%",
        100.0 * edge_cut_fraction(&graph, c4.vertex_partitioning())
    );
    let mut engine = BspEngine::new(
        PageRank::fixed(20),
        &graph,
        c4.vertex_partitioning().clone(),
        EngineConfig::default(),
    )
    .expect("engine");
    let report = engine.run().expect("run PageRank");
    println!(
        "PageRank: {} supersteps, {} messages ({:.0}% remote), {:.2}s wall",
        report.supersteps,
        report.total_messages,
        100.0 * report.remote_messages as f64 / report.total_messages.max(1) as f64,
        report.wall_seconds
    );
    let ranks4 = engine.into_values();

    // 4. Fast reload: recluster for 8 workers — the graph is NOT
    //    re-partitioned, only micro-partition ownership changes.
    let c8 = cluster_micro_partitions(&micro, 8, 7).expect("cluster for 8 workers");
    println!(
        "8 workers after 'eviction': edge cut {:.1}% (no re-partitioning)",
        100.0 * edge_cut_fraction(&graph, c8.vertex_partitioning())
    );
    let mut engine8 = BspEngine::new(
        PageRank::fixed(20),
        &graph,
        c8.vertex_partitioning().clone(),
        EngineConfig::default(),
    )
    .expect("engine");
    engine8.run().expect("run PageRank on 8 workers");
    let ranks8 = engine8.into_values();

    let max_diff = ranks4
        .iter()
        .zip(&ranks8)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max PageRank difference across deployments: {max_diff:.3e}");
    assert!(max_diff < 1e-12, "results must be deployment-independent");
    println!("ok: identical results on both deployments");
}
