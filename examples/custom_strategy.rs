//! Extending Hourglass with a custom provisioning strategy.
//!
//! Implements the `Strategy` trait with a simple "risk-budget" policy —
//! use the cheapest transient candidate while more than half the slack
//! remains, then jump straight to the last-resort configuration — and
//! races it against the built-in strategies on the GC workload.
//!
//! Run with: `cargo run --release --example custom_strategy`

use hourglass::cloud::tracegen;
use hourglass::core::strategies::{DeadlineProtected, EagerStrategy, HourglassStrategy};
use hourglass::core::{Decision, DecisionContext, Strategy};
use hourglass::sim::job::{PaperJob, ReloadMode};
use hourglass::sim::runner::{derive_eviction_models, SimulationSetup};
use hourglass::sim::Experiment;

/// Half-slack policy: cheap spot while ≥50% of the initial slack remains,
/// last-resort afterwards.
struct HalfSlack {
    initial_slack: f64,
}

impl Strategy for HalfSlack {
    fn name(&self) -> String {
        "HalfSlack".into()
    }

    fn decide(&self, ctx: &DecisionContext<'_>) -> hourglass::core::Result<Decision> {
        let slack = ctx.slack()?;
        if slack < 0.5 * self.initial_slack {
            return Ok(Decision {
                pick: ctx.lrc_index()?,
            });
        }
        // Cheapest transient candidate that is still safe to run.
        let pick = (0..ctx.candidates.len())
            .filter(|&i| ctx.candidates[i].is_transient())
            .filter(|&i| ctx.useful(i).map(|u| u > 0.0).unwrap_or(false))
            .min_by(|&a, &b| {
                ctx.candidates[a]
                    .price_rate
                    .partial_cmp(&ctx.candidates[b].price_rate)
                    .expect("finite prices")
            });
        match pick {
            Some(i) => Ok(Decision { pick: i }),
            None => Ok(Decision {
                pick: ctx.lrc_index()?,
            }),
        }
    }

    fn chunk_limit(&self, ctx: &DecisionContext<'_>, pick: usize) -> Option<f64> {
        // Stay deadline-safe: never run past the useful interval.
        if ctx.candidates.get(pick).map(|c| c.is_transient()) == Some(true) {
            Some(ctx.useful(pick).unwrap_or(0.0))
        } else {
            None
        }
    }
}

fn main() {
    let seed = 7;
    let market = tracegen::simulation_market(seed).expect("market");
    let history = tracegen::history_market(seed).expect("market");
    let models = derive_eviction_models(&history, 24.0 * 3600.0, 1000, seed).expect("models");
    let setup = SimulationSetup::new(&market, &models);
    let job = PaperJob::GraphColoring
        .description(50.0, ReloadMode::Fast)
        .expect("job");

    // The initial slack of this job (deadline minus the lrc makespan).
    let initial_slack = job.deadline - job.min_makespan().expect("makespan");
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(HourglassStrategy::new()),
        Box::new(HalfSlack { initial_slack }),
        Box::new(DeadlineProtected::new(EagerStrategy)),
    ];

    println!("GC on Twitter, 50% slack, 100 random starts:\n");
    println!(
        "{:<14} {:>12} {:>10} {:>12}",
        "strategy", "norm. cost", "missed %", "evictions"
    );
    let experiment = Experiment::new(100, 99);
    for s in &strategies {
        let summary = experiment
            .run(&setup, &job, s.as_ref())
            .expect("simulation");
        println!(
            "{:<14} {:>12.3} {:>10.1} {:>12.2}",
            summary.strategy, summary.normalized_cost, summary.missed_pct, summary.mean_evictions
        );
    }
    println!("\nA 30-line custom strategy is deadline-safe (thanks to chunk_limit +");
    println!("the useful() guard) but leaves money on the table vs the EC-driven one.");
}
