//! The paper's headline use-case: a recurring, deadline-constrained
//! analytics job provisioned on transient resources.
//!
//! A PageRank job over the (paper-scale) Twitter dataset must re-run every
//! few hours. We simulate a week of recurrences over a synthetic spot
//! market and compare Hourglass against always-on-demand and the naive
//! SpotOn+DP fallback.
//!
//! Run with: `cargo run --release --example recurring_pagerank`

use hourglass::cloud::tracegen;
use hourglass::core::strategies::{DeadlineProtected, EagerStrategy, HourglassStrategy};
use hourglass::core::Strategy;
use hourglass::sim::job::{PaperJob, ReloadMode};
use hourglass::sim::runner::{derive_eviction_models, run_job, SimulationSetup};

fn main() {
    let seed = 42;
    let market = tracegen::simulation_market(seed).expect("market");
    let history = tracegen::history_market(seed).expect("market");
    let models = derive_eviction_models(&history, 24.0 * 3600.0, 2000, seed).expect("models");
    let setup = SimulationSetup::new(&market, &models);

    // PageRank with a 50% slack deadline, recurring every 4 hours for a
    // week.
    let job = PaperJob::PageRank
        .description(50.0, ReloadMode::Fast)
        .expect("job");
    let period = 4.0 * 3600.0;
    let recurrences = 7 * 6; // A week, 6 runs/day.
    let baseline = job.on_demand_baseline_cost().expect("baseline");

    println!(
        "job: {} | deadline {:.0} min | {} recurrences | on-demand baseline ${:.2}/run",
        job.name,
        job.deadline / 60.0,
        recurrences,
        baseline
    );
    println!();
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10}",
        "strategy", "week cost $", "vs OD", "missed", "evictions"
    );

    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(HourglassStrategy::new()),
        Box::new(DeadlineProtected::new(EagerStrategy)),
        Box::new(hourglass::core::strategies::OnDemandStrategy),
    ];
    for strategy in &strategies {
        let mut total = 0.0;
        let mut missed = 0usize;
        let mut evictions = 0usize;
        for i in 0..recurrences {
            let start = 86_400.0 + i as f64 * period;
            let out = run_job(&setup, &job, strategy.as_ref(), start).expect("simulation");
            total += out.cost;
            missed += out.missed_deadline as usize;
            evictions += out.evictions;
        }
        println!(
            "{:<16} {:>12.2} {:>11.0}% {:>10} {:>10}",
            strategy.name(),
            total,
            100.0 * total / (baseline * recurrences as f64),
            missed,
            evictions
        );
    }
    println!();
    println!("Hourglass should land well under 100% of on-demand with 0 missed runs.");
}
