//! Hourglass — deadline-aware transient-resource provisioning for graph
//! processing in the cloud.
//!
//! This is the facade crate of the workspace: it re-exports every subsystem
//! so that examples and downstream users can depend on a single crate.
//!
//! A faithful reproduction of *"Hourglass: Leveraging Transient Resources
//! for Time-Constrained Graph Processing in the Cloud"* (EuroSys '19).

#![forbid(unsafe_code)]

pub use hourglass_cloud as cloud;
pub use hourglass_core as core;
pub use hourglass_engine as engine;
pub use hourglass_faults as faults;
pub use hourglass_graph as graph;
pub use hourglass_metrics as metrics;
pub use hourglass_obs as obs;
pub use hourglass_partition as partition;
pub use hourglass_sim as sim;
