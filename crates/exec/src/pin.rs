//! Optional core-affinity pinning for fork-join worker threads.
//!
//! Off by default: the scheduler usually does fine, and pinning a
//! VM-sized task set onto a shared CI box hurts. Set `HOURGLASS_PIN=1`
//! (or call [`force_enable`], the CLI-flag hook) to pin task `i` of every
//! parallel fork-join region onto the `i % n`-th CPU of the process's
//! initial affinity mask — on a dedicated machine this stops the
//! scheduler from migrating workers mid-superstep and keeps each worker's
//! slab resident in one core's private cache.
//!
//! Implemented with raw `sched_setaffinity`/`sched_getaffinity` syscalls
//! on Linux x86_64/aarch64 (the workspace does not link libc); everywhere
//! else the module compiles to a no-op, so callers never need to gate on
//! platform.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state switch: 0 = read `HOURGLASS_PIN` lazily, 1 = forced on,
/// 2 = forced off.
static STATE: AtomicU8 = AtomicU8::new(0);
static ENV: OnceLock<bool> = OnceLock::new();

/// Whether worker pinning is active (`HOURGLASS_PIN=1`/`true`/`on`, or
/// [`force_enable`] was called).
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => *ENV.get_or_init(|| {
            std::env::var("HOURGLASS_PIN")
                .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
                .unwrap_or(false)
        }),
    }
}

/// Turns pinning on regardless of the environment (the `--pin` CLI hook).
pub fn force_enable() {
    STATE.store(1, Ordering::Relaxed);
}

/// Turns pinning off regardless of the environment.
pub fn force_disable() {
    STATE.store(2, Ordering::Relaxed);
}

/// CPUs in this process's affinity mask at first query, in index order.
/// Empty when the platform has no affinity support compiled in.
pub fn allowed_cpus() -> &'static [usize] {
    static CPUS: OnceLock<Vec<usize>> = OnceLock::new();
    CPUS.get_or_init(sys::query_allowed_cpus)
}

/// Pins the calling thread for fork-join task `index`: CPU
/// `allowed[index % allowed.len()]`. No-op (returning `false`) when
/// pinning is disabled, unsupported, or the mask query failed.
pub fn pin_task_thread(index: usize) -> bool {
    if !enabled() {
        return false;
    }
    let cpus = allowed_cpus();
    if cpus.is_empty() {
        return false;
    }
    sys::set_current_thread_cpu(cpus[index % cpus.len()])
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_SETAFFINITY: usize = 203;
    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_GETAFFINITY: usize = 204;
    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_SETAFFINITY: usize = 122;
    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_GETAFFINITY: usize = 123;

    /// 1024 CPUs worth of mask, the kernel's historical cpumask ceiling.
    const MASK_WORDS: usize = 16;

    // SAFETY: both affinity syscalls only read/write the passed mask
    // buffer, whose pointer and length we control; no memory is retained
    // by the kernel past the call.
    #[allow(unsafe_code)]
    fn syscall3(n: usize, a: usize, b: usize, c: usize) -> isize {
        let ret: usize;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            core::arch::asm!(
                "svc 0",
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x8") n,
                options(nostack)
            );
        }
        ret as isize
    }

    pub fn query_allowed_cpus() -> Vec<usize> {
        let mut mask = [0u64; MASK_WORDS];
        let ret = syscall3(
            SYS_SCHED_GETAFFINITY,
            0, // pid 0: the calling thread
            std::mem::size_of_val(&mask),
            mask.as_mut_ptr() as usize,
        );
        if ret <= 0 {
            return Vec::new();
        }
        let mut cpus = Vec::new();
        for (word, &bits) in mask.iter().enumerate() {
            for bit in 0..64 {
                if bits & (1u64 << bit) != 0 {
                    cpus.push(word * 64 + bit);
                }
            }
        }
        cpus
    }

    pub fn set_current_thread_cpu(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        syscall3(
            SYS_SCHED_SETAFFINITY,
            0,
            std::mem::size_of_val(&mask),
            mask.as_ptr() as usize,
        ) == 0
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    pub fn query_allowed_cpus() -> Vec<usize> {
        Vec::new()
    }

    pub fn set_current_thread_cpu(_cpu: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The on/off switch is process-global; tests that flip it take this
    /// lock so they serialize against each other.
    static SWITCH: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_pin_is_a_noop() {
        let _guard = SWITCH.lock().expect("lock");
        force_disable();
        assert!(!enabled());
        assert!(!pin_task_thread(0));
    }

    #[test]
    fn pinned_fork_join_matches_unpinned() {
        let _guard = SWITCH.lock().expect("lock");
        let run = || {
            let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
            crate::fork_join(true, tasks)
        };
        force_disable();
        let unpinned = run();
        force_enable();
        let pinned = run();
        force_disable();
        assert_eq!(unpinned, pinned);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn affinity_mask_is_queryable() {
        let cpus = allowed_cpus();
        assert!(!cpus.is_empty(), "a live thread always has allowed CPUs");
        let mut sorted = cpus.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, cpus, "indices sorted and unique");
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn pinning_restricts_a_spawned_thread() {
        // Pin inside a scratch thread so the test runner's own affinity
        // is untouched; the thread inherits the process mask, narrows it,
        // and re-reads exactly one allowed CPU.
        let handle = std::thread::spawn(|| {
            let before = sys::query_allowed_cpus();
            if before.is_empty() {
                return None;
            }
            if !sys::set_current_thread_cpu(before[0]) {
                return None;
            }
            Some((before[0], sys::query_allowed_cpus()))
        });
        if let Some((target, after)) = handle.join().expect("thread") {
            assert_eq!(after, vec![target]);
        }
    }
}
