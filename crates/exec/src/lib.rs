//! Shared fork-join helpers for parallel sections across the workspace.
//!
//! Every parallel region in the engine (superstep compute, message
//! delivery, loader parsing) and in the simulator (Monte-Carlo sweeps) is
//! a fork-join over disjoint per-task state. Centralizing the
//! scoped-thread plumbing keeps the sequential and threaded paths
//! literally the same closures, which is what makes "parallel matches
//! sequential" a structural guarantee rather than a test-enforced one.
//!
//! The fork-join seam is also the observability merge point: each task
//! body is bracketed with `hourglass_obs` and `hourglass_metrics` task
//! scopes, and the spans and metric shards a task recorded are handed
//! back to the caller in task-submission order on both paths — a traced
//! (or metered) parallel run collects the same span stream and the same
//! metric snapshot as a sequential one.

// `deny` rather than `forbid`: the affinity syscalls in `pin` carry the
// crate's only `unsafe`, under a scoped allow with a SAFETY argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod pin;

use hourglass_metrics as metrics;
use hourglass_obs as obs;

/// Runs `tasks` to completion and returns their results in task order.
///
/// With `parallel` set (and more than one task) each task runs on its own
/// scoped thread; otherwise they run in order on the calling thread. A
/// panicking task propagates the panic either way.
///
/// When an `hourglass-obs` collector is installed, task `i` records its
/// spans on track `i` and the caller merges all task spans in task order
/// after the join.
pub fn fork_join<R, F>(parallel: bool, tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if !parallel || tasks.len() < 2 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let scope = obs::task_begin(i as u32);
                let mscope = metrics::task_begin();
                let r = t();
                metrics::merge_task(metrics::task_end(mscope));
                obs::merge_task(obs::task_end(scope));
                r
            })
            .collect();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                scope.spawn(move |_| {
                    pin::pin_task_thread(i);
                    let scope = obs::task_begin(i as u32);
                    let mscope = metrics::task_begin();
                    let r = t();
                    (r, metrics::task_end(mscope), obs::task_end(scope))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let (r, shard, spans) = h.join().expect("worker thread panicked");
                metrics::merge_task(shard);
                obs::merge_task(spans);
                r
            })
            .collect()
    })
    .expect("scope panicked")
}

/// Maps `f` over `items` on one scoped thread per item, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_when(true, items, f)
}

/// [`par_map`] with an explicit parallelism switch: callers whose
/// per-item work can be smaller than a thread spawn (tens of
/// microseconds) pass `parallel = false` to run on the calling thread.
pub fn par_map_when<T, R, F>(parallel: bool, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let f = &f;
    fork_join(parallel, items.iter().map(|item| move || f(item)).collect())
}

/// Splits `0..len` into at most `max_tasks` contiguous ranges of nearly
/// equal size (the first `len % tasks` ranges get one extra element).
/// Used to chunk a sweep's independent runs over a bounded thread pool
/// instead of spawning one thread per run.
pub fn chunk_ranges(len: usize, max_tasks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let tasks = max_tasks.clamp(1, len);
    let base = len / tasks;
    let extra = len % tasks;
    let mut out = Vec::with_capacity(tasks);
    let mut start = 0;
    for i in 0..tasks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_preserves_order() {
        let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
        assert_eq!(fork_join(true, tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
        let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
        assert_eq!(fork_join(false, tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..16).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(par_map(&items, |x| x + 1), expect);
    }

    #[test]
    fn fork_join_mutates_disjoint_slices() {
        let mut data = vec![0u64; 6];
        let tasks: Vec<_> = data
            .chunks_mut(2)
            .enumerate()
            .map(|(i, chunk)| {
                move || {
                    for c in chunk.iter_mut() {
                        *c = i as u64 + 1;
                    }
                }
            })
            .collect();
        fork_join(true, tasks);
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn fork_join_merges_task_spans_in_task_order() {
        // The merged span stream must be identical on the sequential and
        // the threaded path: track = task index, task-submission order.
        for parallel in [false, true] {
            let session = obs::TraceSession::start();
            let tasks: Vec<_> = (0..4u64)
                .map(|i| {
                    move || {
                        let _s = obs::span("task", "test").arg("i", i);
                        i
                    }
                })
                .collect();
            let out = fork_join(parallel, tasks);
            assert_eq!(out, vec![0, 1, 2, 3]);
            let trace = session.finish();
            let order: Vec<(u32, u64)> = trace
                .spans
                .iter()
                .map(|s| (s.track, s.args.pairs()[0].1))
                .collect();
            assert_eq!(
                order,
                vec![(0, 0), (1, 1), (2, 2), (3, 3)],
                "parallel={parallel}"
            );
        }
    }

    #[test]
    fn fork_join_merges_metric_shards_identically_on_both_paths() {
        static EVENTS: metrics::FamilyDesc = metrics::FamilyDesc {
            name: "exec_test_events_total",
            help: "Per-task events.",
            kind: metrics::MetricKind::Counter,
            buckets: &[],
            nondeterministic: false,
        };
        static SECONDS: metrics::FamilyDesc = metrics::FamilyDesc {
            name: "exec_test_seconds_total",
            help: "Per-task fractional work.",
            kind: metrics::MetricKind::Counter,
            buckets: &[],
            nondeterministic: false,
        };
        let mut snaps = Vec::new();
        for parallel in [false, true] {
            let session = metrics::MetricsSession::start();
            let tasks: Vec<_> = (0..6u64)
                .map(|i| {
                    move || {
                        metrics::add(&EVENTS, &[], i);
                        // Non-commutative f64 sums must still match:
                        // merges happen in submission order on both paths.
                        metrics::addf(&SECONDS, &[], 0.1 * (i as f64) + 1e-13);
                    }
                })
                .collect();
            fork_join(parallel, tasks);
            snaps.push(session.finish());
        }
        assert!(
            snaps[0].bit_eq(&snaps[1]),
            "parallel metric snapshot must be bit-identical to sequential"
        );
        assert_eq!(snaps[0].scalar("exec_test_events_total", &[]), 15.0);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 16, 100] {
            for tasks in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(len, tasks);
                let mut covered = 0;
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    covered += r.len();
                    next = r.end;
                }
                assert_eq!(covered, len, "len {len} tasks {tasks}");
                assert!(ranges.len() <= tasks.max(1));
            }
        }
    }
}
