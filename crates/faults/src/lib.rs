//! Seeded, deterministic fault injection for the Hourglass I/O seams.
//!
//! Transient-VM failures interrupt in-flight I/O: a preemption mid-save
//! leaves a torn checkpoint, a flaky object store times out a get, a bad
//! link flips a bit in a shard read. This crate describes such failures as
//! a [`FaultPlan`] — per-site schedules of [`FaultKind`]s driven by
//! call-count or byte-offset predicates — and replays them *exactly*: the
//! same plan and seed produce the same fault sequence on every run, so a
//! failing Monte-Carlo sweep can be replayed fault-for-fault from its
//! seed.
//!
//! The plan is injected through thin wrappers at the consuming seams
//! (`FaultyStore` around a checkpoint store, [`FaultyRead`] around a shard
//! reader, a [`FaultHook`] inside the simulator's event loop); this crate
//! only decides *when* a fault fires and *what kind* it is. Determinism
//! holds per [`FaultInjector`]: each simulated run derives its own
//! injector from `(plan seed, run index)`, so parallel sweeps see exactly
//! the fault sequences sequential sweeps do.
//!
//! The defense half of the story — checksummed frames, atomic renames,
//! bounded retries — lives with the wrapped subsystems; [`RetryPolicy`]
//! here provides the bounded-attempt exponential backoff (with
//! deterministic jitter drawn from the plan's seed) they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hourglass_metrics as hm;
use serde::{Deserialize, Serialize};
use std::io::Read;
use std::sync::Mutex;

/// Injected faults, labelled by injection site and fault kind. The
/// injector is deterministic in `(plan seed, run index)`, so this family
/// is deterministic too.
pub static M_INJECTIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_faults_injections_total",
    help: "Faults injected at the I/O seams.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};

fn site_label(site: Site) -> &'static str {
    match site {
        Site::StorePut => "store_put",
        Site::StoreGet => "store_get",
        Site::StoreDelete => "store_delete",
        Site::ShardRead => "shard_read",
        Site::DirWrite => "dir_write",
    }
}

fn kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Io(_) => "io",
        FaultKind::TornWrite { .. } => "torn_write",
        FaultKind::BitFlip { .. } => "bit_flip",
        FaultKind::Delay { .. } => "delay",
    }
}

/// SplitMix64: the deterministic hash every pseudo-random decision in this
/// crate derives from.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An injection site: one of the I/O seams a [`FaultRule`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Site {
    /// `CheckpointStore::put` (and the simulator's modeled checkpoint
    /// writes).
    StorePut,
    /// `CheckpointStore::get` (and the simulator's modeled fast reloads).
    StoreGet,
    /// `CheckpointStore::delete`.
    StoreDelete,
    /// Binary shard reads (`io_binary` deserialization, datastore bucket
    /// access, the simulator's modeled first loads).
    ShardRead,
    /// `DirStore`'s chunked temp-file write (crash injection point for the
    /// atomic-rename path).
    DirWrite,
}

/// Number of distinct [`Site`]s (sizes the per-site call counters).
const SITE_COUNT: usize = 5;

fn site_index(site: Site) -> usize {
    match site {
        Site::StorePut => 0,
        Site::StoreGet => 1,
        Site::StoreDelete => 2,
        Site::ShardRead => 3,
        Site::DirWrite => 4,
    }
}

/// Transportable subset of [`std::io::ErrorKind`] (the std enum is
/// non-exhaustive and not serializable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoKind {
    /// The entity was not found.
    NotFound,
    /// The operation timed out.
    TimedOut,
    /// The connection was reset by the peer.
    ConnectionReset,
    /// The operation was interrupted.
    Interrupted,
    /// Permission was denied.
    PermissionDenied,
    /// Any other error.
    Other,
}

impl IoKind {
    /// The matching [`std::io::ErrorKind`].
    pub fn to_error_kind(self) -> std::io::ErrorKind {
        match self {
            IoKind::NotFound => std::io::ErrorKind::NotFound,
            IoKind::TimedOut => std::io::ErrorKind::TimedOut,
            IoKind::ConnectionReset => std::io::ErrorKind::ConnectionReset,
            IoKind::Interrupted => std::io::ErrorKind::Interrupted,
            IoKind::PermissionDenied => std::io::ErrorKind::PermissionDenied,
            IoKind::Other => std::io::ErrorKind::Other,
        }
    }

    /// An [`std::io::Error`] labeled as injected.
    pub fn to_error(self) -> std::io::Error {
        std::io::Error::new(self.to_error_kind(), format!("injected fault: {self:?}"))
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The operation fails cleanly with an I/O error (transient by
    /// convention: a retry consults the injector again).
    Io(IoKind),
    /// A write stops after `fraction` of its bytes (crash/preemption
    /// mid-write); a read returns a truncated stream.
    TornWrite {
        /// Fraction of the operation's bytes that land, in `[0, 1]`.
        fraction: f64,
    },
    /// One bit of the operation's payload is silently inverted. `offset`
    /// is a *bit* offset, applied modulo the payload's bit length so the
    /// flip always lands.
    BitFlip {
        /// Bit offset into the operation's payload.
        offset: u64,
    },
    /// The operation succeeds after an extra delay (accounted, not slept).
    Delay {
        /// Injected delay in nanoseconds.
        ns: u64,
    },
}

/// When a rule fires, as a predicate over the site's deterministic call
/// counter and the operation's byte range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// Fires on the `n`-th call at the site (0-based).
    OnCall(u64),
    /// Fires on every call with `call % every == phase % every`.
    EveryNth {
        /// Period in calls (must be ≥ 1 to ever fire).
        every: u64,
        /// Offset within the period.
        phase: u64,
    },
    /// Fires pseudo-randomly on `per_mille`/1000 of calls, deterministic
    /// in `(plan seed, site, call index)`.
    Ratio {
        /// Firing rate in thousandths.
        per_mille: u32,
    },
    /// Fires when the operation's byte range covers absolute offset `b`
    /// (stream-oriented sites report their running offset; blob-oriented
    /// sites report `[0, len)`).
    AtByte(u64),
}

/// One scheduled fault: a site, a predicate, a kind and an optional budget
/// limiting how many times it may fire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// The seam this rule applies to.
    pub site: Site,
    /// When it fires.
    pub trigger: Trigger,
    /// What happens.
    pub kind: FaultKind,
    /// Maximum number of firings (`None` = unlimited).
    pub budget: Option<u32>,
}

/// A seeded, deterministic schedule of faults.
///
/// Plans are plain serializable data: a failing run's plan + seed is all
/// that is needed to replay its exact fault sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed; [`Trigger::Ratio`] decisions and retry jitter derive
    /// from it.
    pub seed: u64,
    /// The schedule, consulted in order (first matching rule wins).
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds an unlimited rule.
    pub fn rule(mut self, site: Site, trigger: Trigger, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            site,
            trigger,
            kind,
            budget: None,
        });
        self
    }

    /// Adds a rule that fires at most `budget` times.
    pub fn rule_budgeted(
        mut self,
        site: Site,
        trigger: Trigger,
        kind: FaultKind,
        budget: u32,
    ) -> Self {
        self.rules.push(FaultRule {
            site,
            trigger,
            kind,
            budget: Some(budget),
        });
        self
    }

    /// Canned plan: ≤10% transient I/O failures on store puts/gets and
    /// shard reads (the "io-flaky" CI matrix entry).
    pub fn io_flaky(seed: u64) -> Self {
        FaultPlan::new(seed)
            .rule(
                Site::StorePut,
                Trigger::Ratio { per_mille: 100 },
                FaultKind::Io(IoKind::TimedOut),
            )
            .rule(
                Site::StoreGet,
                Trigger::Ratio { per_mille: 100 },
                FaultKind::Io(IoKind::ConnectionReset),
            )
            .rule(
                Site::ShardRead,
                Trigger::Ratio { per_mille: 100 },
                FaultKind::Io(IoKind::TimedOut),
            )
    }

    /// Canned plan: periodic torn writes on checkpoint puts plus a crash
    /// in the directory store's temp-file write (the "torn-writes" CI
    /// matrix entry).
    pub fn torn_writes(seed: u64) -> Self {
        FaultPlan::new(seed)
            .rule(
                Site::StorePut,
                Trigger::EveryNth { every: 7, phase: 3 },
                FaultKind::TornWrite { fraction: 0.5 },
            )
            .rule_budgeted(
                Site::DirWrite,
                Trigger::OnCall(2),
                FaultKind::Io(IoKind::Other),
                1,
            )
    }

    /// Canned plan: periodic single-bit corruption on store gets and shard
    /// reads (the "bitflip" CI matrix entry). Phase 0 so the period is
    /// anchored at the first call — sites the simulator consults only
    /// once per attempt (a run's first load, each reload's shard read)
    /// still see the corruption.
    pub fn bitflip(seed: u64) -> Self {
        FaultPlan::new(seed)
            .rule(
                Site::StoreGet,
                Trigger::EveryNth { every: 5, phase: 0 },
                FaultKind::BitFlip { offset: 137 },
            )
            .rule(
                Site::ShardRead,
                Trigger::EveryNth { every: 3, phase: 0 },
                FaultKind::BitFlip { offset: 65 },
            )
    }

    /// Resolves one of the canned plan names (`io-flaky`, `torn-writes`,
    /// `bitflip`).
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "io-flaky" => Some(Self::io_flaky(seed)),
            "torn-writes" => Some(Self::torn_writes(seed)),
            "bitflip" => Some(Self::bitflip(seed)),
            _ => None,
        }
    }

    /// A fresh injector over this plan (call counters at zero).
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.clone(), self.seed)
    }

    /// A fresh injector whose [`Trigger::Ratio`] stream is re-keyed by the
    /// run index, so Monte-Carlo runs see independent — but individually
    /// reproducible — fault sequences.
    pub fn injector_for_run(&self, run: u32) -> FaultInjector {
        FaultInjector::new(
            self.clone(),
            self.seed ^ splitmix64(0xF417_0000 | run as u64),
        )
    }

    /// Steady-state probability that a single call at `site` fails with a
    /// transient fault (the max [`Trigger::Ratio`] rate of matching
    /// `Io`/`BitFlip` rules; scheduled one-shot rules contribute nothing).
    pub fn steady_io_rate(&self, site: Site) -> f64 {
        self.rules
            .iter()
            .filter(|r| r.site == site)
            .filter(|r| matches!(r.kind, FaultKind::Io(_) | FaultKind::BitFlip { .. }))
            .filter_map(|r| match r.trigger {
                Trigger::Ratio { per_mille } => Some(per_mille.min(1000) as f64 / 1000.0),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Expected *extra* attempts per operation at `site` under geometric
    /// retrying (`p / (1 - p)`), exposing the checkpoint-loss overhead to
    /// cost models.
    pub fn retry_factor(&self, site: Site) -> f64 {
        let p = self.steady_io_rate(site).min(0.999);
        p / (1.0 - p)
    }
}

/// Per-run mutable state over a [`FaultPlan`]: deterministic call counters
/// per site and per-rule firing budgets.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    state: Mutex<InjectorState>,
}

#[derive(Debug)]
struct InjectorState {
    calls: [u64; SITE_COUNT],
    fired: Vec<u32>,
}

/// The byte range an operation covers, for [`Trigger::AtByte`] predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Absolute starting byte offset of the operation.
    pub offset: u64,
    /// Bytes the operation covers.
    pub len: u64,
}

impl Op {
    /// An operation with no byte range (pure control call).
    pub fn none() -> Self {
        Op { offset: 0, len: 0 }
    }

    /// A blob-wide operation over `len` bytes starting at offset 0.
    pub fn len(len: u64) -> Self {
        Op { offset: 0, len }
    }

    /// A ranged operation (stream reads report their running offset).
    pub fn at(offset: u64, len: u64) -> Self {
        Op { offset, len }
    }
}

impl FaultInjector {
    fn new(plan: FaultPlan, seed: u64) -> Self {
        let fired = vec![0; plan.rules.len()];
        FaultInjector {
            plan,
            seed,
            state: Mutex::new(InjectorState {
                calls: [0; SITE_COUNT],
                fired,
            }),
        }
    }

    /// The injector's effective seed (plan seed, possibly re-keyed per
    /// run).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Consults the schedule for one operation at `site`, advancing the
    /// site's call counter. Returns the first matching rule's fault, if
    /// any; rules with exhausted budgets are skipped.
    pub fn next(&self, site: Site, op: Op) -> Option<FaultKind> {
        let mut st = self.state.lock().expect("injector poisoned");
        let idx = site_index(site);
        let call = st.calls[idx];
        st.calls[idx] += 1;
        for (ri, rule) in self.plan.rules.iter().enumerate() {
            if rule.site != site {
                continue;
            }
            if let Some(budget) = rule.budget {
                if st.fired[ri] >= budget {
                    continue;
                }
            }
            let matches = match rule.trigger {
                Trigger::OnCall(n) => call == n,
                Trigger::EveryNth { every, phase } => every > 0 && call % every == phase % every,
                Trigger::Ratio { per_mille } => {
                    let roll = splitmix64(
                        self.seed ^ splitmix64((idx as u64) << 32 | 0x517E) ^ splitmix64(call),
                    ) % 1000;
                    roll < per_mille.min(1000) as u64
                }
                Trigger::AtByte(b) => op.len > 0 && b >= op.offset && b < op.offset + op.len,
            };
            if matches {
                st.fired[ri] += 1;
                if hm::enabled() {
                    hm::add(
                        &M_INJECTIONS,
                        &[("site", site_label(site)), ("kind", kind_label(rule.kind))],
                        1,
                    );
                }
                return Some(rule.kind);
            }
        }
        None
    }

    /// Calls observed so far at `site` (for tests and reports).
    pub fn calls(&self, site: Site) -> u64 {
        self.state.lock().expect("injector poisoned").calls[site_index(site)]
    }

    /// Total rule firings so far.
    pub fn faults_fired(&self) -> u64 {
        self.state
            .lock()
            .expect("injector poisoned")
            .fired
            .iter()
            .map(|&n| n as u64)
            .sum()
    }
}

/// Inverts bit `bit` (modulo the slice's bit length) in place. No-op on an
/// empty slice.
pub fn flip_bit(data: &mut [u8], bit: u64) {
    if data.is_empty() {
        return;
    }
    let bit = bit % (data.len() as u64 * 8);
    data[(bit / 8) as usize] ^= 1 << (bit % 8);
}

/// Bounded-attempt retrying with exponential backoff and deterministic
/// jitter.
///
/// Backoff is *accounted*, never slept: callers (simulators, tests,
/// benches) receive the would-be delay in [`RetryStats::backoff_ns`] and
/// charge it to their own clock, keeping retried runs deterministic and
/// fast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (≥ 1; the first attempt counts).
    pub attempts: u32,
    /// Base backoff before the second attempt, nanoseconds.
    pub base_delay_ns: u64,
    /// Backoff ceiling, nanoseconds.
    pub max_delay_ns: u64,
    /// Jitter seed (conventionally derived from the plan's seed).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay_ns: 50_000_000,   // 50 ms
            max_delay_ns: 5_000_000_000, // 5 s
            seed: 0,
        }
    }
}

/// What a retried operation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Total accounted backoff, nanoseconds.
    pub backoff_ns: u64,
}

impl RetryPolicy {
    /// A policy whose jitter derives from `plan`'s seed.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        RetryPolicy {
            seed: plan.seed ^ 0x7E729,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `attempt` (0-based): exponential in
    /// `attempt` with half-amplitude deterministic jitter, clamped to
    /// [`RetryPolicy::max_delay_ns`].
    pub fn backoff_ns(&self, attempt: u32) -> u64 {
        let exp = self
            .base_delay_ns
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay_ns);
        let jitter = splitmix64(self.seed ^ splitmix64(attempt as u64 + 1)) % (exp / 2 + 1);
        (exp / 2 + jitter).min(self.max_delay_ns)
    }

    /// Runs `op` up to [`RetryPolicy::attempts`] times, accounting backoff
    /// between attempts. Returns the first success, or the last error.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut(u32) -> std::result::Result<T, E>,
    ) -> (std::result::Result<T, E>, RetryStats) {
        let mut stats = RetryStats::default();
        let attempts = self.attempts.max(1);
        loop {
            stats.attempts += 1;
            match op(stats.attempts - 1) {
                Ok(v) => return (Ok(v), stats),
                Err(e) => {
                    if stats.attempts >= attempts {
                        return (Err(e), stats);
                    }
                    stats.backoff_ns += self.backoff_ns(stats.attempts - 1);
                }
            }
        }
    }
}

/// The aggregated outcome of consulting the injector through a full
/// retried operation (the simulator's view of one checkpoint save or
/// reload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Consult {
    /// Failed attempts before success or exhaustion.
    pub retries: u32,
    /// True when every attempt failed (the caller must degrade).
    pub exhausted: bool,
    /// A torn write fired: the operation was cut at this fraction
    /// (models a preemption landing mid-write).
    pub torn: Option<f64>,
    /// Accounted delay (injected [`FaultKind::Delay`]s plus retry
    /// backoff), nanoseconds.
    pub delay_ns: u64,
}

impl Consult {
    /// A clean consult: no faults fired.
    pub fn clean() -> Self {
        Consult {
            retries: 0,
            exhausted: false,
            torn: None,
            delay_ns: 0,
        }
    }
}

/// Per-run fault state for the simulator: an injector plus the retry
/// policy its modeled I/O is wrapped in.
#[derive(Debug)]
pub struct FaultHook {
    injector: FaultInjector,
    policy: RetryPolicy,
}

impl FaultHook {
    /// Builds the hook for Monte-Carlo run `run` of `plan`.
    pub fn for_run(plan: &FaultPlan, run: u32) -> Self {
        FaultHook {
            injector: plan.injector_for_run(run),
            policy: RetryPolicy::from_plan(plan),
        }
    }

    /// The hook's retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Plays one retried operation at `site` against the schedule:
    /// transient faults (`Io`, `BitFlip` — the latter is detected by frame
    /// checksums and re-tried) consume attempts, `Delay`s and backoff
    /// accumulate into `delay_ns`, and a `TornWrite` aborts the operation
    /// mid-flight.
    pub fn consult(&self, site: Site) -> Consult {
        let mut c = Consult::clean();
        loop {
            match self.injector.next(site, Op::none()) {
                None => return c,
                Some(FaultKind::Delay { ns }) => {
                    c.delay_ns += ns;
                    return c;
                }
                Some(FaultKind::TornWrite { fraction }) => {
                    c.torn = Some(fraction.clamp(0.0, 1.0));
                    return c;
                }
                Some(FaultKind::Io(_)) | Some(FaultKind::BitFlip { .. }) => {
                    c.delay_ns += self.policy.backoff_ns(c.retries);
                    c.retries += 1;
                    if c.retries >= self.policy.attempts.max(1) {
                        c.exhausted = true;
                        return c;
                    }
                }
            }
        }
    }
}

/// An [`std::io::Read`] adapter that injects the plan's faults into a
/// byte stream (the fallible reader layer for shard deserialization).
///
/// `Io` faults fail the read, `BitFlip`s invert one bit of the bytes
/// produced, `TornWrite`s truncate the stream (EOF from the cut onward),
/// `Delay`s are counted but not slept.
pub struct FaultyRead<'a, R: Read> {
    inner: R,
    injector: &'a FaultInjector,
    site: Site,
    offset: u64,
    torn: bool,
    delay_ns: u64,
}

impl<'a, R: Read> FaultyRead<'a, R> {
    /// Wraps `inner`, consulting `injector` at `site` for every read.
    pub fn new(inner: R, injector: &'a FaultInjector, site: Site) -> Self {
        FaultyRead {
            inner,
            injector,
            site,
            offset: 0,
            torn: false,
            delay_ns: 0,
        }
    }

    /// Accumulated injected delay, nanoseconds.
    pub fn delay_ns(&self) -> u64 {
        self.delay_ns
    }
}

impl<R: Read> Read for FaultyRead<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.torn || buf.is_empty() {
            return Ok(0);
        }
        let fault = self
            .injector
            .next(self.site, Op::at(self.offset, buf.len() as u64));
        match fault {
            Some(FaultKind::Io(k)) => Err(k.to_error()),
            Some(FaultKind::TornWrite { fraction }) => {
                let keep = ((buf.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
                let n = self.inner.read(&mut buf[..keep])?;
                self.torn = true;
                self.offset += n as u64;
                Ok(n)
            }
            Some(FaultKind::BitFlip { offset: bit }) => {
                let n = self.inner.read(buf)?;
                flip_bit(&mut buf[..n], bit);
                self.offset += n as u64;
                Ok(n)
            }
            Some(FaultKind::Delay { ns }) => {
                self.delay_ns += ns;
                let n = self.inner.read(buf)?;
                self.offset += n as u64;
                Ok(n)
            }
            None => {
                let n = self.inner.read(buf)?;
                self.offset += n as u64;
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let inj = FaultPlan::new(1).injector();
        for _ in 0..100 {
            assert_eq!(inj.next(Site::StorePut, Op::none()), None);
        }
        assert_eq!(inj.calls(Site::StorePut), 100);
        assert_eq!(inj.faults_fired(), 0);
    }

    #[test]
    fn on_call_fires_exactly_once_per_counter_value() {
        let plan = FaultPlan::new(7).rule(
            Site::StoreGet,
            Trigger::OnCall(2),
            FaultKind::Io(IoKind::TimedOut),
        );
        let inj = plan.injector();
        let hits: Vec<bool> = (0..5)
            .map(|_| inj.next(Site::StoreGet, Op::none()).is_some())
            .collect();
        assert_eq!(hits, vec![false, false, true, false, false]);
    }

    #[test]
    fn every_nth_respects_phase_and_budget() {
        let plan = FaultPlan::new(3).rule_budgeted(
            Site::StorePut,
            Trigger::EveryNth { every: 3, phase: 1 },
            FaultKind::TornWrite { fraction: 0.25 },
            2,
        );
        let inj = plan.injector();
        let hits: Vec<bool> = (0..9)
            .map(|_| inj.next(Site::StorePut, Op::none()).is_some())
            .collect();
        // Calls 1 and 4 fire; call 7 is beyond the budget.
        assert_eq!(
            hits,
            vec![false, true, false, false, true, false, false, false, false]
        );
    }

    #[test]
    fn ratio_is_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::new(42).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 100 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let a: Vec<bool> = {
            let inj = plan.injector();
            (0..2000)
                .map(|_| inj.next(Site::ShardRead, Op::none()).is_some())
                .collect()
        };
        let b: Vec<bool> = {
            let inj = plan.injector();
            (0..2000)
                .map(|_| inj.next(Site::ShardRead, Op::none()).is_some())
                .collect()
        };
        assert_eq!(a, b, "same plan must replay the same fault sequence");
        let rate = a.iter().filter(|&&h| h).count() as f64 / a.len() as f64;
        assert!((0.05..0.16).contains(&rate), "rate {rate} far from 10%");
    }

    #[test]
    fn per_run_injectors_differ_but_replay() {
        let plan = FaultPlan::io_flaky(9);
        let seq = |run: u32| -> Vec<bool> {
            let inj = plan.injector_for_run(run);
            (0..200)
                .map(|_| inj.next(Site::StorePut, Op::none()).is_some())
                .collect()
        };
        assert_eq!(seq(4), seq(4));
        assert_ne!(seq(4), seq(5), "runs should see independent sequences");
    }

    #[test]
    fn at_byte_matches_covering_ranges_only() {
        let plan = FaultPlan::new(0).rule(
            Site::ShardRead,
            Trigger::AtByte(100),
            FaultKind::BitFlip { offset: 0 },
        );
        let inj = plan.injector();
        assert_eq!(inj.next(Site::ShardRead, Op::at(0, 50)), None);
        assert_eq!(inj.next(Site::ShardRead, Op::at(50, 50)), None);
        assert!(inj.next(Site::ShardRead, Op::at(100, 1)).is_some());
        assert!(inj.next(Site::ShardRead, Op::at(64, 64)).is_some());
        assert_eq!(inj.next(Site::ShardRead, Op::none()), None);
    }

    #[test]
    fn canned_plans_resolve_by_name() {
        for name in ["io-flaky", "torn-writes", "bitflip"] {
            let plan = FaultPlan::by_name(name, 5).expect("canned plan");
            assert!(!plan.rules.is_empty());
        }
        assert!(FaultPlan::by_name("nope", 5).is_none());
        assert!(FaultPlan::io_flaky(1).steady_io_rate(Site::StorePut) > 0.05);
        assert_eq!(FaultPlan::new(1).steady_io_rate(Site::StorePut), 0.0);
        assert!(FaultPlan::io_flaky(1).retry_factor(Site::StorePut) > 0.0);
    }

    #[test]
    fn retry_policy_backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            attempts: 5,
            base_delay_ns: 1_000,
            max_delay_ns: 10_000,
            seed: 11,
        };
        for attempt in 0..10 {
            let b = p.backoff_ns(attempt);
            assert_eq!(b, p.backoff_ns(attempt), "jitter must be deterministic");
            assert!(b <= p.max_delay_ns);
        }
        // Exponential growth until the cap dominates.
        assert!(p.backoff_ns(3) >= p.backoff_ns(0) || p.backoff_ns(3) >= p.max_delay_ns / 2);
    }

    #[test]
    fn retry_run_bounds_attempts_and_accounts_backoff() {
        let p = RetryPolicy {
            attempts: 3,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let (res, stats) = p.run(|_| -> std::result::Result<(), &str> {
            calls += 1;
            Err("nope")
        });
        assert!(res.is_err());
        assert_eq!(calls, 3);
        assert_eq!(stats.attempts, 3);
        assert!(stats.backoff_ns > 0);

        let (res, stats) = p.run(|attempt| -> std::result::Result<u32, &str> {
            if attempt < 1 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(res, Ok(1));
        assert_eq!(stats.attempts, 2);
    }

    #[test]
    fn hook_consult_aggregates_retries() {
        // Io faults on the first two calls: the retried operation recovers
        // after two retries.
        let plan = FaultPlan::new(0).rule_budgeted(
            Site::StorePut,
            Trigger::EveryNth { every: 1, phase: 0 },
            FaultKind::Io(IoKind::TimedOut),
            2,
        );
        let hook = FaultHook::for_run(&plan, 0);
        let c = hook.consult(Site::StorePut);
        assert_eq!(c.retries, 2);
        assert!(!c.exhausted);
        assert!(c.torn.is_none());
        assert!(c.delay_ns > 0);
        // Second consult sees a clean schedule.
        assert_eq!(hook.consult(Site::StorePut), Consult::clean());
    }

    #[test]
    fn hook_consult_exhausts_under_persistent_faults() {
        let plan = FaultPlan::new(0).rule(
            Site::StoreGet,
            Trigger::EveryNth { every: 1, phase: 0 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let hook = FaultHook::for_run(&plan, 3);
        let c = hook.consult(Site::StoreGet);
        assert!(c.exhausted);
        assert_eq!(c.retries, hook.policy().attempts);
    }

    #[test]
    fn hook_consult_reports_torn_writes() {
        let plan = FaultPlan::new(0).rule_budgeted(
            Site::StorePut,
            Trigger::OnCall(0),
            FaultKind::TornWrite { fraction: 0.3 },
            1,
        );
        let hook = FaultHook::for_run(&plan, 0);
        let c = hook.consult(Site::StorePut);
        assert_eq!(c.torn, Some(0.3));
        assert_eq!(c.retries, 0);
    }

    #[test]
    fn flip_bit_wraps_and_inverts() {
        let mut data = vec![0u8; 4];
        flip_bit(&mut data, 9);
        assert_eq!(data, vec![0, 2, 0, 0]);
        flip_bit(&mut data, 9 + 32);
        assert_eq!(data, vec![0, 0, 0, 0]);
        flip_bit(&mut [], 5); // no-op, no panic
    }

    #[test]
    fn faulty_read_passes_through_without_rules() {
        let inj = FaultPlan::new(0).injector();
        let mut r = FaultyRead::new(&b"hello world"[..], &inj, Site::ShardRead);
        let mut out = Vec::new();
        r.read_to_end(&mut out).expect("read");
        assert_eq!(out, b"hello world");
    }

    #[test]
    fn faulty_read_injects_io_errors() {
        let plan = FaultPlan::new(0).rule_budgeted(
            Site::ShardRead,
            Trigger::OnCall(0),
            FaultKind::Io(IoKind::TimedOut),
            1,
        );
        let inj = plan.injector();
        let mut r = FaultyRead::new(&b"abc"[..], &inj, Site::ShardRead);
        let mut buf = [0u8; 2];
        let err = r.read(&mut buf).expect_err("injected");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        // The next read is clean (budget exhausted).
        assert_eq!(r.read(&mut buf).expect("clean read"), 2);
    }

    #[test]
    fn faulty_read_flips_one_bit() {
        let plan = FaultPlan::new(0).rule_budgeted(
            Site::ShardRead,
            Trigger::OnCall(0),
            FaultKind::BitFlip { offset: 0 },
            1,
        );
        let inj = plan.injector();
        let mut r = FaultyRead::new(&[0u8, 0, 0][..], &inj, Site::ShardRead);
        let mut out = Vec::new();
        r.read_to_end(&mut out).expect("read");
        assert_eq!(out, vec![1, 0, 0]);
    }

    #[test]
    fn faulty_read_truncates_on_torn_write() {
        let plan = FaultPlan::new(0).rule(
            Site::ShardRead,
            Trigger::AtByte(4),
            FaultKind::TornWrite { fraction: 0.5 },
        );
        let inj = plan.injector();
        let mut r = FaultyRead::new(&[7u8; 8][..], &inj, Site::ShardRead);
        let mut out = Vec::new();
        let mut buf = [0u8; 2];
        loop {
            let n = r.read(&mut buf).expect("read");
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        // The read covering byte 4 is cut at fraction 0.5 of its 2-byte
        // buffer; the stream ends there.
        assert_eq!(out, vec![7u8; 5]);
    }

    #[test]
    fn plans_are_plain_comparable_data() {
        // Plans are replayed from serialized copies; equality must be
        // structural so a deserialized plan drives the same schedule.
        let plan = FaultPlan::torn_writes(99);
        assert_eq!(plan, plan.clone());
        assert_ne!(plan, FaultPlan::torn_writes(98));
        assert_ne!(plan, FaultPlan::io_flaky(99));
    }
}
