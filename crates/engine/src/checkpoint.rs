//! Durable checkpoint stores (the S3 stand-in).
//!
//! The paper modifies Giraph to write checkpoints to Amazon S3 rather than
//! the cluster filesystem, "allowing a recovery from a full system failure
//! that may occur due to evictions" (§7). [`CheckpointStore`] abstracts
//! that durable external store; [`MemoryStore`] keeps blobs in RAM (for
//! tests and simulations), [`DirStore`] writes them to a directory with
//! crash-atomic puts (unique temp file + fsync + rename), and
//! [`FaultyStore`] wraps any store with a deterministic
//! [`hourglass_faults::FaultPlan`] so recovery paths can be tested against
//! injected I/O errors, torn writes and bit flips.
//!
//! Checkpoint payloads themselves are CRC32C-framed
//! ([`put_framed`]/[`get_framed`]): a torn or bit-flipped blob is detected
//! at read time instead of deserialized into garbage.

use crate::{EngineError, Result};
use hourglass_faults::{FaultInjector, FaultKind, Op, Site};
use hourglass_graph::crc32c::{frame, unframe};
use hourglass_obs as obs;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A durable key→blob store surviving full-cluster failures.
pub trait CheckpointStore: Send + Sync {
    /// Persists `data` under `key`, replacing any previous blob.
    fn put(&self, key: &str, data: &[u8]) -> Result<()>;

    /// Fetches the blob stored under `key`.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;

    /// Removes `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;

    /// Lists all stored keys.
    fn keys(&self) -> Result<Vec<String>>;
}

/// In-memory store for tests and simulation.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes stored (used by save-time cost models).
    pub fn total_bytes(&self) -> usize {
        self.blobs.lock().values().map(|v| v.len()).sum()
    }
}

impl CheckpointStore for MemoryStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let _span = obs::span("ckpt_put", "ckpt").arg("bytes", data.len() as u64);
        self.blobs.lock().insert(key.to_string(), data.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let _span = obs::span("ckpt_get", "ckpt");
        Ok(self.blobs.lock().get(key).cloned())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.blobs.lock().remove(key);
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>> {
        let mut keys: Vec<String> = self.blobs.lock().keys().cloned().collect();
        keys.sort();
        Ok(keys)
    }
}

/// Temp-file write granularity: small enough that a mid-put crash
/// injected between chunk writes leaves a visibly partial temp file.
const DIR_WRITE_CHUNK: usize = 4096;

/// Filesystem-backed store; each key maps to one file under the root.
///
/// Puts are crash-atomic: data lands in a uniquely named dot-prefixed
/// temp file (dot-prefixed names are not valid keys, so temp files can
/// never collide with stored blobs — the old `key.tmp` scheme could), is
/// fsynced, and is renamed over the final key; the directory is fsynced
/// after the rename. A crash at any point leaves either the old blob or
/// the new one under the key, never a partial write.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
    tmp_seq: AtomicU64,
    faults: Option<Arc<FaultInjector>>,
}

impl DirStore {
    /// Creates (if needed) and opens a directory-backed store.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| EngineError::Checkpoint(format!("create {root:?}: {e}")))?;
        Ok(DirStore {
            root,
            tmp_seq: AtomicU64::new(0),
            faults: None,
        })
    }

    /// Injects `faults` into the chunked temp-file write
    /// ([`Site::DirWrite`]): an `Io` fault kills the put mid-write —
    /// exactly the crash the atomic rename protects against.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty() || key.contains('/') || key.contains("..") || key.starts_with('.') {
            return Err(EngineError::Checkpoint(format!(
                "invalid checkpoint key {key:?}"
            )));
        }
        Ok(self.root.join(key))
    }

    /// Writes `data` to `file` in chunks, consulting the fault injector
    /// before each chunk so a plan can crash the put mid-way.
    fn write_chunked(&self, file: &mut std::fs::File, data: &[u8]) -> std::io::Result<()> {
        let mut written = 0usize;
        for chunk in data.chunks(DIR_WRITE_CHUNK) {
            if let Some(inj) = &self.faults {
                match inj.next(Site::DirWrite, Op::at(written as u64, chunk.len() as u64)) {
                    Some(FaultKind::Io(k)) => return Err(k.to_error()),
                    Some(FaultKind::TornWrite { fraction }) => {
                        let keep = (chunk.len() as f64 * fraction.clamp(0.0, 1.0)) as usize;
                        file.write_all(&chunk[..keep])?;
                        return Err(std::io::Error::other("injected fault: torn dir write"));
                    }
                    Some(FaultKind::BitFlip { offset }) => {
                        let mut corrupt = chunk.to_vec();
                        hourglass_faults::flip_bit(&mut corrupt, offset);
                        file.write_all(&corrupt)?;
                        written += chunk.len();
                        continue;
                    }
                    Some(FaultKind::Delay { .. }) | None => {}
                }
            }
            file.write_all(chunk)?;
            written += chunk.len();
        }
        Ok(())
    }
}

impl CheckpointStore for DirStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let _span = obs::span("ckpt_put", "ckpt").arg("bytes", data.len() as u64);
        let path = self.path_of(key)?;
        let tmp = self.root.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = || -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            self.write_chunked(&mut file, data)?;
            file.sync_all()?;
            Ok(())
        };
        if let Err(e) = write() {
            // A failed put must leave no temp debris — and, thanks to the
            // rename below never having happened, the old blob intact.
            std::fs::remove_file(&tmp).ok();
            return Err(EngineError::Checkpoint(format!("write {tmp:?}: {e}")));
        }
        std::fs::rename(&tmp, &path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            EngineError::Checkpoint(format!("rename {path:?}: {e}"))
        })?;
        // Persist the rename itself (directory metadata).
        if let Ok(dir) = std::fs::File::open(&self.root) {
            dir.sync_all().ok();
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let _span = obs::span("ckpt_get", "ckpt");
        let path = self.path_of(key)?;
        match std::fs::read(&path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(EngineError::Checkpoint(format!("read {path:?}: {e}"))),
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_of(key)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(EngineError::Checkpoint(format!("delete {path:?}: {e}"))),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        let mut keys = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| EngineError::Checkpoint(format!("list {:?}: {e}", self.root)))?;
        for entry in entries {
            let entry = entry.map_err(|e| EngineError::Checkpoint(format!("list entry: {e}")))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.starts_with('.') {
                    keys.push(name.to_string());
                }
            }
        }
        keys.sort();
        Ok(keys)
    }
}

/// A [`CheckpointStore`] wrapper injecting a deterministic
/// [`hourglass_faults::FaultPlan`] into every operation.
///
/// The wrapper models a *non-atomic* remote store: a torn put commits the
/// partial prefix under the key and then fails, a bit-flipped get returns
/// silently corrupted bytes (the framing layer's checksum is what catches
/// it), an `Io` fault fails the call cleanly before any state changes.
pub struct FaultyStore<S> {
    inner: S,
    injector: Arc<FaultInjector>,
}

impl<S: CheckpointStore> FaultyStore<S> {
    /// Wraps `inner`, consulting `injector` on every operation.
    pub fn new(inner: S, injector: FaultInjector) -> Self {
        FaultyStore {
            inner,
            injector: Arc::new(injector),
        }
    }

    /// Wraps `inner` with a shared injector (so a [`DirStore`]'s
    /// `DirWrite` site can draw from the same schedule).
    pub fn with_shared(inner: S, injector: Arc<FaultInjector>) -> Self {
        FaultyStore { inner, injector }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The injector driving this wrapper.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }
}

impl<S: CheckpointStore> CheckpointStore for FaultyStore<S> {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        match self
            .injector
            .next(Site::StorePut, Op::len(data.len() as u64))
        {
            Some(FaultKind::Io(k)) => Err(EngineError::Checkpoint(format!(
                "put {key:?}: {}",
                k.to_error()
            ))),
            Some(FaultKind::TornWrite { fraction }) => {
                let keep = (data.len() as f64 * fraction.clamp(0.0, 1.0)) as usize;
                self.inner.put(key, &data[..keep])?;
                Err(EngineError::Checkpoint(format!(
                    "put {key:?}: torn write after {keep} of {} bytes",
                    data.len()
                )))
            }
            Some(FaultKind::BitFlip { offset }) => {
                let mut corrupt = data.to_vec();
                hourglass_faults::flip_bit(&mut corrupt, offset);
                self.inner.put(key, &corrupt)
            }
            Some(FaultKind::Delay { .. }) | None => self.inner.put(key, data),
        }
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let data = self.inner.get(key)?;
        let len = data.as_ref().map_or(0, |d| d.len() as u64);
        match self.injector.next(Site::StoreGet, Op::len(len)) {
            Some(FaultKind::Io(k)) => Err(EngineError::Checkpoint(format!(
                "get {key:?}: {}",
                k.to_error()
            ))),
            Some(FaultKind::TornWrite { fraction }) => Ok(data.map(|d| {
                let keep = (d.len() as f64 * fraction.clamp(0.0, 1.0)) as usize;
                d[..keep].to_vec()
            })),
            Some(FaultKind::BitFlip { offset }) => Ok(data.map(|mut d| {
                hourglass_faults::flip_bit(&mut d, offset);
                d
            })),
            Some(FaultKind::Delay { .. }) | None => Ok(data),
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        match self.injector.next(Site::StoreDelete, Op::none()) {
            Some(FaultKind::Io(k)) => Err(EngineError::Checkpoint(format!(
                "delete {key:?}: {}",
                k.to_error()
            ))),
            _ => self.inner.delete(key),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        self.inner.keys()
    }
}

/// Stores `payload` under `key` wrapped in a CRC32C frame, so torn writes
/// and bit flips are detected by [`get_framed`] instead of decoded.
pub fn put_framed(store: &dyn CheckpointStore, key: &str, payload: &[u8]) -> Result<()> {
    store.put(key, &frame(payload))
}

/// Fetches and verifies a framed blob. A missing key is `Ok(None)`; a
/// present-but-corrupt blob (bad magic, length mismatch, checksum
/// mismatch) is an [`EngineError::Checkpoint`].
pub fn get_framed(store: &dyn CheckpointStore, key: &str) -> Result<Option<Vec<u8>>> {
    match store.get(key)? {
        None => Ok(None),
        Some(blob) => unframe(&blob)
            .map(|payload| Some(payload.to_vec()))
            .map_err(|e| EngineError::Checkpoint(format!("corrupt checkpoint {key:?}: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hourglass_faults::{FaultPlan, IoKind, Trigger};

    /// Shared contract suite: every store implementation (and every
    /// fault-free wrapped variant) must pass it unchanged.
    fn exercise(store: &dyn CheckpointStore) {
        assert_eq!(store.get("a").expect("get"), None);
        store.put("a", b"hello").expect("put");
        store.put("b", b"world").expect("put");
        assert_eq!(store.get("a").expect("get").as_deref(), Some(&b"hello"[..]));
        assert_eq!(store.keys().expect("keys"), vec!["a", "b"]);
        store.put("a", b"rewritten").expect("put");
        assert_eq!(
            store.get("a").expect("get").as_deref(),
            Some(&b"rewritten"[..])
        );
        store.delete("a").expect("delete");
        store.delete("a").expect("idempotent delete");
        assert_eq!(store.get("a").expect("get"), None);
        assert_eq!(store.keys().expect("keys"), vec!["b"]);
        store.delete("b").expect("cleanup");
        // Framed round-trip through the same store.
        put_framed(store, "framed", b"checkpoint payload").expect("framed put");
        assert_eq!(
            get_framed(store, "framed").expect("framed get").as_deref(),
            Some(&b"checkpoint payload"[..])
        );
        assert_eq!(get_framed(store, "absent").expect("framed miss"), None);
        store.delete("framed").expect("cleanup");
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hourglass-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn memory_store_contract() {
        let s = MemoryStore::new();
        exercise(&s);
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn dir_store_contract() {
        let dir = temp_dir("contract");
        let s = DirStore::open(&dir).expect("open");
        exercise(&s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_store_with_empty_plan_meets_contract() {
        exercise(&FaultyStore::new(
            MemoryStore::new(),
            FaultPlan::new(7).injector(),
        ));
        let dir = temp_dir("faulty-contract");
        exercise(&FaultyStore::new(
            DirStore::open(&dir).expect("open"),
            FaultPlan::new(7).injector(),
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_store_rejects_path_traversal() {
        let dir = temp_dir("traversal");
        let s = DirStore::open(&dir).expect("open");
        assert!(s.put("../evil", b"x").is_err());
        assert!(s.put("a/b", b"x").is_err());
        assert!(s.put("", b"x").is_err());
        assert!(s.put(".hidden", b"x").is_err(), "dot keys are reserved");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_store_colliding_temp_names_fixed() {
        // The old scheme derived one temp name per *extension-stripped*
        // key ("a" and "a.bin" both wrote "a.tmp") and hid `*.tmp` keys
        // from keys(). Unique dot-prefixed temps fix both.
        let dir = temp_dir("collide");
        let s = DirStore::open(&dir).expect("open");
        s.put("a", b"one").expect("put");
        s.put("a.bin", b"two").expect("put");
        s.put("a.tmp", b"three").expect("put");
        assert_eq!(s.get("a").expect("get").as_deref(), Some(&b"one"[..]));
        assert_eq!(s.get("a.bin").expect("get").as_deref(), Some(&b"two"[..]));
        assert_eq!(s.keys().expect("keys"), vec!["a", "a.bin", "a.tmp"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn get_after_failed_put_returns_old_value() {
        // Io fault on the second put: the first blob must survive intact.
        let plan = FaultPlan::new(1).rule_budgeted(
            Site::StorePut,
            Trigger::OnCall(1),
            FaultKind::Io(IoKind::TimedOut),
            1,
        );
        let store = FaultyStore::new(MemoryStore::new(), plan.injector());
        store.put("k", b"old").expect("first put");
        assert!(store.put("k", b"new").is_err(), "injected put failure");
        assert_eq!(store.get("k").expect("get").as_deref(), Some(&b"old"[..]));
        assert_eq!(store.keys().expect("keys"), vec!["k"]);
    }

    #[test]
    fn keys_after_torn_write_list_the_partial_blob() {
        // A torn put over a NON-atomic store commits the prefix: the key
        // is listed, the raw value is partial, and the framing layer is
        // what rejects it.
        let plan = FaultPlan::new(2).rule_budgeted(
            Site::StorePut,
            Trigger::OnCall(0),
            FaultKind::TornWrite { fraction: 0.5 },
            1,
        );
        let store = FaultyStore::new(MemoryStore::new(), plan.injector());
        assert!(put_framed(&store, "k", b"full payload bytes").is_err());
        assert_eq!(store.keys().expect("keys"), vec!["k"]);
        let raw = store.get("k").expect("raw get").expect("partial blob");
        assert!(raw.len() < frame(b"full payload bytes").len());
        assert!(
            get_framed(&store, "k").is_err(),
            "framing must reject the torn blob"
        );
    }

    #[test]
    fn dir_store_put_killed_mid_write_preserves_old_value() {
        // Regression for the crash-atomicity fix: a put killed between
        // chunk writes (via the DirWrite fault site) must leave the old
        // blob under the key and no temp debris.
        let plan = FaultPlan::new(3).rule_budgeted(
            Site::DirWrite,
            Trigger::AtByte(DIR_WRITE_CHUNK as u64 + 1),
            FaultKind::Io(IoKind::Other),
            1,
        );
        let inj = Arc::new(plan.injector());
        let dir = temp_dir("crash");
        let s = DirStore::open(&dir).expect("open").with_faults(inj);
        s.put("ckpt", b"old value").expect("seed put");
        let big = vec![0xABu8; DIR_WRITE_CHUNK * 3];
        assert!(s.put("ckpt", &big).is_err(), "injected mid-write crash");
        assert_eq!(
            s.get("ckpt").expect("get").as_deref(),
            Some(&b"old value"[..])
        );
        assert_eq!(s.keys().expect("keys"), vec!["ckpt"]);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("list")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "temp debris left: {leftovers:?}");
        // The store keeps working after the failed put.
        s.put("ckpt", &big).expect("retry succeeds");
        assert_eq!(s.get("ckpt").expect("get").as_deref(), Some(&big[..]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn framed_checkpoint_every_single_bit_flip_is_detected() {
        let store = MemoryStore::new();
        put_framed(&store, "ckpt", b"superstep 7 state").expect("put");
        let blob = store.get("ckpt").expect("get").expect("blob");
        for bit in 0..blob.len() * 8 {
            let mut bad = blob.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            store.put("ckpt", &bad).expect("put corrupted");
            assert!(
                get_framed(&store, "ckpt").is_err(),
                "bit flip at {bit} went undetected"
            );
        }
    }

    #[test]
    fn faulty_store_bitflip_get_is_caught_by_framing() {
        let plan = FaultPlan::new(4).rule_budgeted(
            Site::StoreGet,
            Trigger::OnCall(0),
            FaultKind::BitFlip { offset: 101 },
            1,
        );
        let store = FaultyStore::new(MemoryStore::new(), plan.injector());
        put_framed(&store, "k", b"payload that must not silently corrupt").expect("put");
        assert!(get_framed(&store, "k").is_err(), "flip must be detected");
        // Budget exhausted: the retry reads clean data.
        assert_eq!(
            get_framed(&store, "k").expect("clean get").as_deref(),
            Some(&b"payload that must not silently corrupt"[..])
        );
    }
}
