//! Durable checkpoint stores (the S3 stand-in).
//!
//! The paper modifies Giraph to write checkpoints to Amazon S3 rather than
//! the cluster filesystem, "allowing a recovery from a full system failure
//! that may occur due to evictions" (§7). [`CheckpointStore`] abstracts
//! that durable external store; [`MemoryStore`] keeps blobs in RAM (for
//! tests and simulations), [`DirStore`] writes them to a directory.

use crate::{EngineError, Result};
use hourglass_obs as obs;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;

/// A durable key→blob store surviving full-cluster failures.
pub trait CheckpointStore: Send + Sync {
    /// Persists `data` under `key`, replacing any previous blob.
    fn put(&self, key: &str, data: &[u8]) -> Result<()>;

    /// Fetches the blob stored under `key`.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;

    /// Removes `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;

    /// Lists all stored keys.
    fn keys(&self) -> Result<Vec<String>>;
}

/// In-memory store for tests and simulation.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes stored (used by save-time cost models).
    pub fn total_bytes(&self) -> usize {
        self.blobs.lock().values().map(|v| v.len()).sum()
    }
}

impl CheckpointStore for MemoryStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let _span = obs::span("ckpt_put", "ckpt").arg("bytes", data.len() as u64);
        self.blobs.lock().insert(key.to_string(), data.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let _span = obs::span("ckpt_get", "ckpt");
        Ok(self.blobs.lock().get(key).cloned())
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.blobs.lock().remove(key);
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>> {
        let mut keys: Vec<String> = self.blobs.lock().keys().cloned().collect();
        keys.sort();
        Ok(keys)
    }
}

/// Filesystem-backed store; each key maps to one file under the root.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Creates (if needed) and opens a directory-backed store.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| EngineError::Checkpoint(format!("create {root:?}: {e}")))?;
        Ok(DirStore { root })
    }

    fn path_of(&self, key: &str) -> Result<PathBuf> {
        if key.is_empty() || key.contains('/') || key.contains("..") {
            return Err(EngineError::Checkpoint(format!(
                "invalid checkpoint key {key:?}"
            )));
        }
        Ok(self.root.join(key))
    }
}

impl CheckpointStore for DirStore {
    fn put(&self, key: &str, data: &[u8]) -> Result<()> {
        let _span = obs::span("ckpt_put", "ckpt").arg("bytes", data.len() as u64);
        let path = self.path_of(key)?;
        // Write-then-rename for atomicity against partial writes.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, data)
            .map_err(|e| EngineError::Checkpoint(format!("write {tmp:?}: {e}")))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| EngineError::Checkpoint(format!("rename {path:?}: {e}")))?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let _span = obs::span("ckpt_get", "ckpt");
        let path = self.path_of(key)?;
        match std::fs::read(&path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(EngineError::Checkpoint(format!("read {path:?}: {e}"))),
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        let path = self.path_of(key)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(EngineError::Checkpoint(format!("delete {path:?}: {e}"))),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        let mut keys = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| EngineError::Checkpoint(format!("list {:?}: {e}", self.root)))?;
        for entry in entries {
            let entry = entry.map_err(|e| EngineError::Checkpoint(format!("list entry: {e}")))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.ends_with(".tmp") {
                    keys.push(name.to_string());
                }
            }
        }
        keys.sort();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn CheckpointStore) {
        assert_eq!(store.get("a").expect("get"), None);
        store.put("a", b"hello").expect("put");
        store.put("b", b"world").expect("put");
        assert_eq!(store.get("a").expect("get").as_deref(), Some(&b"hello"[..]));
        assert_eq!(store.keys().expect("keys"), vec!["a", "b"]);
        store.put("a", b"rewritten").expect("put");
        assert_eq!(
            store.get("a").expect("get").as_deref(),
            Some(&b"rewritten"[..])
        );
        store.delete("a").expect("delete");
        store.delete("a").expect("idempotent delete");
        assert_eq!(store.get("a").expect("get"), None);
        assert_eq!(store.keys().expect("keys"), vec!["b"]);
    }

    #[test]
    fn memory_store_contract() {
        let s = MemoryStore::new();
        exercise(&s);
        assert_eq!(s.total_bytes(), 5);
    }

    #[test]
    fn dir_store_contract() {
        let dir = std::env::temp_dir().join(format!("hourglass-ckpt-{}", std::process::id()));
        let s = DirStore::open(&dir).expect("open");
        exercise(&s);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_store_rejects_path_traversal() {
        let dir = std::env::temp_dir().join(format!("hourglass-ckpt2-{}", std::process::id()));
        let s = DirStore::open(&dir).expect("open");
        assert!(s.put("../evil", b"x").is_err());
        assert!(s.put("a/b", b"x").is_err());
        assert!(s.put("", b"x").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
