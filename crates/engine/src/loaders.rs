//! Graph loading strategies (§6.1/§8.3.1): stream, hash and micro loading.
//!
//! Three layers:
//!
//! - **[`Datastore`]** — the at-rest layout the loaders read. Two physical
//!   formats behind one abstraction: the text edge list ([`EdgeListStore`],
//!   the comparison baseline) and the sharded binary store
//!   ([`ShardedArcs`], `HGS1`) whose buckets are contiguous blocks of
//!   little-endian `u32` arc pairs decoded from byte slices with zero
//!   copies. Either layout is bucketed per micro-partition (the offline
//!   fast-reload layout: "graph data remains partitioned in the same way
//!   across different configurations", §6.2); a single bucket is the flat
//!   layout.
//! - **Physical loaders** ([`stream_load`], [`hash_load`], [`micro_load`])
//!   parse a datastore into per-worker adjacency slabs, with the hash
//!   loader's cross-worker shuffle and the micro loader's exchange-free
//!   parallel reads faithfully reproduced (and measured by the Criterion
//!   benches). Adjacency assembly is a two-pass counting sort into a
//!   CSR-shaped offsets+neighbors slab per worker — the vertex-id space is
//!   dense, so per-worker slots are derived from the [`Partitioning`] once
//!   and every arc is scattered straight into place; no tree maps, no
//!   per-vertex allocation. [`reload_graph`] merges the slabs back into a
//!   [`Graph`] — the deployment step that hands a (re)loaded graph to the
//!   engine.
//! - **[`LoaderCostModel`]** converts dataset sizes and machine counts
//!   into loading *seconds* at paper scale, calibrated per [`StoreFormat`]
//!   so the relative behaviour of the three strategies matches Figure 6
//!   (stream grows with the dataset and suffers a centralized-memory
//!   penalty; hash pays the network at small clusters; micro scales with
//!   `1/k`).

use crate::exec::{par_map, par_map_when};
use crate::{EngineError, Result};
use hourglass_faults::{FaultInjector, FaultKind, FaultPlan, Op, RetryPolicy, Site};
use hourglass_graph::io_binary::{
    decode_arcs, decode_arcs_into, max_arc_id, ShardedArcs, ARC_BYTES,
};
use hourglass_graph::io_mmap::MappedShards;
use hourglass_graph::{Graph, VertexId};
use hourglass_metrics as hm;
use hourglass_obs as obs;
use hourglass_partition::cluster::ClusteringDelta;
use hourglass_partition::Partitioning;
use std::fmt;

/// The three loading strategies of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoaderKind {
    /// Master reads and parses the whole dataset, then distributes
    /// (stream-based partitioners force this centralization, §6.1).
    Stream,
    /// Workers read chunks in parallel, then shuffle entities to their
    /// owners over the network.
    Hash,
    /// Workers read exactly their own micro-partitions: parallel and
    /// exchange-free (the Hourglass fast reload, §6.2).
    Micro,
}

impl fmt::Display for LoaderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderKind::Stream => f.write_str("Stream Loader"),
            LoaderKind::Hash => f.write_str("Hash Loader"),
            LoaderKind::Micro => f.write_str("Micro Loader"),
        }
    }
}

/// Physical at-rest format of a [`Datastore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreFormat {
    /// `u v\n` text lines (the SNAP-style baseline).
    Text,
    /// Sharded little-endian binary arc pairs (`HGS1`/`HGS2`), read through
    /// buffered IO into a heap slab.
    Binary,
    /// The same binary layout served from a memory-mapped file: bucket
    /// reads are page-cache slices, so loading pays no copy and no
    /// up-front payload checksum pass.
    BinaryMapped,
}

impl fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFormat::Text => f.write_str("text"),
            StoreFormat::Binary => f.write_str("binary"),
            StoreFormat::BinaryMapped => f.write_str("binary-mmap"),
        }
    }
}

// ---------------------------------------------------------------------------
// Modeled loading times (paper-scale reproduction of Figure 6).
// ---------------------------------------------------------------------------

/// Analytical loading-time model.
#[derive(Debug, Clone, Copy)]
pub struct LoaderCostModel {
    /// Per-machine bandwidth reading the external datastore, bytes/s.
    pub datastore_bandwidth: f64,
    /// Per-machine network bandwidth for shuffles, bytes/s.
    pub network_bandwidth: f64,
    /// Per-machine parse throughput, bytes/s.
    pub parse_rate: f64,
    /// In-memory entity size per raw input byte (parsed vertex/edge objects
    /// shipped during a shuffle are larger than their text form).
    pub expansion_factor: f64,
    /// Bytes a single machine can hold/parse before centralized loading
    /// degrades (GC/memory pressure on the master).
    pub master_capacity: f64,
    /// Fixed coordination overhead, seconds.
    pub fixed_overhead: f64,
}

impl LoaderCostModel {
    /// Calibration used for the Figure 6 reproduction: S3-class datastore
    /// reads, 2016 EC2 NICs, Java-like parse rates on Giraph over *text*
    /// edge lists (these set the *ratios* Figure 6 reports; absolute
    /// numbers are secondary).
    pub fn aws_2016() -> Self {
        LoaderCostModel {
            datastore_bandwidth: 90.0e6,
            network_bandwidth: 280.0e6,
            parse_rate: 45.0e6,
            expansion_factor: 4.0,
            master_capacity: 3.0e9,
            fixed_overhead: 8.0,
        }
    }

    /// The same machine calibration, adjusted for the datastore format:
    /// the binary store decodes at memory bandwidth rather than text-parse
    /// speed, and its fixed-width arcs expand less when shipped in parsed
    /// form (8 input bytes become one in-memory arc, vs ~14 text bytes
    /// becoming the same arc). The mapped variant additionally drops the
    /// read-into-heap copy and the up-front checksum pass: bucket bytes
    /// come straight out of the page cache (local-NVMe-class effective
    /// bandwidth rather than S3-class), decode is the only touch of each
    /// byte, and the open costs metadata only (lower fixed overhead).
    pub fn aws_2016_for(format: StoreFormat) -> Self {
        match format {
            StoreFormat::Text => Self::aws_2016(),
            StoreFormat::Binary => LoaderCostModel {
                parse_rate: 1.2e9,
                expansion_factor: 2.0,
                ..Self::aws_2016()
            },
            StoreFormat::BinaryMapped => LoaderCostModel {
                datastore_bandwidth: 400.0e6,
                parse_rate: 2.4e9,
                expansion_factor: 2.0,
                fixed_overhead: 6.0,
                ..Self::aws_2016()
            },
        }
    }

    /// Modeled loading time in seconds for `bytes` of edge-list data on
    /// `machines` workers.
    pub fn time(&self, kind: LoaderKind, bytes: f64, machines: u32) -> Result<f64> {
        if machines == 0 {
            return Err(EngineError::InvalidConfig(
                "need at least one machine".into(),
            ));
        }
        if bytes < 0.0 || bytes.is_nan() {
            return Err(EngineError::InvalidConfig(format!(
                "bytes must be non-negative, got {bytes}"
            )));
        }
        let k = machines as f64;
        let t = match kind {
            LoaderKind::Stream => {
                // The master reads and parses everything; centralized
                // in-memory construction degrades past its capacity; the
                // parsed entities are then pushed to the workers.
                let pressure = 1.0 + bytes / self.master_capacity;
                let read = bytes / self.datastore_bandwidth;
                let parse = bytes / self.parse_rate * pressure;
                let distribute =
                    bytes * self.expansion_factor * (k - 1.0) / k / self.network_bandwidth;
                read + parse + distribute
            }
            LoaderKind::Hash => {
                // Parallel chunk reads, then an all-to-all shuffle of the
                // (1 − 1/k) fraction of entities that landed on the wrong
                // worker, paid in expanded form on every NIC.
                let chunk = bytes / k;
                let read = chunk / self.datastore_bandwidth;
                let parse = chunk / self.parse_rate;
                let misplaced = chunk * (1.0 - 1.0 / k);
                let shuffle = misplaced * self.expansion_factor / self.network_bandwidth
                    + misplaced / self.parse_rate;
                read + parse + shuffle
            }
            LoaderKind::Micro => {
                // Workers read exactly their own micro-partitions.
                let chunk = bytes / k;
                chunk / self.datastore_bandwidth + chunk / self.parse_rate
            }
        };
        Ok(t + self.fixed_overhead)
    }
}

// ---------------------------------------------------------------------------
// Datastores.
// ---------------------------------------------------------------------------

/// Appends the decimal digits of `x` without any per-arc heap allocation.
fn push_u32(s: &mut String, mut x: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    s.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ascii"));
}

/// A text edge-list datastore: buckets of `u v\n` lines. One bucket is the
/// flat layout; one bucket per micro-partition is the fast-reload layout
/// (bucket `m` holds the arcs whose source lives in micro-partition `m`,
/// so each undirected edge appears in both endpoints' buckets).
///
/// Kept as the measured comparison baseline for the binary store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeListStore {
    buckets: Vec<String>,
}

impl EdgeListStore {
    /// Builds a flat (single-bucket) store from a graph in one pass, with
    /// integer formatting into a pre-sized buffer (no per-arc `String`).
    pub fn flat_from_graph(g: &Graph) -> Self {
        let mut flat = String::with_capacity(g.num_directed_edges() * 14);
        for (u, v, _) in g.arcs() {
            push_u32(&mut flat, u);
            flat.push(' ');
            push_u32(&mut flat, v);
            flat.push('\n');
        }
        EdgeListStore {
            buckets: vec![flat],
        }
    }

    /// Builds a store bucketed by `micro` (the fast-reload layout)
    /// directly — single pass over the arcs, no intermediate flat copy.
    pub fn micro_from_graph(g: &Graph, micro: &Partitioning) -> Result<Self> {
        if micro.num_vertices() != g.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "micro partitioning covers {} vertices, graph has {}",
                micro.num_vertices(),
                g.num_vertices()
            )));
        }
        let counts = hourglass_partition::micro::micro_arc_counts(g, micro)
            .map_err(EngineError::Partition)?;
        let mut buckets: Vec<String> = counts
            .iter()
            .map(|&c| String::with_capacity(c as usize * 14))
            .collect();
        for u in 0..g.num_vertices() as VertexId {
            let bucket = &mut buckets[micro.part_of(u) as usize];
            for &v in g.neighbors(u) {
                push_u32(bucket, u);
                bucket.push(' ');
                push_u32(bucket, v);
                bucket.push('\n');
            }
        }
        Ok(EdgeListStore { buckets })
    }

    /// Wraps externally produced buckets (whole lines per bucket).
    pub fn from_buckets(buckets: Vec<String>) -> Result<Self> {
        if buckets.is_empty() {
            return Err(EngineError::InvalidConfig(
                "a text store needs at least one bucket".into(),
            ));
        }
        Ok(EdgeListStore { buckets })
    }

    /// The per-bucket text blocks.
    pub fn buckets(&self) -> &[String] {
        &self.buckets
    }

    /// Number of buckets (1 = flat layout).
    pub fn num_buckets(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// Total size of the stored text in bytes.
    pub fn byte_size(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }
}

/// The datastore a loader reads: either the text baseline or the sharded
/// binary layout, behind one dispatch point so every loader runs over both.
#[derive(Debug, Clone, PartialEq)]
pub enum Datastore {
    /// Text edge-list buckets.
    Text(EdgeListStore),
    /// Sharded binary arc buckets (`HGS2` on disk, `HGS1` legacy reads),
    /// decoded zero-copy.
    Binary(ShardedArcs),
    /// The sharded binary layout memory-mapped from its `HGS2` file:
    /// bucket bytes are page-cache slices, so a (re)load copies nothing
    /// and graphs larger than RAM stay loadable. Shared behind an `Arc`
    /// so cloning a store handle never remaps or copies the file.
    Mapped(std::sync::Arc<MappedShards>),
}

impl From<EdgeListStore> for Datastore {
    fn from(s: EdgeListStore) -> Self {
        Datastore::Text(s)
    }
}

impl From<ShardedArcs> for Datastore {
    fn from(s: ShardedArcs) -> Self {
        Datastore::Binary(s)
    }
}

impl From<MappedShards> for Datastore {
    fn from(s: MappedShards) -> Self {
        Datastore::Mapped(std::sync::Arc::new(s))
    }
}

impl Datastore {
    /// Flat text store from a graph.
    pub fn text_flat(g: &Graph) -> Self {
        Datastore::Text(EdgeListStore::flat_from_graph(g))
    }

    /// Micro-bucketed text store from a graph.
    pub fn text_micro(g: &Graph, micro: &Partitioning) -> Result<Self> {
        Ok(Datastore::Text(EdgeListStore::micro_from_graph(g, micro)?))
    }

    /// Flat binary store from a graph.
    pub fn binary_flat(g: &Graph) -> Self {
        Datastore::Binary(ShardedArcs::flat_from_graph(g))
    }

    /// Micro-bucketed binary store from a graph: one shard per
    /// micro-partition, each a contiguous block of LE arc pairs.
    pub fn binary_micro(g: &Graph, micro: &Partitioning) -> Result<Self> {
        if micro.num_vertices() != g.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "micro partitioning covers {} vertices, graph has {}",
                micro.num_vertices(),
                g.num_vertices()
            )));
        }
        let sharded = ShardedArcs::from_graph_buckets(g, micro.assignment(), micro.num_parts())
            .map_err(|e| EngineError::InvalidConfig(format!("sharded store: {e}")))?;
        Ok(Datastore::Binary(sharded))
    }

    /// Opens the `HGS2`/`HGS1` file at `path` as a memory-mapped store.
    pub fn mapped_from_path<P: AsRef<std::path::Path>>(path: P) -> Result<Self> {
        let m = MappedShards::open(path)
            .map_err(|e| EngineError::InvalidConfig(format!("mapped store: {e}")))?;
        Ok(Datastore::from(m))
    }

    /// Writes the flat binary store for `g` to `path` (`HGS2`) and reopens
    /// it memory-mapped.
    pub fn mapped_flat<P: AsRef<std::path::Path>>(g: &Graph, path: P) -> Result<Self> {
        Self::write_and_map(ShardedArcs::flat_from_graph(g), path)
    }

    /// Writes the micro-bucketed binary store for `g` to `path` (`HGS2`)
    /// and reopens it memory-mapped — the on-disk fast-reload layout.
    pub fn mapped_micro<P: AsRef<std::path::Path>>(
        g: &Graph,
        micro: &Partitioning,
        path: P,
    ) -> Result<Self> {
        if micro.num_vertices() != g.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "micro partitioning covers {} vertices, graph has {}",
                micro.num_vertices(),
                g.num_vertices()
            )));
        }
        let sharded = ShardedArcs::from_graph_buckets(g, micro.assignment(), micro.num_parts())
            .map_err(|e| EngineError::InvalidConfig(format!("sharded store: {e}")))?;
        Self::write_and_map(sharded, path)
    }

    fn write_and_map<P: AsRef<std::path::Path>>(sharded: ShardedArcs, path: P) -> Result<Self> {
        let write = || -> std::io::Result<()> {
            let file = std::fs::File::create(path.as_ref())?;
            let mut w = std::io::BufWriter::new(file);
            sharded
                .write_to(&mut w)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            use std::io::Write;
            w.flush()
        };
        write().map_err(|e| EngineError::InvalidConfig(format!("store write: {e}")))?;
        Self::mapped_from_path(path)
    }

    /// Physical format of this store.
    pub fn format(&self) -> StoreFormat {
        match self {
            Datastore::Text(_) => StoreFormat::Text,
            Datastore::Binary(_) => StoreFormat::Binary,
            Datastore::Mapped(_) => StoreFormat::BinaryMapped,
        }
    }

    /// Number of buckets (1 = flat layout).
    pub fn num_buckets(&self) -> u32 {
        match self {
            Datastore::Text(s) => s.num_buckets(),
            Datastore::Binary(s) => s.num_buckets(),
            Datastore::Mapped(s) => s.num_buckets(),
        }
    }

    /// Stored size in bytes (text: all lines; binary: the arc payload).
    pub fn byte_size(&self) -> usize {
        match self {
            Datastore::Text(s) => s.byte_size(),
            Datastore::Binary(s) => s.payload_bytes(),
            Datastore::Mapped(s) => s.payload_bytes(),
        }
    }

    /// Stored size of one micro-partition bucket in bytes. Hash buckets
    /// over a power-law graph are heavily skewed (a hub-dominated bucket
    /// can hold an order of magnitude more arcs than the median), so
    /// reconfiguration planners size migrations by this, not by bucket
    /// count.
    pub fn bucket_byte_len(&self, b: u32) -> usize {
        match self {
            Datastore::Text(s) => s.buckets[b as usize].len(),
            Datastore::Binary(s) => s.bucket_bytes(b).len(),
            Datastore::Mapped(s) => s.bucket_bytes(b).len(),
        }
    }

    /// Raw encoded arc bytes of bucket `b` for the two binary-format
    /// variants (`None` on a text store) — the shared zero-copy read unit
    /// both the heap-backed and the mapped layout expose, so every loader
    /// takes one code path over both.
    pub fn arc_bucket_bytes(&self, b: u32) -> Option<&[u8]> {
        match self {
            Datastore::Text(_) => None,
            Datastore::Binary(s) => Some(s.bucket_bytes(b)),
            Datastore::Mapped(s) => Some(s.bucket_bytes(b)),
        }
    }

    /// Vertex-count header of the two binary-format variants (`None` on a
    /// text store, which carries no header to validate).
    fn binary_num_vertices(&self) -> Option<u32> {
        match self {
            Datastore::Text(_) => None,
            Datastore::Binary(s) => Some(s.num_vertices()),
            Datastore::Mapped(s) => Some(s.num_vertices()),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing and chunking.
// ---------------------------------------------------------------------------

/// Parses `u v` text lines into `out`. Blank lines and `#` comments are
/// part of the format and skipped silently; unparseable lines and arcs
/// referencing vertices `>= n` are dropped and *counted*.
fn parse_text_arcs(out: &mut Vec<(VertexId, VertexId)>, text: &str, n: u32) -> u64 {
    let mut skipped = 0u64;
    for l in text.lines() {
        if l.is_empty() || l.starts_with('#') || l.trim().is_empty() {
            continue;
        }
        let mut it = l.split_whitespace();
        let parsed = (|| {
            let u: u32 = it.next()?.parse().ok()?;
            let v: u32 = it.next()?.parse().ok()?;
            (u < n && v < n).then_some((u, v))
        })();
        match parsed {
            Some(arc) => out.push(arc),
            None => skipped += 1,
        }
    }
    skipped
}

/// Decodes LE arc pairs into `out`, dropping and counting arcs that
/// reference vertices `>= n` (corrupt or foreign entries).
///
/// The common case — a well-formed store where every id is in range — is
/// detected with one vectorized [`max_arc_id`] scan and then decoded
/// through the unfiltered [`decode_arcs_into`] bulk path; only a slice
/// that actually contains foreign ids pays the per-pair range check.
fn decode_bin_arcs(out: &mut Vec<(VertexId, VertexId)>, bytes: &[u8], n: u32) -> u64 {
    match max_arc_id(bytes) {
        None => 0,
        Some(max) if max < n => {
            decode_arcs_into(bytes, out);
            0
        }
        Some(_) => {
            let mut skipped = 0u64;
            out.reserve(bytes.len() / ARC_BYTES);
            for (u, v) in decode_arcs(bytes) {
                if u < n && v < n {
                    out.push((u, v));
                } else {
                    skipped += 1;
                }
            }
            skipped
        }
    }
}

/// Splits the store's bucket concatenation into `k` record-aligned chunks,
/// each a list of byte-range slices `(bucket, start, end)`. Records never
/// span buckets, so alignment happens within a bucket: text chunks end at
/// a newline, binary chunks at an arc-pair boundary.
fn chunk_ranges(store: &Datastore, k: usize) -> Vec<Vec<(u32, usize, usize)>> {
    let b = store.num_buckets() as usize;
    let lens: Vec<usize> = (0..b as u32).map(|i| store.bucket_byte_len(i)).collect();
    let total: usize = lens.iter().sum();
    // (bucket, offset) cut points, monotone, first = start, last = end.
    let mut cuts: Vec<(usize, usize)> = Vec::with_capacity(k + 1);
    cuts.push((0, 0));
    for i in 1..k {
        let mut target = total * i / k;
        // Locate the bucket containing the global offset `target`.
        let mut bucket = 0usize;
        while bucket < b && target >= lens[bucket] {
            target -= lens[bucket];
            bucket += 1;
        }
        let cut = if bucket >= b {
            (b, 0)
        } else {
            // Align forward to the next record boundary inside the bucket.
            let aligned = match store {
                Datastore::Text(s) => s.buckets[bucket][target..]
                    .find('\n')
                    .map(|p| target + p + 1)
                    .unwrap_or(lens[bucket]),
                Datastore::Binary(_) | Datastore::Mapped(_) => {
                    target.div_ceil(ARC_BYTES) * ARC_BYTES
                }
            };
            if aligned >= lens[bucket] {
                (bucket + 1, 0)
            } else {
                (bucket, aligned)
            }
        };
        cuts.push(cut.max(*cuts.last().expect("non-empty")));
    }
    cuts.push((b, 0));

    cuts.windows(2)
        .map(|w| {
            let ((b0, o0), (b1, o1)) = (w[0], w[1]);
            let mut slices = Vec::new();
            let mut push = |bucket: usize, start: usize, end: usize| {
                if start < end {
                    slices.push((bucket as u32, start, end));
                }
            };
            if b0 == b1 {
                push(b0, o0, o1);
            } else {
                if b0 < b {
                    push(b0, o0, lens[b0]);
                }
                for (mid, &len) in lens.iter().enumerate().take(b1.min(b)).skip(b0 + 1) {
                    push(mid, 0, len);
                }
                if b1 < b {
                    push(b1, 0, o1);
                }
            }
            slices
        })
        .collect()
}

/// Parses one chunk (a list of byte ranges) into arcs + skip count.
fn parse_chunk(
    store: &Datastore,
    ranges: &[(u32, usize, usize)],
    n: u32,
) -> (Vec<(VertexId, VertexId)>, u64) {
    let bytes: usize = ranges.iter().map(|&(_, s, e)| e - s).sum();
    let _span = obs::span("decode", "loader").arg("bytes", bytes as u64);
    let mut arcs = Vec::new();
    let mut skipped = 0u64;
    for &(bucket, start, end) in ranges {
        skipped += match store {
            Datastore::Text(s) => {
                parse_text_arcs(&mut arcs, &s.buckets[bucket as usize][start..end], n)
            }
            _ => decode_bin_arcs(
                &mut arcs,
                &store.arc_bucket_bytes(bucket).expect("binary store")[start..end],
                n,
            ),
        };
    }
    (arcs, skipped)
}

// ---------------------------------------------------------------------------
// Counting-sort assembly.
// ---------------------------------------------------------------------------

/// One worker's loaded state: its owned (active) vertices and their
/// adjacency, as a CSR-shaped offsets+neighbors slab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedWorker {
    /// Worker id.
    pub worker: u32,
    /// Owned vertices with at least one out-neighbor, ascending.
    vertices: Vec<VertexId>,
    /// `offsets[i]..offsets[i + 1]` indexes `neighbors` for `vertices[i]`.
    offsets: Vec<usize>,
    /// Concatenated out-neighbor lists, each sorted.
    neighbors: Vec<VertexId>,
}

impl LoadedWorker {
    /// Number of (active) vertices this worker loaded.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of loaded arcs (adjacency entries).
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// The loaded vertices, ascending.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Iterates `(vertex, out-neighbors)` in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, &self.neighbors[self.offsets[i]..self.offsets[i + 1]]))
    }
}

/// Per-worker slot layout derived from the vertex ownership once per load:
/// the id space is dense `u32`, so each worker's owned vertices map to a
/// contiguous slot range and arcs counting-sort straight into place.
struct AssemblyPlan {
    owner: Vec<u32>,
    slot_of: Vec<u32>,
    verts: Vec<Vec<VertexId>>,
}

impl AssemblyPlan {
    fn new(num_workers: u32, owner: Vec<u32>) -> Self {
        let _span = obs::span("plan", "loader")
            .arg("workers", num_workers as u64)
            .arg("vertices", owner.len() as u64);
        let mut counts = vec![0usize; num_workers as usize];
        for &w in &owner {
            counts[w as usize] += 1;
        }
        let mut verts: Vec<Vec<VertexId>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        let mut slot_of = vec![0u32; owner.len()];
        for (v, &w) in owner.iter().enumerate() {
            slot_of[v] = verts[w as usize].len() as u32;
            verts[w as usize].push(v as VertexId);
        }
        AssemblyPlan {
            owner,
            slot_of,
            verts,
        }
    }

    fn from_partitioning(p: &Partitioning) -> Self {
        Self::new(p.num_parts(), p.assignment().to_vec())
    }

    fn num_workers(&self) -> u32 {
        self.verts.len() as u32
    }
}

/// Borrowed arc source for one worker's assembly: routed parsed pairs, or
/// raw binary bucket slices iterated in place (the zero-copy micro path —
/// the counting and scatter passes both decode straight off the bytes).
enum WorkerArcs<'a> {
    Owned(Vec<(VertexId, VertexId)>),
    Bytes(Vec<&'a [u8]>),
}

/// Arc pairs bulk-decoded per block on the byte-backed assembly path:
/// large enough to amortize the block loop, small enough (64 KB of decoded
/// pairs) that the scatter reads the decoded block back out of cache.
const DECODE_BLOCK_ARCS: usize = 8192;

impl WorkerArcs<'_> {
    fn for_each(&self, mut f: impl FnMut(VertexId, VertexId)) {
        match self {
            WorkerArcs::Owned(arcs) => {
                for &(u, v) in arcs {
                    f(u, v);
                }
            }
            WorkerArcs::Bytes(slices) => {
                // Bulk path: decode a block of pairs with the vectorized
                // decoder, then run the (random-access) consumer over the
                // cache-resident block — instead of interleaving per-pair
                // byte decoding with the consumer's scattered writes.
                let mut block: Vec<(VertexId, VertexId)> = Vec::with_capacity(DECODE_BLOCK_ARCS);
                for s in slices {
                    for chunk in s.chunks(DECODE_BLOCK_ARCS * ARC_BYTES) {
                        block.clear();
                        decode_arcs_into(chunk, &mut block);
                        for &(u, v) in &block {
                            f(u, v);
                        }
                    }
                }
            }
        }
    }
}

/// Builds one worker's CSR slab by two-pass counting sort: count degrees
/// per slot, prefix-sum into offsets, scatter neighbors into place. Arcs
/// that are out of range or routed to the wrong worker are dropped and
/// counted (they can only come from a corrupt store or bucket map).
fn assemble_worker(w: u32, arcs: &WorkerArcs<'_>, plan: &AssemblyPlan) -> (LoadedWorker, u64) {
    let _span = obs::span("assemble", "loader").arg("worker", w as u64);
    let my = &plan.verts[w as usize];
    let n = plan.owner.len() as u32;
    let mut deg = vec![0u32; my.len()];
    let mut dropped = 0u64;
    arcs.for_each(|u, v| {
        if u < n && v < n && plan.owner[u as usize] == w {
            deg[plan.slot_of[u as usize] as usize] += 1;
        } else {
            dropped += 1;
        }
    });
    let mut slot_off = Vec::with_capacity(my.len() + 1);
    let mut acc = 0usize;
    slot_off.push(0);
    for &d in &deg {
        acc += d as usize;
        slot_off.push(acc);
    }
    let mut neighbors = vec![0 as VertexId; acc];
    let mut cursor = slot_off.clone();
    arcs.for_each(|u, v| {
        if u < n && v < n && plan.owner[u as usize] == w {
            let s = plan.slot_of[u as usize] as usize;
            neighbors[cursor[s]] = v;
            cursor[s] += 1;
        }
    });
    // Compact to active vertices; our stores emit every vertex's arcs in
    // ascending target order, so the sort below is a no-op check unless
    // the store was produced externally.
    let active = deg.iter().filter(|&&d| d > 0).count();
    let mut vertices = Vec::with_capacity(active);
    let mut offsets = Vec::with_capacity(active + 1);
    offsets.push(0);
    for (s, &d) in deg.iter().enumerate() {
        if d == 0 {
            continue;
        }
        vertices.push(my[s]);
        let seg = &mut neighbors[slot_off[s]..slot_off[s + 1]];
        if seg.windows(2).any(|p| p[0] > p[1]) {
            seg.sort_unstable();
        }
        offsets.push(slot_off[s + 1]);
    }
    (
        LoadedWorker {
            worker: w,
            vertices,
            offsets,
            neighbors,
        },
        dropped,
    )
}

/// Routes encoded binary chunks straight into per-worker arc vectors:
/// a counting pass and a scatter pass, both decoding in place off the
/// mapped/owned bucket bytes. This replaces the old full-load pipeline of
/// decode-into-one-big-`Vec` + copy-into-per-worker-`Vec`s — the arcs are
/// materialized exactly once, in their destination vectors.
///
/// `chunks` pairs each byte slice with the worker that "parses" it (the
/// master for stream loading, the chunk's reader for hash loading), which
/// is what the exchange accounting is relative to. Returns the per-worker
/// arcs plus `(skipped, exchanged)`.
fn route_bin_chunks(
    chunks: &[(u32, &[u8])],
    plan: &AssemblyPlan,
    n: u32,
) -> (Vec<WorkerArcs<'static>>, u64, u64) {
    let total_arcs: usize = chunks.iter().map(|&(_, s)| s.len() / ARC_BYTES).sum();
    let total_bytes = total_arcs * ARC_BYTES;
    let _span = obs::span("route", "loader").arg("arcs", total_arcs as u64);
    let decode_span = obs::span("decode", "loader").arg("bytes", total_bytes as u64);
    let mut counts = vec![0usize; plan.num_workers() as usize];
    let mut skipped = 0u64;
    let mut exchanged = 0u64;
    // Counting pass: validity is one vectorized max-scan per chunk; a
    // clean chunk then counts owners off the source words alone.
    for &(parser, bytes) in chunks {
        if max_arc_id(bytes).is_none_or(|max| max < n) {
            for pair in bytes.chunks_exact(ARC_BYTES) {
                let u = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
                let w = plan.owner[u as usize];
                counts[w as usize] += 1;
                exchanged += u64::from(w != parser);
            }
        } else {
            for (u, v) in decode_arcs(bytes) {
                if u < n && v < n {
                    let w = plan.owner[u as usize];
                    counts[w as usize] += 1;
                    exchanged += u64::from(w != parser);
                } else {
                    skipped += 1;
                }
            }
        }
    }
    drop(decode_span);
    // Scatter pass: exact capacities, every arc decoded into its final
    // destination vector.
    let mut per: Vec<Vec<(VertexId, VertexId)>> =
        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for &(_, bytes) in chunks {
        for (u, v) in decode_arcs(bytes) {
            if u < n && v < n {
                per[plan.owner[u as usize] as usize].push((u, v));
            }
        }
    }
    (
        per.into_iter().map(WorkerArcs::Owned).collect(),
        skipped,
        exchanged,
    )
}

/// Routes parsed arcs to their owning workers by counting sort (exact
/// per-worker capacity, one scatter pass).
fn route_by_owner(arcs: &[(VertexId, VertexId)], plan: &AssemblyPlan) -> Vec<WorkerArcs<'static>> {
    let _span = obs::span("route", "loader").arg("arcs", arcs.len() as u64);
    let mut counts = vec![0usize; plan.num_workers() as usize];
    for &(u, _) in arcs {
        counts[plan.owner[u as usize] as usize] += 1;
    }
    let mut per: Vec<Vec<(VertexId, VertexId)>> =
        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for &(u, v) in arcs {
        per[plan.owner[u as usize] as usize].push((u, v));
    }
    per.into_iter().map(WorkerArcs::Owned).collect()
}

/// Assembles every worker's slab in parallel.
fn assemble_all(plan: &AssemblyPlan, per_worker: Vec<WorkerArcs<'_>>) -> (Vec<LoadedWorker>, u64) {
    let indexed: Vec<(u32, WorkerArcs<'_>)> = per_worker
        .into_iter()
        .enumerate()
        .map(|(w, a)| (w as u32, a))
        .collect();
    let built = par_map(&indexed, |(w, arcs)| assemble_worker(*w, arcs, plan));
    let mut dropped = 0u64;
    let mut workers = Vec::with_capacity(built.len());
    for (lw, d) in built {
        dropped += d;
        workers.push(lw);
    }
    (workers, dropped)
}

/// Accounting of a physical load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadStats {
    /// Raw bytes parsed across machines.
    pub bytes_parsed: u64,
    /// Arcs that had to move between the parsing worker and the owning
    /// worker (the shuffle volume; zero for micro loading).
    pub arcs_exchanged: u64,
    /// Input records dropped instead of loaded: unparseable text lines,
    /// arcs referencing out-of-range vertices, or arcs found in a bucket
    /// routed to the wrong worker. Zero on a well-formed store; the figure
    /// binaries assert this.
    pub lines_skipped: u64,
    /// Transient shard-read faults retried away (fault-aware loads only).
    pub retries: u64,
    /// Accounted retry/delay backoff in nanoseconds. Never slept here —
    /// the simulation bills it to its own clock.
    pub backoff_ns: u64,
}

impl LoadStats {
    /// Field-wise sum — the accounting of two load attempts that both
    /// happened (e.g. an aborted binary load plus its text fallback).
    pub fn merged(self, other: LoadStats) -> LoadStats {
        LoadStats {
            bytes_parsed: self.bytes_parsed + other.bytes_parsed,
            arcs_exchanged: self.arcs_exchanged + other.arcs_exchanged,
            lines_skipped: self.lines_skipped + other.lines_skipped,
            retries: self.retries + other.retries,
            backoff_ns: self.backoff_ns + other.backoff_ns,
        }
    }
}

/// Physical loads performed, by loader strategy.
pub static M_LOADS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_loader_loads_total",
    help: "Physical graph loads performed.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Raw store bytes parsed, by loader strategy.
pub static M_BYTES_PARSED: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_loader_bytes_parsed_total",
    help: "Raw store bytes parsed by the loaders.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Arcs shuffled between parsing and owning workers.
pub static M_ARCS_EXCHANGED: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_loader_arcs_exchanged_total",
    help: "Arcs moved between the parsing worker and the owning worker.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Input records dropped instead of loaded.
pub static M_RECORDS_SKIPPED: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_loader_records_skipped_total",
    help: "Input records dropped instead of loaded.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Transient shard-read faults retried away.
pub static M_LOAD_RETRIES: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_loader_retries_total",
    help: "Transient shard-read faults retried away during loading.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Accounted retry-backoff seconds (simulated, not slept).
pub static M_LOAD_BACKOFF_SECONDS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_loader_backoff_seconds_total",
    help: "Accounted (simulated) retry-backoff seconds during loading.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};

/// Folds one physical load's accounting into the metrics registry,
/// labelled by loader strategy. Every quantity here is derived from the
/// input bytes — deterministic across schedulers.
fn record_load(loader: &'static str, stats: &LoadStats) {
    if !hm::enabled() {
        return;
    }
    let labels: &[(&str, &str)] = &[("loader", loader)];
    hm::add(&M_LOADS, labels, 1);
    hm::add(&M_BYTES_PARSED, labels, stats.bytes_parsed);
    hm::add(&M_ARCS_EXCHANGED, labels, stats.arcs_exchanged);
    hm::add(&M_RECORDS_SKIPPED, labels, stats.lines_skipped);
    hm::add(&M_LOAD_RETRIES, labels, stats.retries);
    hm::addf(
        &M_LOAD_BACKOFF_SECONDS,
        labels,
        stats.backoff_ns as f64 / 1e9,
    );
}

// ---------------------------------------------------------------------------
// Physical loaders.
// ---------------------------------------------------------------------------

/// Stream loading: one machine parses everything, then entities are handed
/// to their owners.
pub fn stream_load(
    store: &Datastore,
    partitioning: &Partitioning,
) -> (Vec<LoadedWorker>, LoadStats) {
    let _span = obs::span("stream_load", "loader")
        .arg("bytes", store.byte_size() as u64)
        .arg("workers", partitioning.num_parts() as u64);
    let n = partitioning.num_vertices() as u32;
    let plan = AssemblyPlan::from_partitioning(partitioning);
    let (per_worker, skipped, exchanged) = match store {
        Datastore::Text(_) => {
            // The master reads every bucket in order: one sequential parse.
            let mut arcs = Vec::new();
            let mut skipped = 0u64;
            for b in 0..store.num_buckets() {
                let len = store.bucket_byte_len(b);
                let (mut a, s) = parse_chunk(store, &[(b, 0, len)], n);
                arcs.append(&mut a);
                skipped += s;
            }
            let exchanged = arcs
                .iter()
                .filter(|&&(u, _)| plan.owner[u as usize] != 0)
                .count() as u64;
            let per_worker = route_by_owner(&arcs, &plan);
            (per_worker, skipped, exchanged)
        }
        _ => {
            // Binary: the master's sequential parse routes straight off
            // the bucket bytes — no intermediate all-arcs vector.
            let chunks: Vec<(u32, &[u8])> = (0..store.num_buckets())
                .map(|b| (0, store.arc_bucket_bytes(b).expect("binary store")))
                .collect();
            route_bin_chunks(&chunks, &plan, n)
        }
    };
    let (workers, dropped) = assemble_all(&plan, per_worker);
    let stats = LoadStats {
        bytes_parsed: store.byte_size() as u64,
        arcs_exchanged: exchanged,
        lines_skipped: skipped + dropped,
        ..LoadStats::default()
    };
    record_load("stream", &stats);
    (workers, stats)
}

/// Hash loading: the store is split into `k` record-aligned chunks, each
/// parsed by one worker in parallel; arcs are then shuffled to their
/// owners.
pub fn hash_load(store: &Datastore, partitioning: &Partitioning) -> (Vec<LoadedWorker>, LoadStats) {
    let _span = obs::span("hash_load", "loader")
        .arg("bytes", store.byte_size() as u64)
        .arg("workers", partitioning.num_parts() as u64);
    let n = partitioning.num_vertices() as u32;
    let k = partitioning.num_parts() as usize;
    let plan = AssemblyPlan::from_partitioning(partitioning);
    let chunks = chunk_ranges(store, k);
    let (per_worker, skipped, exchanged) = match store {
        Datastore::Text(_) => {
            let parsed: Vec<(Vec<(VertexId, VertexId)>, u64)> =
                par_map(&chunks, |ranges| parse_chunk(store, ranges, n));
            let mut exchanged = 0u64;
            let mut skipped = 0u64;
            let mut all = Vec::with_capacity(parsed.iter().map(|(a, _)| a.len()).sum());
            for (parser, (arcs, s)) in parsed.into_iter().enumerate() {
                skipped += s;
                for &(u, _) in &arcs {
                    if plan.owner[u as usize] as usize != parser {
                        exchanged += 1;
                    }
                }
                all.extend(arcs);
            }
            let per_worker = route_by_owner(&all, &plan);
            (per_worker, skipped, exchanged)
        }
        _ => {
            // Binary: each parser's record-aligned byte ranges route
            // straight into the per-worker vectors — the shuffle is the
            // scatter itself, with no concatenated intermediate vector.
            let flat: Vec<(u32, &[u8])> = chunks
                .iter()
                .enumerate()
                .flat_map(|(parser, ranges)| {
                    ranges.iter().map(move |&(bucket, start, end)| {
                        let bytes = store.arc_bucket_bytes(bucket).expect("binary store");
                        (parser as u32, &bytes[start..end])
                    })
                })
                .collect();
            route_bin_chunks(&flat, &plan, n)
        }
    };
    let (workers, dropped) = assemble_all(&plan, per_worker);
    let stats = LoadStats {
        bytes_parsed: store.byte_size() as u64,
        arcs_exchanged: exchanged,
        lines_skipped: skipped + dropped,
        ..LoadStats::default()
    };
    record_load("hash", &stats);
    (workers, stats)
}

/// Micro loading: each worker reads exactly the buckets of the
/// micro-partitions assigned to it — parallel, with **zero** exchange
/// (parallel recovery, §6.2). On a binary store each bucket is consumed
/// as a raw byte slice: the counting and scatter passes decode arcs in
/// place, copying nothing.
pub fn micro_load(
    store: &Datastore,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
) -> Result<(Vec<LoadedWorker>, LoadStats)> {
    micro_load_faulty(store, micro, micro_to_worker, num_workers, None)
}

/// Fault-injection context for the resilient (re)load path: the shared
/// [`FaultInjector`] consulted at [`Site::ShardRead`] plus the retry
/// bound/backoff applied to faulted bucket reads.
pub struct ReloadFaults {
    /// Shared injector — per-site call counters live here, so one
    /// `ReloadFaults` must span one logical reload.
    pub injector: std::sync::Arc<FaultInjector>,
    /// Bounded retries with deterministic backoff.
    pub retry: RetryPolicy,
}

impl ReloadFaults {
    /// Faults drawn from `plan` with its retry policy.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        ReloadFaults {
            injector: std::sync::Arc::new(plan.injector()),
            retry: RetryPolicy::from_plan(plan),
        }
    }

    /// Per-run variant for sweeps: same plan, run-decorrelated stream.
    pub fn for_run(plan: &FaultPlan, run: u32) -> Self {
        ReloadFaults {
            injector: std::sync::Arc::new(plan.injector_for_run(run)),
            retry: RetryPolicy::from_plan(plan),
        }
    }
}

/// Deterministic fault pre-pass over a set of shard reads: consults
/// [`Site::ShardRead`] once per listed bucket, in the given order,
/// retry-accounting every injected fault. Returns `(retries, backoff_ns)`
/// on success. A bucket still unreadable after [`RetryPolicy::attempts`]
/// tries aborts with the typed error *plus* the accounting spent so far —
/// the final failed try is itself counted as a consumed retry, so a caller
/// that merges this into a fallback attempt's stats sees every try that
/// actually happened.
fn shard_fault_prepass(
    store: &Datastore,
    buckets: &[u32],
    faults: Option<&ReloadFaults>,
) -> std::result::Result<(u64, u64), (EngineError, LoadStats)> {
    let mut retries = 0u64;
    let mut backoff_ns = 0u64;
    if let Some(f) = faults {
        for &b in buckets {
            let len = store.bucket_byte_len(b) as u64;
            let mut attempt: u32 = 0;
            loop {
                match f.injector.next(Site::ShardRead, Op::len(len)) {
                    None => break,
                    Some(FaultKind::Delay { ns }) => {
                        backoff_ns += ns;
                        break;
                    }
                    Some(_) => {
                        attempt += 1;
                        if attempt >= f.retry.attempts {
                            retries += 1;
                            return Err((
                                EngineError::ShardRead {
                                    bucket: b,
                                    attempts: attempt,
                                },
                                LoadStats {
                                    retries,
                                    backoff_ns,
                                    ..LoadStats::default()
                                },
                            ));
                        }
                        retries += 1;
                        backoff_ns += f.retry.backoff_ns(attempt - 1);
                    }
                }
            }
        }
    }
    Ok((retries, backoff_ns))
}

/// [`micro_load`] with an optional fault plan applied to the shard reads.
///
/// Fault decisions are drawn in a **sequential pre-pass** over buckets in
/// global bucket order, before the parallel read phase — parallel worker
/// scheduling therefore never perturbs which bucket a rule hits, keeping
/// the outcome a pure function of the plan. Every injected fault at this
/// seam surfaces as a *detected* read failure (`HGS2` bucket checksums
/// turn bit flips and torn reads into verification errors), so the
/// uniform response is retry-with-backoff; a bucket still unreadable
/// after [`RetryPolicy::attempts`] tries yields a typed
/// [`EngineError::ShardRead`] — never a silently short graph.
pub fn micro_load_faulty(
    store: &Datastore,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
    faults: Option<&ReloadFaults>,
) -> Result<(Vec<LoadedWorker>, LoadStats)> {
    micro_load_faulty_impl(store, micro, micro_to_worker, num_workers, faults)
        .map_err(|(e, _partial)| e)
}

/// The body of [`micro_load_faulty`]; the error side carries the
/// [`LoadStats`] accounted before the load aborted (retries spent and
/// backoff accrued on every bucket up to and including the one that
/// exhausted its attempts), so resilient callers can merge the aborted
/// attempt into the fallback attempt's accounting instead of dropping it.
fn micro_load_faulty_impl(
    store: &Datastore,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
    faults: Option<&ReloadFaults>,
) -> std::result::Result<(Vec<LoadedWorker>, LoadStats), (EngineError, LoadStats)> {
    let _span = obs::span("micro_load", "loader")
        .arg("bytes", store.byte_size() as u64)
        .arg("workers", num_workers as u64)
        .arg("micros", micro.num_parts() as u64);
    let invalid = |m: String| (EngineError::InvalidConfig(m), LoadStats::default());
    let buckets = store.num_buckets();
    if buckets < 2 && micro.num_parts() >= 2 {
        return Err(invalid("store has no micro-partition buckets".into()));
    }
    if micro_to_worker.len() != buckets as usize || buckets != micro.num_parts() {
        return Err(invalid(format!(
            "micro map covers {} micros, store has {} buckets",
            micro_to_worker.len(),
            buckets
        )));
    }
    if let Some(&bad) = micro_to_worker.iter().find(|&&w| w >= num_workers) {
        return Err(invalid(format!(
            "micro map references worker {bad} of {num_workers}"
        )));
    }
    if let Some(nv) = store.binary_num_vertices() {
        if nv as usize != micro.num_vertices() {
            return Err(invalid(format!(
                "binary store indexes {nv} vertices, micro partitioning has {}",
                micro.num_vertices()
            )));
        }
    }
    // Deterministic fault pre-pass: one consult loop per bucket, in
    // global bucket order, independent of worker scheduling.
    let all_buckets: Vec<u32> = (0..buckets).collect();
    let (fault_retries, fault_backoff_ns) = shard_fault_prepass(store, &all_buckets, faults)?;

    let n = micro.num_vertices() as u32;
    // Ownership = micro assignment composed with the micro→worker map.
    let owner: Vec<u32> = micro
        .assignment()
        .iter()
        .map(|&m| micro_to_worker[m as usize])
        .collect();
    let plan = AssemblyPlan::new(num_workers, owner);

    // Group buckets per worker (each worker reads exactly its shards).
    let mut per_worker_buckets: Vec<Vec<u32>> = (0..num_workers).map(|_| Vec::new()).collect();
    for (m, &w) in micro_to_worker.iter().enumerate() {
        per_worker_buckets[w as usize].push(m as u32);
    }

    let indexed: Vec<(u32, &[u32])> = per_worker_buckets
        .iter()
        .enumerate()
        .map(|(w, bs)| (w as u32, bs.as_slice()))
        .collect();
    let built: Vec<(LoadedWorker, u64, u64)> = par_map(&indexed, |&(w, bucket_ids)| {
        let bytes: u64 = bucket_ids
            .iter()
            .map(|&b| store.bucket_byte_len(b) as u64)
            .sum();
        let (arcs, parse_skipped) = {
            let _span = obs::span("shard_read", "loader")
                .arg("worker", w as u64)
                .arg("bytes", bytes)
                .arg("shards", bucket_ids.len() as u64);
            match store {
                Datastore::Text(s) => {
                    let mut out = Vec::new();
                    let mut skipped = 0u64;
                    for &b in bucket_ids {
                        skipped += parse_text_arcs(&mut out, &s.buckets()[b as usize], n);
                    }
                    (WorkerArcs::Owned(out), skipped)
                }
                _ => (
                    WorkerArcs::Bytes(
                        bucket_ids
                            .iter()
                            .map(|&b| store.arc_bucket_bytes(b).expect("binary store"))
                            .collect(),
                    ),
                    0,
                ),
            }
        };
        let (lw, dropped) = assemble_worker(w, &arcs, &plan);
        (lw, parse_skipped + dropped, bytes)
    });

    let mut workers = Vec::with_capacity(built.len());
    let mut skipped = 0u64;
    let mut bytes = 0u64;
    for (lw, s, b) in built {
        workers.push(lw);
        skipped += s;
        bytes += b;
    }
    let stats = LoadStats {
        bytes_parsed: bytes,
        arcs_exchanged: 0,
        lines_skipped: skipped,
        retries: fault_retries,
        backoff_ns: fault_backoff_ns,
    };
    record_load("micro", &stats);
    Ok((workers, stats))
}

/// Merges the retained slice of an old worker slab with the freshly
/// assembled gained vertices into one CSR slab. The two vertex sets are
/// disjoint — a vertex's micro-partition either stayed with the worker or
/// moved in from elsewhere — so this is a two-pointer merge of sorted runs
/// with no store IO at all.
fn merge_retained(
    w: u32,
    old: Option<&LoadedWorker>,
    keep: impl Fn(VertexId) -> bool,
    fresh: LoadedWorker,
) -> LoadedWorker {
    let Some(old) = old else {
        return fresh;
    };
    let (retained_verts, retained_arcs) = {
        let mut verts = 0usize;
        let mut arcs = 0usize;
        for (i, &v) in old.vertices.iter().enumerate() {
            if keep(v) {
                verts += 1;
                arcs += old.offsets[i + 1] - old.offsets[i];
            }
        }
        (verts, arcs)
    };
    if retained_verts == 0 {
        return fresh;
    }
    let mut vertices = Vec::with_capacity(retained_verts + fresh.vertices.len());
    let mut offsets = Vec::with_capacity(retained_verts + fresh.vertices.len() + 1);
    let mut neighbors: Vec<VertexId> = Vec::with_capacity(retained_arcs + fresh.neighbors.len());
    offsets.push(0);
    let emit_fresh = |j: usize, neighbors: &mut Vec<VertexId>, offsets: &mut Vec<usize>| {
        neighbors.extend_from_slice(&fresh.neighbors[fresh.offsets[j]..fresh.offsets[j + 1]]);
        offsets.push(neighbors.len());
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.vertices.len() {
        if !keep(old.vertices[i]) {
            i += 1;
            continue;
        }
        while j < fresh.vertices.len() && fresh.vertices[j] < old.vertices[i] {
            vertices.push(fresh.vertices[j]);
            emit_fresh(j, &mut neighbors, &mut offsets);
            j += 1;
        }
        // Maximal run of consecutive retained vertices with no fresh vertex
        // interleaved: their neighbor slices are adjacent in the old CSR
        // slab, so the whole run's arcs move in one bulk copy.
        let fence = fresh.vertices.get(j).copied().unwrap_or(VertexId::MAX);
        let mut end = i + 1;
        while end < old.vertices.len() && old.vertices[end] < fence && keep(old.vertices[end]) {
            end += 1;
        }
        let arc_base = neighbors.len();
        let run_start = old.offsets[i];
        neighbors.extend_from_slice(&old.neighbors[run_start..old.offsets[end]]);
        vertices.extend_from_slice(&old.vertices[i..end]);
        offsets.extend((i + 1..=end).map(|t| arc_base + (old.offsets[t] - run_start)));
        i = end;
    }
    while j < fresh.vertices.len() {
        vertices.push(fresh.vertices[j]);
        emit_fresh(j, &mut neighbors, &mut offsets);
        j += 1;
    }
    LoadedWorker {
        worker: w,
        vertices,
        offsets,
        neighbors,
    }
}

/// Delta migration (the O(delta) reconfiguration path, §6.2 extended):
/// transitions loaded worker slabs from one clustering to another by
/// re-reading **only the moved micro-partitions' buckets** and rebuilding
/// **only the affected workers' CSR slabs**. Unchanged workers — those
/// that neither gained nor lost a micro-partition — keep their slabs
/// untouched (they are moved through, not copied, parsed or re-read).
///
/// `micro_to_worker` is the **new** clustering's micro→worker map;
/// `old_workers` are the slabs of the previous deployment, consumed by the
/// migration. Store IO is proportional to
/// [`ClusteringDelta::moved_fraction`], which is what lets the EC model
/// price a voluntary reconfiguration far below a full reload.
pub fn delta_load(
    store: &Datastore,
    micro: &Partitioning,
    delta: &ClusteringDelta,
    micro_to_worker: &[u32],
    old_workers: Vec<LoadedWorker>,
) -> Result<(Vec<LoadedWorker>, LoadStats)> {
    delta_load_faulty(store, micro, delta, micro_to_worker, old_workers, None)
}

/// [`delta_load`] with an optional fault plan applied to the shard reads.
///
/// Only the *moved* buckets are read, so only they consult the injector —
/// in global bucket order, same as [`micro_load_faulty`]. A moved bucket
/// that exhausts its retries yields the typed [`EngineError::ShardRead`];
/// callers fall back to a full reload (the old slabs are gone, but the
/// store still holds everything).
pub fn delta_load_faulty(
    store: &Datastore,
    micro: &Partitioning,
    delta: &ClusteringDelta,
    micro_to_worker: &[u32],
    old_workers: Vec<LoadedWorker>,
    faults: Option<&ReloadFaults>,
) -> Result<(Vec<LoadedWorker>, LoadStats)> {
    let k_to = delta.to_workers();
    let k_from = delta.from_workers();
    let buckets = store.num_buckets();
    if buckets != micro.num_parts() || buckets != delta.num_micro() {
        return Err(EngineError::InvalidConfig(format!(
            "delta covers {} micros, store has {} buckets, partitioning {}",
            delta.num_micro(),
            buckets,
            micro.num_parts()
        )));
    }
    if micro_to_worker.len() != buckets as usize {
        return Err(EngineError::InvalidConfig(format!(
            "micro map covers {} micros, store has {buckets} buckets",
            micro_to_worker.len()
        )));
    }
    if let Some(&bad) = micro_to_worker.iter().find(|&&w| w >= k_to) {
        return Err(EngineError::InvalidConfig(format!(
            "micro map references worker {bad} of {k_to}"
        )));
    }
    if old_workers.len() != k_from as usize {
        return Err(EngineError::InvalidConfig(format!(
            "migration from {} workers got {} old slabs",
            k_from,
            old_workers.len()
        )));
    }
    for (w, lw) in old_workers.iter().enumerate() {
        if lw.worker != w as u32 {
            return Err(EngineError::InvalidConfig(format!(
                "old slab {w} carries worker id {}",
                lw.worker
            )));
        }
    }
    for mv in delta.moved() {
        if micro_to_worker[mv.micro as usize] != mv.to {
            return Err(EngineError::InvalidConfig(format!(
                "delta moves micro {} to worker {}, map says {}",
                mv.micro, mv.to, micro_to_worker[mv.micro as usize]
            )));
        }
    }
    if let Some(nv) = store.binary_num_vertices() {
        if nv as usize != micro.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "binary store indexes {nv} vertices, micro partitioning has {}",
                micro.num_vertices()
            )));
        }
    }

    /// Below this many moved bytes the rebuild runs on the calling thread:
    /// an OS thread spawn costs tens of microseconds, which dwarfs the
    /// decode+merge of a handful of micro-partition buckets and would
    /// erase the delta path's advantage over a full reload.
    const DELTA_PARALLEL_MIN_BYTES: u64 = 8 << 20;

    let moved_bytes: u64 = delta
        .moved()
        .iter()
        .map(|mv| store.bucket_byte_len(mv.micro) as u64)
        .sum();
    let _span = obs::span("delta_load", "loader")
        .arg("moved", delta.moved().len() as u64)
        .arg("micros", buckets as u64)
        .arg("bytes", moved_bytes);

    // Plan: which workers rebuild, and which buckets each one gains.
    let (gained, affected) = {
        let _plan_span = obs::span("delta_plan", "loader")
            .arg("moved", delta.moved().len() as u64)
            .arg("workers", k_to as u64);
        let mut gained: Vec<Vec<u32>> = (0..k_to).map(|_| Vec::new()).collect();
        let mut affected = vec![false; k_to.max(k_from) as usize];
        for mv in delta.moved() {
            gained[mv.to as usize].push(mv.micro);
            affected[mv.to as usize] = true;
            affected[mv.from as usize] = true;
        }
        (gained, affected)
    };

    // Fault pre-pass over the moved buckets only — the unmoved ones are
    // never read, so they cannot fault.
    let moved_ids: Vec<u32> = delta.moved().iter().map(|mv| mv.micro).collect();
    let (fault_retries, fault_backoff_ns) =
        shard_fault_prepass(store, &moved_ids, faults).map_err(|(e, _)| e)?;

    let n = micro.num_vertices() as u32;
    let owner: Vec<u32> = micro
        .assignment()
        .iter()
        .map(|&m| micro_to_worker[m as usize])
        .collect();
    let plan = AssemblyPlan::new(k_to, owner);

    let mut old_slots: Vec<Option<LoadedWorker>> = old_workers.into_iter().map(Some).collect();
    let mut gained = gained;
    let rebuild: Vec<(u32, Vec<u32>, Option<LoadedWorker>)> = (0..k_to)
        .filter(|&w| affected[w as usize])
        .map(|w| {
            let old = old_slots.get_mut(w as usize).and_then(|slot| slot.take());
            (w, std::mem::take(&mut gained[w as usize]), old)
        })
        .collect();

    // One thread per rebuilt worker only pays off when there is real
    // decode work to hide; a small delta rebuilds on the calling thread
    // (the spawn alone costs more than shipping a few buckets).
    let parallel = moved_bytes >= DELTA_PARALLEL_MIN_BYTES;
    let built: Vec<(LoadedWorker, u64, u64)> =
        par_map_when(parallel, &rebuild, |(w, bucket_ids, old)| {
            let w = *w;
            let bytes: u64 = bucket_ids
                .iter()
                .map(|&b| store.bucket_byte_len(b) as u64)
                .sum();
            // Ship: read exactly the gained buckets (bucket m holds the arcs
            // whose source lives in micro m, so every arc here belongs to w).
            let (arcs, parse_skipped) = {
                let _span = obs::span("delta_ship", "loader")
                    .arg("worker", w as u64)
                    .arg("bytes", bytes)
                    .arg("shards", bucket_ids.len() as u64);
                match store {
                    Datastore::Text(s) => {
                        let mut out = Vec::new();
                        let mut skipped = 0u64;
                        for &b in bucket_ids {
                            skipped += parse_text_arcs(&mut out, &s.buckets()[b as usize], n);
                        }
                        (WorkerArcs::Owned(out), skipped)
                    }
                    _ => (
                        WorkerArcs::Bytes(
                            bucket_ids
                                .iter()
                                .map(|&b| store.arc_bucket_bytes(b).expect("binary store"))
                                .collect(),
                        ),
                        0,
                    ),
                }
            };
            // A worker that only loses micros gains no arcs; skip the
            // counting-sort entirely instead of running it over zero input.
            let (fresh, dropped) = if bucket_ids.is_empty() {
                (
                    LoadedWorker {
                        worker: w,
                        vertices: Vec::new(),
                        offsets: vec![0],
                        neighbors: Vec::new(),
                    },
                    0,
                )
            } else {
                assemble_worker(w, &arcs, &plan)
            };
            let gained_arcs = fresh.num_arcs() as u64;
            // Assemble: splice the retained slices of the old slab (no IO)
            // with the freshly decoded gained vertices.
            let merged = {
                let _span = obs::span("delta_assemble", "loader")
                    .arg("worker", w as u64)
                    .arg("gained_arcs", gained_arcs);
                merge_retained(w, old.as_ref(), |v| plan.owner[v as usize] == w, fresh)
            };
            (merged, parse_skipped + dropped, gained_arcs)
        });

    let mut rebuilt: Vec<Option<LoadedWorker>> = (0..k_to).map(|_| None).collect();
    let mut skipped = 0u64;
    let mut arcs_exchanged = 0u64;
    for (lw, s, a) in built {
        skipped += s;
        arcs_exchanged += a;
        let slot = lw.worker as usize;
        rebuilt[slot] = Some(lw);
    }
    let mut workers = Vec::with_capacity(k_to as usize);
    for w in 0..k_to as usize {
        let lw = if affected[w] {
            rebuilt[w].take().expect("affected worker was rebuilt")
        } else if w < old_slots.len() {
            // Unchanged: the previous deployment's slab moves through
            // untouched — no read, no parse, no copy.
            old_slots[w]
                .take()
                .expect("unchanged worker keeps its slab")
        } else {
            // A new worker that owns no micro-partitions at all.
            LoadedWorker {
                worker: w as u32,
                vertices: Vec::new(),
                offsets: vec![0],
                neighbors: Vec::new(),
            }
        };
        workers.push(lw);
    }
    let stats = LoadStats {
        bytes_parsed: moved_bytes,
        arcs_exchanged,
        lines_skipped: skipped,
        retries: fault_retries,
        backoff_ns: fault_backoff_ns,
    };
    record_load("delta", &stats);
    Ok((workers, stats))
}

/// Reloads the deployment graph from the binary fast-reload store,
/// degrading to text-store re-assembly when shards stay unreadable.
///
/// The happy path is [`micro_load_faulty`] over `binary` followed by
/// [`reload_graph`]. When a shard read exhausts its retries, the loader
/// emits a `degraded_reload` instant and falls back to the authoritative
/// text store (`text_fallback`), re-assembling the same per-worker slabs
/// the slow way; the returned flag reports whether the reload degraded.
/// With no fallback store available the typed error propagates.
pub fn reload_graph_resilient(
    binary: &Datastore,
    text_fallback: Option<&Datastore>,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
    directed: bool,
    faults: Option<&ReloadFaults>,
) -> Result<(Graph, LoadStats, bool)> {
    match micro_load_faulty_impl(binary, micro, micro_to_worker, num_workers, faults) {
        Ok((workers, stats)) => {
            let g = reload_graph(&workers, micro.num_vertices(), directed)?;
            Ok((g, stats, false))
        }
        Err((EngineError::ShardRead { bucket, attempts }, binary_stats)) => {
            let text = match text_fallback {
                Some(t) => t,
                None => return Err(EngineError::ShardRead { bucket, attempts }),
            };
            let mut args = obs::Args::new();
            args.push("bucket", bucket as u64);
            args.push("attempts", attempts as u64);
            obs::instant("degraded_reload", "loader", args);
            let (workers, text_stats) = micro_load(text, micro, micro_to_worker, num_workers)?;
            // Both attempts happened; account both — the aborted binary
            // attempt's retries and backoff plus the fallback's own stats.
            let stats = binary_stats.merged(text_stats);
            let g = reload_graph(&workers, micro.num_vertices(), directed)?;
            Ok((g, stats, true))
        }
        Err((e, _partial)) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Deployment.
// ---------------------------------------------------------------------------

/// Merges loaded worker slabs into the deployment-wide in-memory [`Graph`]
/// the engine executes on — the last step of the (re)load path. The CSR
/// arrays are assembled by the same counting-sort scheme: per-vertex
/// degrees from the slabs, prefix-sum, then each worker's neighbor block
/// is copied into place.
pub fn reload_graph(
    workers: &[LoadedWorker],
    num_vertices: usize,
    directed: bool,
) -> Result<Graph> {
    let _span = obs::span("reload_graph", "loader")
        .arg("workers", workers.len() as u64)
        .arg("vertices", num_vertices as u64);
    let mut degree = vec![0usize; num_vertices];
    // Worker vertex lists must tile the id space: a duplicated or
    // out-of-range vertex would silently double-count degrees and corrupt
    // the rebuilt CSR, so both are a typed error instead.
    let mut owner_seen = vec![false; num_vertices];
    for w in workers {
        for (i, &v) in w.vertices.iter().enumerate() {
            let vi = v as usize;
            if vi >= num_vertices || owner_seen[vi] {
                return Err(EngineError::SlabConflict {
                    vertex: v,
                    worker: w.worker,
                });
            }
            owner_seen[vi] = true;
            degree[vi] += w.offsets[i + 1] - w.offsets[i];
        }
    }
    let mut offsets = Vec::with_capacity(num_vertices + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut targets = vec![0 as VertexId; acc];
    for w in workers {
        for (i, &v) in w.vertices.iter().enumerate() {
            let src = &w.neighbors[w.offsets[i]..w.offsets[i + 1]];
            let dst = offsets[v as usize];
            targets[dst..dst + src.len()].copy_from_slice(src);
        }
    }
    Graph::from_csr(offsets, targets, None, None, directed)
        .map_err(|e| EngineError::InvalidConfig(format!("reloaded graph: {e}")))
}

/// Merges loaded workers back into a global adjacency check-sum view (test
/// helper exposed for integration tests).
pub fn loaded_adjacency(workers: &[LoadedWorker]) -> Vec<(VertexId, Vec<VertexId>)> {
    let mut all: Vec<(VertexId, Vec<VertexId>)> = workers
        .iter()
        .flat_map(|w| w.iter().map(|(v, ns)| (v, ns.to_vec())))
        .collect();
    all.sort_by_key(|(v, _)| *v);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use hourglass_graph::generators;
    use hourglass_partition::cluster::cluster_micro_partitions;
    use hourglass_partition::micro::MicroPartitioner;
    use hourglass_partition::multilevel::Multilevel;
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    fn fixture() -> (Graph, Partitioning) {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 3).expect("gen");
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        (g, p)
    }

    fn expected_adjacency(g: &Graph) -> Vec<(VertexId, Vec<VertexId>)> {
        (0..g.num_vertices() as u32)
            .filter(|&v| g.degree(v) > 0)
            .map(|v| (v, g.neighbors(v).to_vec()))
            .collect()
    }

    #[test]
    fn stream_and_hash_agree_with_graph_on_both_formats() {
        let (g, p) = fixture();
        let expect = expected_adjacency(&g);
        for store in [Datastore::text_flat(&g), Datastore::binary_flat(&g)] {
            let (sw, ss) = stream_load(&store, &p);
            let (hw, hs) = hash_load(&store, &p);
            assert_eq!(loaded_adjacency(&sw), expect, "{} stream", store.format());
            assert_eq!(loaded_adjacency(&hw), expect, "{} hash", store.format());
            assert_eq!(ss.bytes_parsed, store.byte_size() as u64);
            assert_eq!(hs.bytes_parsed, store.byte_size() as u64);
            assert_eq!(ss.lines_skipped, 0);
            assert_eq!(hs.lines_skipped, 0);
            assert!(hs.arcs_exchanged > 0, "hash loading must shuffle");
        }
    }

    #[test]
    fn micro_load_is_exchange_free_and_correct_on_both_formats() {
        let (g, _) = fixture();
        let mp = MicroPartitioner::new(Multilevel::new(), 16)
            .run(&g)
            .expect("micro");
        let clustering = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        for store in [
            Datastore::text_micro(&g, mp.micro()).expect("store"),
            Datastore::binary_micro(&g, mp.micro()).expect("store"),
        ] {
            let (mw, ms) =
                micro_load(&store, mp.micro(), clustering.micro_to_macro(), 4).expect("load");
            assert_eq!(ms.arcs_exchanged, 0);
            assert_eq!(ms.lines_skipped, 0);
            assert_eq!(loaded_adjacency(&mw), expected_adjacency(&g));
            // Ownership respects the clustering.
            for w in &mw {
                for (v, _) in w.iter() {
                    let micro = mp.micro().part_of(v);
                    assert_eq!(clustering.micro_to_macro()[micro as usize], w.worker);
                }
            }
        }
    }

    #[test]
    fn text_and_binary_loads_are_bit_identical() {
        let (g, p) = fixture();
        let text = Datastore::text_flat(&g);
        let bin = Datastore::binary_flat(&g);
        assert_eq!(
            loaded_adjacency(&stream_load(&text, &p).0),
            loaded_adjacency(&stream_load(&bin, &p).0)
        );
        assert_eq!(
            loaded_adjacency(&hash_load(&text, &p).0),
            loaded_adjacency(&hash_load(&bin, &p).0)
        );
        assert!(bin.byte_size() < text.byte_size() * 2, "sanity");
    }

    fn tmp_store_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hourglass-loaders-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    #[test]
    fn mapped_store_loads_identically_to_in_memory_binary() {
        let (g, p) = fixture();
        let bin = Datastore::binary_flat(&g);
        let path = tmp_store_path("flat");
        let mapped = Datastore::mapped_flat(&g, &path).expect("mapped");
        assert_eq!(mapped.format(), StoreFormat::BinaryMapped);
        assert_eq!(mapped.byte_size(), bin.byte_size());
        let (sw, ss) = stream_load(&bin, &p);
        let (mw, ms) = stream_load(&mapped, &p);
        assert_eq!(sw, mw, "stream slabs bit-identical");
        assert_eq!(ss, ms);
        let (hw, hs) = hash_load(&bin, &p);
        let (hmw, hms) = hash_load(&mapped, &p);
        assert_eq!(hw, hmw, "hash slabs bit-identical");
        assert_eq!(hs, hms);
        std::fs::remove_file(&path).ok();

        let mp = MicroPartitioner::new(Multilevel::new(), 16)
            .run(&g)
            .expect("micro");
        let c = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        let micro_bin = Datastore::binary_micro(&g, mp.micro()).expect("store");
        let path = tmp_store_path("micro");
        let micro_mapped = Datastore::mapped_micro(&g, mp.micro(), &path).expect("mapped");
        let (bw, bs) = micro_load(&micro_bin, mp.micro(), c.micro_to_macro(), 4).expect("load");
        let (mw, ms) = micro_load(&micro_mapped, mp.micro(), c.micro_to_macro(), 4).expect("load");
        assert_eq!(bw, mw, "micro slabs bit-identical");
        assert_eq!(bs, ms);
        assert_eq!(reload_graph(&mw, g.num_vertices(), false).expect("csr"), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn delta_load_takes_the_mapped_path() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let path = tmp_store_path("delta");
        let mapped = Datastore::mapped_micro(&g, mp.micro(), &path).expect("mapped");
        let mut new_map = map.clone();
        new_map[3] = (new_map[3] + 1) % 4;
        new_map[11] = (new_map[11] + 2) % 4;
        let from = Clustering::from_micro_to_macro(&mp, map.clone(), 4).expect("clustering");
        let to = Clustering::from_micro_to_macro(&mp, new_map.clone(), 4).expect("clustering");
        let delta = ClusteringDelta::between(&mp, &from, &to).expect("delta");
        let (old_bin, _) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
        let (old_mapped, _) = micro_load(&mapped, mp.micro(), &map, 4).expect("load");
        assert_eq!(old_bin, old_mapped);
        let (dbin, sbin) =
            delta_load(&bin, mp.micro(), &delta, &new_map, old_bin).expect("delta bin");
        let (dmap, smap) =
            delta_load(&mapped, mp.micro(), &delta, &new_map, old_mapped).expect("delta mapped");
        assert_eq!(dbin, dmap, "delta over mapped store bit-identical");
        assert_eq!(sbin, smap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_store_open_rejects_corruption() {
        let (g, _) = fixture();
        let path = tmp_store_path("corrupt");
        let _ = Datastore::mapped_flat(&g, &path).expect("mapped");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[5] ^= 1; // vertex-count header byte: metadata CRC trips
        std::fs::write(&path, &bytes).expect("rewrite");
        assert!(Datastore::mapped_from_path(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn micro_load_validates_inputs() {
        let (g, p) = fixture();
        for flat in [Datastore::text_flat(&g), Datastore::binary_flat(&g)] {
            assert!(micro_load(&flat, &p, &[0; 4], 4).is_err(), "no buckets");
        }
        let mp = MicroPartitioner::new(HashPartitioner, 16)
            .run(&g)
            .expect("micro");
        for store in [
            Datastore::text_micro(&g, mp.micro()).expect("store"),
            Datastore::binary_micro(&g, mp.micro()).expect("store"),
        ] {
            assert!(
                micro_load(&store, mp.micro(), &[0; 3], 4).is_err(),
                "bad map len"
            );
            assert!(
                micro_load(&store, mp.micro(), &[9; 16], 4).is_err(),
                "worker out of range"
            );
        }
    }

    #[test]
    fn malformed_text_lines_are_counted_not_loaded() {
        let store = Datastore::Text(
            EdgeListStore::from_buckets(vec![
                "0 1\n# comment\n\n1 0\nnot a line\n2 0\n9999999 3\n0 zzz\n".to_string(),
            ])
            .expect("store"),
        );
        let p = Partitioning::new(vec![0, 0, 1, 1], 2).expect("partitioning");
        let (workers, stats) = stream_load(&store, &p);
        // "9999999 3" (out of range) + "not a line" + "0 zzz" are skipped;
        // comments and blanks are format, not errors.
        assert_eq!(stats.lines_skipped, 3);
        let adj = loaded_adjacency(&workers);
        assert_eq!(adj, vec![(0, vec![1]), (1, vec![0]), (2, vec![0])]);
        let (_, hstats) = hash_load(&store, &p);
        assert_eq!(hstats.lines_skipped, 3);
    }

    #[test]
    fn reload_graph_roundtrips_through_every_loader() {
        let (g, p) = fixture();
        let store = Datastore::binary_flat(&g);
        let (sw, _) = stream_load(&store, &p);
        assert_eq!(reload_graph(&sw, g.num_vertices(), false).expect("csr"), g);
        let (hw, _) = hash_load(&store, &p);
        assert_eq!(reload_graph(&hw, g.num_vertices(), false).expect("csr"), g);
        let mp = MicroPartitioner::new(HashPartitioner, 16)
            .run(&g)
            .expect("micro");
        let c = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        let micro_store = Datastore::binary_micro(&g, mp.micro()).expect("store");
        let (mw, _) = micro_load(&micro_store, mp.micro(), c.micro_to_macro(), 4).expect("load");
        assert_eq!(reload_graph(&mw, g.num_vertices(), false).expect("csr"), g);
    }

    #[test]
    fn modeled_micro_fastest_and_scales() {
        let m = LoaderCostModel::aws_2016();
        let bytes = 24.0e9; // Twitter at paper scale.
        for &k in &[2u32, 4, 8, 16] {
            let s = m.time(LoaderKind::Stream, bytes, k).expect("time");
            let h = m.time(LoaderKind::Hash, bytes, k).expect("time");
            let mi = m.time(LoaderKind::Micro, bytes, k).expect("time");
            assert!(mi < h && mi < s, "micro must win at k={k}: {mi} {h} {s}");
        }
        let m4 = m.time(LoaderKind::Micro, bytes, 4).expect("time");
        let m16 = m.time(LoaderKind::Micro, bytes, 16).expect("time");
        assert!(m16 < m4 / 2.0, "micro must scale with k");
    }

    #[test]
    fn modeled_stream_flat_in_k_grows_with_bytes() {
        let m = LoaderCostModel::aws_2016();
        let s2 = m.time(LoaderKind::Stream, 1.0e9, 2).expect("time");
        let s16 = m.time(LoaderKind::Stream, 1.0e9, 16).expect("time");
        assert!((s16 - s2).abs() / s2 < 0.2, "stream ~flat in k");
        let big = m.time(LoaderKind::Stream, 8.0e9, 4).expect("time");
        let small = m.time(LoaderKind::Stream, 1.0e9, 4).expect("time");
        assert!(big > 6.0 * small, "stream superlinear in bytes");
    }

    #[test]
    fn modeled_gap_grows_with_dataset() {
        // Paper: micro is 11× faster than stream on Orkut but ~80× on
        // Twitter. Check the ratio is increasing in dataset size.
        let m = LoaderCostModel::aws_2016();
        let ratio = |bytes: f64| {
            let s = m.time(LoaderKind::Stream, bytes, 8).expect("time");
            let mi = m.time(LoaderKind::Micro, bytes, 8).expect("time");
            s / mi
        };
        assert!(ratio(24.0e9) > 2.0 * ratio(1.8e9));
    }

    #[test]
    fn modeled_binary_calibration_parses_faster() {
        let text = LoaderCostModel::aws_2016_for(StoreFormat::Text);
        let bin = LoaderCostModel::aws_2016_for(StoreFormat::Binary);
        let mapped = LoaderCostModel::aws_2016_for(StoreFormat::BinaryMapped);
        for kind in [LoaderKind::Stream, LoaderKind::Hash, LoaderKind::Micro] {
            let t = text.time(kind, 4.0e9, 8).expect("time");
            let b = bin.time(kind, 4.0e9, 8).expect("time");
            let m = mapped.time(kind, 4.0e9, 8).expect("time");
            assert!(
                b < t,
                "{kind}: binary {b} must beat text {t} at equal bytes"
            );
            assert!(
                m < b,
                "{kind}: mapped {m} must beat buffered binary {b} at equal bytes"
            );
        }
    }

    #[test]
    fn model_validates() {
        let m = LoaderCostModel::aws_2016();
        assert!(m.time(LoaderKind::Micro, 1e9, 0).is_err());
        assert!(m.time(LoaderKind::Micro, f64::NAN, 2).is_err());
    }

    // --- fault-aware reload path ---

    use hourglass_faults::{IoKind, Trigger};

    fn micro_fixture(
        g: &Graph,
    ) -> (
        hourglass_partition::micro::MicroPartitioning,
        Vec<u32>,
        Datastore,
        Datastore,
    ) {
        let mp = MicroPartitioner::new(Multilevel::new(), 16)
            .run(g)
            .expect("micro");
        let c = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        let bin = Datastore::binary_micro(g, mp.micro()).expect("store");
        let text = Datastore::text_micro(g, mp.micro()).expect("store");
        let map = c.micro_to_macro().to_vec();
        (mp, map, bin, text)
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_fault_free_load() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let (plain, ps) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
        let faults = ReloadFaults::from_plan(&FaultPlan::new(42));
        let (faulted, fs) =
            micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&faults)).expect("load");
        assert_eq!(loaded_adjacency(&plain), loaded_adjacency(&faulted));
        assert_eq!(ps, fs);
        assert_eq!(fs.retries, 0);
    }

    #[test]
    fn transient_shard_faults_are_retried_to_the_same_graph() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let expect = {
            let (w, _) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
            loaded_adjacency(&w)
        };
        // Two one-shot transient failures on distinct shard reads.
        let plan = FaultPlan::new(7)
            .rule_budgeted(
                Site::ShardRead,
                Trigger::OnCall(0),
                FaultKind::Io(IoKind::TimedOut),
                1,
            )
            .rule_budgeted(
                Site::ShardRead,
                Trigger::OnCall(5),
                FaultKind::Io(IoKind::ConnectionReset),
                1,
            );
        let faults = ReloadFaults::from_plan(&plan);
        let (w, stats) = micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&faults)).expect("load");
        assert_eq!(
            loaded_adjacency(&w),
            expect,
            "retried load must be identical"
        );
        assert_eq!(stats.retries, 2);
        assert!(stats.backoff_ns > 0, "retries must account backoff");
    }

    #[test]
    fn exhausted_shard_retries_are_a_typed_error_never_a_short_graph() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let plan = FaultPlan::new(3).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 1000 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let faults = ReloadFaults::from_plan(&plan);
        let err = micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&faults))
            .expect_err("permanent faults must not load");
        assert!(matches!(err, EngineError::ShardRead { .. }), "{err}");
    }

    #[test]
    fn faulted_loads_are_deterministic_across_repeats() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let plan = FaultPlan::io_flaky(99);
        let run = |p: &FaultPlan| {
            let f = ReloadFaults::from_plan(p);
            micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&f))
                .map(|(w, s)| (loaded_adjacency(&w), s))
        };
        match (run(&plan), run(&plan)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (
                Err(EngineError::ShardRead { bucket: a, .. }),
                Err(EngineError::ShardRead { bucket: b, .. }),
            ) => assert_eq!(a, b),
            (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn resilient_reload_degrades_to_text_store() {
        let (g, _) = fixture();
        let (mp, map, bin, text) = micro_fixture(&g);
        let plan = FaultPlan::new(3).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 1000 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let faults = ReloadFaults::from_plan(&plan);
        let (got, stats, degraded) =
            reload_graph_resilient(&bin, Some(&text), mp.micro(), &map, 4, false, Some(&faults))
                .expect("fallback reload");
        assert!(degraded, "must report the degradation");
        assert!(stats.retries > 0);
        assert_eq!(got, g, "text re-assembly must rebuild the same graph");

        // Without a fallback store the typed error propagates.
        let faults = ReloadFaults::from_plan(&plan);
        let err = reload_graph_resilient(&bin, None, mp.micro(), &map, 4, false, Some(&faults))
            .expect_err("no fallback");
        assert!(matches!(err, EngineError::ShardRead { .. }));
    }

    #[test]
    fn resilient_reload_clean_path_is_not_degraded() {
        let (g, _) = fixture();
        let (mp, map, bin, text) = micro_fixture(&g);
        let (got, stats, degraded) =
            reload_graph_resilient(&bin, Some(&text), mp.micro(), &map, 4, false, None)
                .expect("reload");
        assert!(!degraded);
        assert_eq!(stats.retries, 0);
        assert_eq!(got, g);
    }

    #[test]
    fn degraded_reload_accounts_both_attempts() {
        // Regression: the text-fallback path used to fold only
        // `attempts - 1` into retries and drop the aborted binary
        // attempt's backoff entirely.
        let (g, _) = fixture();
        let (mp, map, bin, text) = micro_fixture(&g);
        let plan = FaultPlan::new(3).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 1000 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let faults = ReloadFaults::from_plan(&plan);
        let (got, stats, degraded) =
            reload_graph_resilient(&bin, Some(&text), mp.micro(), &map, 4, false, Some(&faults))
                .expect("fallback reload");
        assert!(degraded);
        assert_eq!(got, g);
        // Bucket 0 exhausts: attempts − 1 retried tries plus the final
        // failed one, each pre-final try with its deterministic backoff.
        let attempts = faults.retry.attempts;
        assert_eq!(stats.retries, attempts as u64);
        let expected_backoff: u64 = (0..attempts - 1).map(|i| faults.retry.backoff_ns(i)).sum();
        assert_eq!(stats.backoff_ns, expected_backoff);
        // The aborted binary attempt read no payload; the fallback parsed
        // the whole text store.
        assert_eq!(stats.bytes_parsed, text.byte_size() as u64);
    }

    #[test]
    fn reload_graph_rejects_overlapping_or_out_of_range_slabs() {
        let w0 = LoadedWorker {
            worker: 0,
            vertices: vec![0, 1],
            offsets: vec![0, 1, 2],
            neighbors: vec![1, 0],
        };
        let dup = LoadedWorker {
            worker: 1,
            vertices: vec![1],
            offsets: vec![0, 1],
            neighbors: vec![0],
        };
        assert!(matches!(
            reload_graph(&[w0.clone(), dup], 4, true),
            Err(EngineError::SlabConflict {
                vertex: 1,
                worker: 1
            })
        ));
        let oob = LoadedWorker {
            worker: 1,
            vertices: vec![9],
            offsets: vec![0, 1],
            neighbors: vec![0],
        };
        assert!(matches!(
            reload_graph(&[w0, oob], 4, true),
            Err(EngineError::SlabConflict {
                vertex: 9,
                worker: 1
            })
        ));
    }

    // --- delta migration ---

    use hourglass_partition::cluster::Clustering;

    #[test]
    fn delta_load_matches_full_micro_load_on_both_formats() {
        let (g, _) = fixture();
        let (mp, map, bin, text) = micro_fixture(&g);
        for store in [&bin, &text] {
            let (old_workers, _) = micro_load(store, mp.micro(), &map, 4).expect("load");
            let mut new_map = map.clone();
            new_map[3] = (new_map[3] + 1) % 4;
            new_map[11] = (new_map[11] + 2) % 4;
            let from = Clustering::from_micro_to_macro(&mp, map.clone(), 4).expect("clustering");
            let to = Clustering::from_micro_to_macro(&mp, new_map.clone(), 4).expect("clustering");
            let delta = ClusteringDelta::between(&mp, &from, &to).expect("delta");
            let (dw, ds) =
                delta_load(store, mp.micro(), &delta, &new_map, old_workers).expect("delta");
            let (fw, fs) = micro_load(store, mp.micro(), &new_map, 4).expect("load");
            assert_eq!(dw, fw, "{}: slabs must be bit-identical", store.format());
            assert_eq!(reload_graph(&dw, g.num_vertices(), false).expect("csr"), g);
            // IO is proportional to the moved buckets, not the graph.
            let moved_bytes: u64 = delta
                .moved()
                .iter()
                .map(|mv| store.bucket_byte_len(mv.micro) as u64)
                .sum();
            assert_eq!(ds.bytes_parsed, moved_bytes);
            assert!(ds.bytes_parsed < fs.bytes_parsed / 2, "{ds:?} vs {fs:?}");
        }
    }

    #[test]
    fn delta_load_across_worker_counts() {
        let (g, _) = fixture();
        let (mp, _, bin, _) = micro_fixture(&g);
        let c4 = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        let c8 = cluster_micro_partitions(&mp, 8, 1).expect("cluster");
        for (from, to) in [(&c4, &c8), (&c8, &c4)] {
            let k_from = from.vertex_partitioning().num_parts();
            let k_to = to.vertex_partitioning().num_parts();
            let (old_workers, _) =
                micro_load(&bin, mp.micro(), from.micro_to_macro(), k_from).expect("load");
            let delta = ClusteringDelta::between(&mp, from, to).expect("delta");
            let (dw, _) = delta_load(&bin, mp.micro(), &delta, to.micro_to_macro(), old_workers)
                .expect("delta");
            let (fw, _) = micro_load(&bin, mp.micro(), to.micro_to_macro(), k_to).expect("load");
            assert_eq!(dw, fw, "{k_from}→{k_to}");
            assert_eq!(reload_graph(&dw, g.num_vertices(), false).expect("csr"), g);
        }
    }

    #[test]
    fn empty_delta_is_a_free_identity_even_under_permanent_faults() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let (old_workers, _) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
        let expect = old_workers.clone();
        let c = Clustering::from_micro_to_macro(&mp, map.clone(), 4).expect("clustering");
        let delta = ClusteringDelta::between(&mp, &c, &c).expect("delta");
        // Permanent faults on every shard read: an empty delta reads
        // nothing, so nothing can fault.
        let plan = FaultPlan::new(3).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 1000 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let faults = ReloadFaults::from_plan(&plan);
        let (dw, ds) =
            delta_load_faulty(&bin, mp.micro(), &delta, &map, old_workers, Some(&faults))
                .expect("delta");
        assert_eq!(dw, expect);
        assert_eq!(ds, LoadStats::default());
    }

    #[test]
    fn faulted_delta_retries_then_falls_back_to_full_reload() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let mut new_map = map.clone();
        new_map[0] = (new_map[0] + 1) % 4;
        new_map[7] = (new_map[7] + 3) % 4;
        let from = Clustering::from_micro_to_macro(&mp, map.clone(), 4).expect("clustering");
        let to = Clustering::from_micro_to_macro(&mp, new_map.clone(), 4).expect("clustering");
        let delta = ClusteringDelta::between(&mp, &from, &to).expect("delta");

        // A single transient fault on the first moved-bucket read is
        // retried away and the result is bit-identical.
        let (old_workers, _) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
        let plan = FaultPlan::new(7).rule_budgeted(
            Site::ShardRead,
            Trigger::OnCall(0),
            FaultKind::Io(IoKind::TimedOut),
            1,
        );
        let faults = ReloadFaults::from_plan(&plan);
        let (dw, ds) = delta_load_faulty(
            &bin,
            mp.micro(),
            &delta,
            &new_map,
            old_workers,
            Some(&faults),
        )
        .expect("delta");
        let (fw, _) = micro_load(&bin, mp.micro(), &new_map, 4).expect("load");
        assert_eq!(dw, fw);
        assert_eq!(ds.retries, 1);
        assert!(ds.backoff_ns > 0);

        // Permanent faults exhaust into the typed error; the caller falls
        // back to a full reload of the new clustering without corruption.
        let (old_workers, _) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
        let plan = FaultPlan::new(3).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 1000 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let faults = ReloadFaults::from_plan(&plan);
        let err = delta_load_faulty(
            &bin,
            mp.micro(),
            &delta,
            &new_map,
            old_workers,
            Some(&faults),
        )
        .expect_err("permanent faults must not delta-load");
        assert!(matches!(err, EngineError::ShardRead { .. }), "{err}");
        let (fallback, _) = micro_load(&bin, mp.micro(), &new_map, 4).expect("fallback");
        assert_eq!(
            reload_graph(&fallback, g.num_vertices(), false).expect("csr"),
            g
        );
    }

    #[test]
    fn delta_load_validates_inputs() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let c = Clustering::from_micro_to_macro(&mp, map.clone(), 4).expect("clustering");
        let delta = ClusteringDelta::between(&mp, &c, &c).expect("delta");
        let (old_workers, _) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
        // Map length mismatch.
        assert!(delta_load(&bin, mp.micro(), &delta, &map[..3], old_workers.clone()).is_err());
        // Wrong number of old slabs.
        assert!(delta_load(&bin, mp.micro(), &delta, &map, old_workers[..2].to_vec()).is_err());
        // Map disagrees with the delta's destination.
        let mut new_map = map.clone();
        new_map[5] = (new_map[5] + 1) % 4;
        let to = Clustering::from_micro_to_macro(&mp, new_map, 4).expect("clustering");
        let d2 = ClusteringDelta::between(&mp, &c, &to).expect("delta");
        assert!(delta_load(&bin, mp.micro(), &d2, &map, old_workers).is_err());
    }
}
