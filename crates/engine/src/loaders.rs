//! Graph loading strategies (§6.1/§8.3.1): stream, hash and micro loading.
//!
//! Two layers:
//!
//! - **Physical loaders** ([`stream_load`], [`hash_load`], [`micro_load`])
//!   actually parse an edge-list datastore into per-worker adjacency
//!   structures, with the hash loader's cross-worker shuffle and the micro
//!   loader's exchange-free parallel reads faithfully reproduced (and
//!   measured by the Criterion benches).
//! - **[`LoaderCostModel`]** converts dataset sizes and machine counts
//!   into loading *seconds* at paper scale, calibrated so the relative
//!   behaviour of the three strategies matches Figure 6 (stream grows with
//!   the dataset and suffers a centralized-memory penalty; hash pays the
//!   network at small clusters; micro scales with `1/k`).

use crate::exec::par_map;
use crate::{EngineError, Result};
use hourglass_graph::{Graph, VertexId};
use hourglass_partition::Partitioning;
use std::fmt;

/// The three loading strategies of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoaderKind {
    /// Master reads and parses the whole dataset, then distributes
    /// (stream-based partitioners force this centralization, §6.1).
    Stream,
    /// Workers read chunks in parallel, then shuffle entities to their
    /// owners over the network.
    Hash,
    /// Workers read exactly their own micro-partitions: parallel and
    /// exchange-free (the Hourglass fast reload, §6.2).
    Micro,
}

impl fmt::Display for LoaderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderKind::Stream => f.write_str("Stream Loader"),
            LoaderKind::Hash => f.write_str("Hash Loader"),
            LoaderKind::Micro => f.write_str("Micro Loader"),
        }
    }
}

// ---------------------------------------------------------------------------
// Modeled loading times (paper-scale reproduction of Figure 6).
// ---------------------------------------------------------------------------

/// Analytical loading-time model.
#[derive(Debug, Clone, Copy)]
pub struct LoaderCostModel {
    /// Per-machine bandwidth reading the external datastore, bytes/s.
    pub datastore_bandwidth: f64,
    /// Per-machine network bandwidth for shuffles, bytes/s.
    pub network_bandwidth: f64,
    /// Per-machine parse throughput, bytes/s.
    pub parse_rate: f64,
    /// In-memory entity size per raw input byte (parsed vertex/edge objects
    /// shipped during a shuffle are larger than their text form).
    pub expansion_factor: f64,
    /// Bytes a single machine can hold/parse before centralized loading
    /// degrades (GC/memory pressure on the master).
    pub master_capacity: f64,
    /// Fixed coordination overhead, seconds.
    pub fixed_overhead: f64,
}

impl LoaderCostModel {
    /// Calibration used for the Figure 6 reproduction: S3-class datastore
    /// reads, 2016 EC2 NICs, Java-like parse rates on Giraph (these set
    /// the *ratios* Figure 6 reports; absolute numbers are secondary).
    pub fn aws_2016() -> Self {
        LoaderCostModel {
            datastore_bandwidth: 90.0e6,
            network_bandwidth: 280.0e6,
            parse_rate: 45.0e6,
            expansion_factor: 4.0,
            master_capacity: 3.0e9,
            fixed_overhead: 8.0,
        }
    }

    /// Modeled loading time in seconds for `bytes` of edge-list data on
    /// `machines` workers.
    pub fn time(&self, kind: LoaderKind, bytes: f64, machines: u32) -> Result<f64> {
        if machines == 0 {
            return Err(EngineError::InvalidConfig(
                "need at least one machine".into(),
            ));
        }
        if bytes < 0.0 || bytes.is_nan() {
            return Err(EngineError::InvalidConfig(format!(
                "bytes must be non-negative, got {bytes}"
            )));
        }
        let k = machines as f64;
        let t = match kind {
            LoaderKind::Stream => {
                // The master reads and parses everything; centralized
                // in-memory construction degrades past its capacity; the
                // parsed entities are then pushed to the workers.
                let pressure = 1.0 + bytes / self.master_capacity;
                let read = bytes / self.datastore_bandwidth;
                let parse = bytes / self.parse_rate * pressure;
                let distribute =
                    bytes * self.expansion_factor * (k - 1.0) / k / self.network_bandwidth;
                read + parse + distribute
            }
            LoaderKind::Hash => {
                // Parallel chunk reads, then an all-to-all shuffle of the
                // (1 − 1/k) fraction of entities that landed on the wrong
                // worker, paid in expanded form on every NIC.
                let chunk = bytes / k;
                let read = chunk / self.datastore_bandwidth;
                let parse = chunk / self.parse_rate;
                let misplaced = chunk * (1.0 - 1.0 / k);
                let shuffle = misplaced * self.expansion_factor / self.network_bandwidth
                    + misplaced / self.parse_rate;
                read + parse + shuffle
            }
            LoaderKind::Micro => {
                // Workers read exactly their own micro-partitions.
                let chunk = bytes / k;
                chunk / self.datastore_bandwidth + chunk / self.parse_rate
            }
        };
        Ok(t + self.fixed_overhead)
    }
}

// ---------------------------------------------------------------------------
// Physical loaders.
// ---------------------------------------------------------------------------

/// An edge-list datastore, optionally pre-bucketed by micro-partition (the
/// offline layout micro-loading depends on: "graph data remains partitioned
/// in the same way across different configurations", §6.2).
#[derive(Debug, Clone)]
pub struct EdgeListStore {
    /// The flat edge-list text (one `u v` line per arc).
    pub flat: String,
    /// Per-micro-partition buckets: bucket `m` holds the arcs whose source
    /// lives in micro-partition `m` (each undirected edge appears in both
    /// endpoints' buckets).
    pub micro_buckets: Option<Vec<String>>,
}

impl EdgeListStore {
    /// Builds a flat store from a graph (arcs, i.e. both directions of
    /// every undirected edge, so adjacency can be assembled locally).
    pub fn flat_from_graph(g: &Graph) -> Self {
        let mut flat = String::with_capacity(g.num_directed_edges() * 14);
        for (u, v, _) in g.arcs() {
            flat.push_str(&format!("{u} {v}\n"));
        }
        EdgeListStore {
            flat,
            micro_buckets: None,
        }
    }

    /// Builds a store bucketed by `micro` (the fast-reload layout) on top
    /// of the flat layout.
    pub fn micro_from_graph(g: &Graph, micro: &Partitioning) -> Result<Self> {
        if micro.num_vertices() != g.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "micro partitioning covers {} vertices, graph has {}",
                micro.num_vertices(),
                g.num_vertices()
            )));
        }
        let mut base = Self::flat_from_graph(g);
        let mut buckets = vec![String::new(); micro.num_parts() as usize];
        for (u, v, _) in g.arcs() {
            buckets[micro.part_of(u) as usize].push_str(&format!("{u} {v}\n"));
        }
        base.micro_buckets = Some(buckets);
        Ok(base)
    }

    /// Size of the flat layout in bytes.
    pub fn byte_size(&self) -> usize {
        self.flat.len()
    }
}

/// One worker's loaded state: its owned vertices and their adjacency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedWorker {
    /// Worker id.
    pub worker: u32,
    /// `(vertex, out-neighbors)` for every owned vertex, sorted by vertex.
    pub adjacency: Vec<(VertexId, Vec<VertexId>)>,
}

/// Accounting of a physical load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadStats {
    /// Raw bytes parsed across machines.
    pub bytes_parsed: u64,
    /// Arcs that had to move between the parsing worker and the owning
    /// worker (the shuffle volume; zero for micro loading).
    pub arcs_exchanged: u64,
}

fn parse_arcs(text: &str) -> Vec<(VertexId, VertexId)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let u = it.next()?.parse().ok()?;
            let v = it.next()?.parse().ok()?;
            Some((u, v))
        })
        .collect()
}

fn assemble(
    num_workers: u32,
    owner: impl Fn(VertexId) -> u32,
    arcs: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> Vec<LoadedWorker> {
    let mut per_worker: Vec<std::collections::BTreeMap<VertexId, Vec<VertexId>>> =
        (0..num_workers).map(|_| Default::default()).collect();
    for (u, v) in arcs {
        per_worker[owner(u) as usize].entry(u).or_default().push(v);
    }
    per_worker
        .into_iter()
        .enumerate()
        .map(|(w, adj)| LoadedWorker {
            worker: w as u32,
            adjacency: adj
                .into_iter()
                .map(|(v, mut ns)| {
                    ns.sort_unstable();
                    (v, ns)
                })
                .collect(),
        })
        .collect()
}

/// Stream loading: one machine parses everything, then entities are handed
/// to their owners.
pub fn stream_load(
    store: &EdgeListStore,
    partitioning: &Partitioning,
) -> (Vec<LoadedWorker>, LoadStats) {
    let arcs = parse_arcs(&store.flat);
    let stats = LoadStats {
        bytes_parsed: store.flat.len() as u64,
        // Every arc whose owner is not the master (worker 0) crosses the
        // network.
        arcs_exchanged: arcs
            .iter()
            .filter(|&&(u, _)| partitioning.part_of(u) != 0)
            .count() as u64,
    };
    let workers = assemble(partitioning.num_parts(), |v| partitioning.part_of(v), arcs);
    (workers, stats)
}

/// Hash loading: the flat store is split into `k` line-aligned chunks,
/// each parsed by one worker in parallel; arcs are then shuffled to their
/// owners.
pub fn hash_load(
    store: &EdgeListStore,
    partitioning: &Partitioning,
) -> (Vec<LoadedWorker>, LoadStats) {
    let k = partitioning.num_parts() as usize;
    let text = &store.flat;
    // Line-aligned chunk boundaries.
    let mut bounds = vec![0usize];
    for i in 1..k {
        let target = text.len() * i / k;
        let next_newline = text[target..]
            .find('\n')
            .map(|p| target + p + 1)
            .unwrap_or(text.len());
        bounds.push(next_newline.min(text.len()));
    }
    bounds.push(text.len());
    bounds.dedup();

    let chunks: Vec<&str> = bounds.windows(2).map(|w| &text[w[0]..w[1]]).collect();
    let parsed: Vec<Vec<(VertexId, VertexId)>> = par_map(&chunks, |chunk| parse_arcs(chunk));

    let mut exchanged = 0u64;
    for (parser, arcs) in parsed.iter().enumerate() {
        for &(u, _) in arcs {
            if partitioning.part_of(u) as usize != parser % k {
                exchanged += 1;
            }
        }
    }
    let stats = LoadStats {
        bytes_parsed: text.len() as u64,
        arcs_exchanged: exchanged,
    };
    let workers = assemble(
        partitioning.num_parts(),
        |v| partitioning.part_of(v),
        parsed.into_iter().flatten(),
    );
    (workers, stats)
}

/// Micro loading: each worker reads exactly the buckets of the
/// micro-partitions assigned to it — parallel, with **zero** exchange
/// (parallel recovery, §6.2).
pub fn micro_load(
    store: &EdgeListStore,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
) -> Result<(Vec<LoadedWorker>, LoadStats)> {
    let buckets = store
        .micro_buckets
        .as_ref()
        .ok_or_else(|| EngineError::InvalidConfig("store has no micro-partition buckets".into()))?;
    if micro_to_worker.len() != buckets.len() || buckets.len() != micro.num_parts() as usize {
        return Err(EngineError::InvalidConfig(format!(
            "micro map covers {} micros, store has {} buckets",
            micro_to_worker.len(),
            buckets.len()
        )));
    }
    if let Some(&bad) = micro_to_worker.iter().find(|&&w| w >= num_workers) {
        return Err(EngineError::InvalidConfig(format!(
            "micro map references worker {bad} of {num_workers}"
        )));
    }
    // Group buckets per worker, then parse in parallel.
    let mut per_worker_buckets: Vec<Vec<&str>> = (0..num_workers).map(|_| Vec::new()).collect();
    for (m, &w) in micro_to_worker.iter().enumerate() {
        per_worker_buckets[w as usize].push(&buckets[m]);
    }
    let parsed: Vec<Vec<(VertexId, VertexId)>> = par_map(&per_worker_buckets, |bs| {
        bs.iter().flat_map(|b| parse_arcs(b)).collect::<Vec<_>>()
    });

    let stats = LoadStats {
        bytes_parsed: buckets.iter().map(|b| b.len() as u64).sum(),
        arcs_exchanged: 0,
    };
    let workers: Vec<LoadedWorker> = parsed
        .into_iter()
        .enumerate()
        .map(|(w, arcs)| {
            let mut adj: std::collections::BTreeMap<VertexId, Vec<VertexId>> = Default::default();
            for (u, v) in arcs {
                adj.entry(u).or_default().push(v);
            }
            LoadedWorker {
                worker: w as u32,
                adjacency: adj
                    .into_iter()
                    .map(|(v, mut ns)| {
                        ns.sort_unstable();
                        (v, ns)
                    })
                    .collect(),
            }
        })
        .collect();
    Ok((workers, stats))
}

/// Merges loaded workers back into a global adjacency check-sum view (test
/// helper exposed for integration tests).
pub fn loaded_adjacency(workers: &[LoadedWorker]) -> Vec<(VertexId, Vec<VertexId>)> {
    let mut all: Vec<(VertexId, Vec<VertexId>)> = workers
        .iter()
        .flat_map(|w| w.adjacency.iter().cloned())
        .collect();
    all.sort_by_key(|(v, _)| *v);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use hourglass_graph::generators;
    use hourglass_partition::cluster::cluster_micro_partitions;
    use hourglass_partition::micro::MicroPartitioner;
    use hourglass_partition::multilevel::Multilevel;
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    fn fixture() -> (Graph, Partitioning) {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 3).expect("gen");
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        (g, p)
    }

    fn expected_adjacency(g: &Graph) -> Vec<(VertexId, Vec<VertexId>)> {
        (0..g.num_vertices() as u32)
            .filter(|&v| g.degree(v) > 0)
            .map(|v| (v, g.neighbors(v).to_vec()))
            .collect()
    }

    #[test]
    fn stream_and_hash_agree_with_graph() {
        let (g, p) = fixture();
        let store = EdgeListStore::flat_from_graph(&g);
        let (sw, ss) = stream_load(&store, &p);
        let (hw, hs) = hash_load(&store, &p);
        let expect = expected_adjacency(&g);
        assert_eq!(loaded_adjacency(&sw), expect);
        assert_eq!(loaded_adjacency(&hw), expect);
        assert_eq!(ss.bytes_parsed, store.byte_size() as u64);
        assert_eq!(hs.bytes_parsed, store.byte_size() as u64);
        assert!(hs.arcs_exchanged > 0, "hash loading must shuffle");
    }

    #[test]
    fn micro_load_is_exchange_free_and_correct() {
        let (g, _) = fixture();
        let mp = MicroPartitioner::new(Multilevel::new(), 16)
            .run(&g)
            .expect("micro");
        let store = EdgeListStore::micro_from_graph(&g, mp.micro()).expect("store");
        let clustering = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        let (mw, ms) =
            micro_load(&store, mp.micro(), clustering.micro_to_macro(), 4).expect("load");
        assert_eq!(ms.arcs_exchanged, 0);
        assert_eq!(loaded_adjacency(&mw), expected_adjacency(&g));
        // Ownership respects the clustering.
        for w in &mw {
            for (v, _) in &w.adjacency {
                let micro = mp.micro().part_of(*v);
                assert_eq!(clustering.micro_to_macro()[micro as usize], w.worker);
            }
        }
    }

    #[test]
    fn micro_load_validates_inputs() {
        let (g, p) = fixture();
        let flat = EdgeListStore::flat_from_graph(&g);
        assert!(micro_load(&flat, &p, &[0; 4], 4).is_err(), "no buckets");
        let mp = MicroPartitioner::new(HashPartitioner, 16)
            .run(&g)
            .expect("micro");
        let store = EdgeListStore::micro_from_graph(&g, mp.micro()).expect("store");
        assert!(
            micro_load(&store, mp.micro(), &[0; 3], 4).is_err(),
            "bad map len"
        );
        assert!(
            micro_load(&store, mp.micro(), &[9; 16], 4).is_err(),
            "worker out of range"
        );
    }

    #[test]
    fn modeled_micro_fastest_and_scales() {
        let m = LoaderCostModel::aws_2016();
        let bytes = 24.0e9; // Twitter at paper scale.
        for &k in &[2u32, 4, 8, 16] {
            let s = m.time(LoaderKind::Stream, bytes, k).expect("time");
            let h = m.time(LoaderKind::Hash, bytes, k).expect("time");
            let mi = m.time(LoaderKind::Micro, bytes, k).expect("time");
            assert!(mi < h && mi < s, "micro must win at k={k}: {mi} {h} {s}");
        }
        let m4 = m.time(LoaderKind::Micro, bytes, 4).expect("time");
        let m16 = m.time(LoaderKind::Micro, bytes, 16).expect("time");
        assert!(m16 < m4 / 2.0, "micro must scale with k");
    }

    #[test]
    fn modeled_stream_flat_in_k_grows_with_bytes() {
        let m = LoaderCostModel::aws_2016();
        let s2 = m.time(LoaderKind::Stream, 1.0e9, 2).expect("time");
        let s16 = m.time(LoaderKind::Stream, 1.0e9, 16).expect("time");
        assert!((s16 - s2).abs() / s2 < 0.2, "stream ~flat in k");
        let big = m.time(LoaderKind::Stream, 8.0e9, 4).expect("time");
        let small = m.time(LoaderKind::Stream, 1.0e9, 4).expect("time");
        assert!(big > 6.0 * small, "stream superlinear in bytes");
    }

    #[test]
    fn modeled_gap_grows_with_dataset() {
        // Paper: micro is 11× faster than stream on Orkut but ~80× on
        // Twitter. Check the ratio is increasing in dataset size.
        let m = LoaderCostModel::aws_2016();
        let ratio = |bytes: f64| {
            let s = m.time(LoaderKind::Stream, bytes, 8).expect("time");
            let mi = m.time(LoaderKind::Micro, bytes, 8).expect("time");
            s / mi
        };
        assert!(ratio(24.0e9) > 2.0 * ratio(1.8e9));
    }

    #[test]
    fn model_validates() {
        let m = LoaderCostModel::aws_2016();
        assert!(m.time(LoaderKind::Micro, 1e9, 0).is_err());
        assert!(m.time(LoaderKind::Micro, f64::NAN, 2).is_err());
    }
}
