//! Graph loading strategies (§6.1/§8.3.1): stream, hash and micro loading.
//!
//! Three layers:
//!
//! - **[`Datastore`]** — the at-rest layout the loaders read. Two physical
//!   formats behind one abstraction: the text edge list ([`EdgeListStore`],
//!   the comparison baseline) and the sharded binary store
//!   ([`ShardedArcs`], `HGS1`) whose buckets are contiguous blocks of
//!   little-endian `u32` arc pairs decoded from byte slices with zero
//!   copies. Either layout is bucketed per micro-partition (the offline
//!   fast-reload layout: "graph data remains partitioned in the same way
//!   across different configurations", §6.2); a single bucket is the flat
//!   layout.
//! - **Physical loaders** ([`stream_load`], [`hash_load`], [`micro_load`])
//!   parse a datastore into per-worker adjacency slabs, with the hash
//!   loader's cross-worker shuffle and the micro loader's exchange-free
//!   parallel reads faithfully reproduced (and measured by the Criterion
//!   benches). Adjacency assembly is a two-pass counting sort into a
//!   CSR-shaped offsets+neighbors slab per worker — the vertex-id space is
//!   dense, so per-worker slots are derived from the [`Partitioning`] once
//!   and every arc is scattered straight into place; no tree maps, no
//!   per-vertex allocation. [`reload_graph`] merges the slabs back into a
//!   [`Graph`] — the deployment step that hands a (re)loaded graph to the
//!   engine.
//! - **[`LoaderCostModel`]** converts dataset sizes and machine counts
//!   into loading *seconds* at paper scale, calibrated per [`StoreFormat`]
//!   so the relative behaviour of the three strategies matches Figure 6
//!   (stream grows with the dataset and suffers a centralized-memory
//!   penalty; hash pays the network at small clusters; micro scales with
//!   `1/k`).

use crate::exec::par_map;
use crate::{EngineError, Result};
use hourglass_faults::{FaultInjector, FaultKind, FaultPlan, Op, RetryPolicy, Site};
use hourglass_graph::io_binary::{decode_arcs, ShardedArcs, ARC_BYTES};
use hourglass_graph::{Graph, VertexId};
use hourglass_obs as obs;
use hourglass_partition::Partitioning;
use std::fmt;

/// The three loading strategies of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoaderKind {
    /// Master reads and parses the whole dataset, then distributes
    /// (stream-based partitioners force this centralization, §6.1).
    Stream,
    /// Workers read chunks in parallel, then shuffle entities to their
    /// owners over the network.
    Hash,
    /// Workers read exactly their own micro-partitions: parallel and
    /// exchange-free (the Hourglass fast reload, §6.2).
    Micro,
}

impl fmt::Display for LoaderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoaderKind::Stream => f.write_str("Stream Loader"),
            LoaderKind::Hash => f.write_str("Hash Loader"),
            LoaderKind::Micro => f.write_str("Micro Loader"),
        }
    }
}

/// Physical at-rest format of a [`Datastore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreFormat {
    /// `u v\n` text lines (the SNAP-style baseline).
    Text,
    /// Sharded little-endian binary arc pairs (`HGS1`).
    Binary,
}

impl fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFormat::Text => f.write_str("text"),
            StoreFormat::Binary => f.write_str("binary"),
        }
    }
}

// ---------------------------------------------------------------------------
// Modeled loading times (paper-scale reproduction of Figure 6).
// ---------------------------------------------------------------------------

/// Analytical loading-time model.
#[derive(Debug, Clone, Copy)]
pub struct LoaderCostModel {
    /// Per-machine bandwidth reading the external datastore, bytes/s.
    pub datastore_bandwidth: f64,
    /// Per-machine network bandwidth for shuffles, bytes/s.
    pub network_bandwidth: f64,
    /// Per-machine parse throughput, bytes/s.
    pub parse_rate: f64,
    /// In-memory entity size per raw input byte (parsed vertex/edge objects
    /// shipped during a shuffle are larger than their text form).
    pub expansion_factor: f64,
    /// Bytes a single machine can hold/parse before centralized loading
    /// degrades (GC/memory pressure on the master).
    pub master_capacity: f64,
    /// Fixed coordination overhead, seconds.
    pub fixed_overhead: f64,
}

impl LoaderCostModel {
    /// Calibration used for the Figure 6 reproduction: S3-class datastore
    /// reads, 2016 EC2 NICs, Java-like parse rates on Giraph over *text*
    /// edge lists (these set the *ratios* Figure 6 reports; absolute
    /// numbers are secondary).
    pub fn aws_2016() -> Self {
        LoaderCostModel {
            datastore_bandwidth: 90.0e6,
            network_bandwidth: 280.0e6,
            parse_rate: 45.0e6,
            expansion_factor: 4.0,
            master_capacity: 3.0e9,
            fixed_overhead: 8.0,
        }
    }

    /// The same machine calibration, adjusted for the datastore format:
    /// the binary store decodes at memory bandwidth rather than text-parse
    /// speed, and its fixed-width arcs expand less when shipped in parsed
    /// form (8 input bytes become one in-memory arc, vs ~14 text bytes
    /// becoming the same arc).
    pub fn aws_2016_for(format: StoreFormat) -> Self {
        match format {
            StoreFormat::Text => Self::aws_2016(),
            StoreFormat::Binary => LoaderCostModel {
                parse_rate: 1.2e9,
                expansion_factor: 2.0,
                ..Self::aws_2016()
            },
        }
    }

    /// Modeled loading time in seconds for `bytes` of edge-list data on
    /// `machines` workers.
    pub fn time(&self, kind: LoaderKind, bytes: f64, machines: u32) -> Result<f64> {
        if machines == 0 {
            return Err(EngineError::InvalidConfig(
                "need at least one machine".into(),
            ));
        }
        if bytes < 0.0 || bytes.is_nan() {
            return Err(EngineError::InvalidConfig(format!(
                "bytes must be non-negative, got {bytes}"
            )));
        }
        let k = machines as f64;
        let t = match kind {
            LoaderKind::Stream => {
                // The master reads and parses everything; centralized
                // in-memory construction degrades past its capacity; the
                // parsed entities are then pushed to the workers.
                let pressure = 1.0 + bytes / self.master_capacity;
                let read = bytes / self.datastore_bandwidth;
                let parse = bytes / self.parse_rate * pressure;
                let distribute =
                    bytes * self.expansion_factor * (k - 1.0) / k / self.network_bandwidth;
                read + parse + distribute
            }
            LoaderKind::Hash => {
                // Parallel chunk reads, then an all-to-all shuffle of the
                // (1 − 1/k) fraction of entities that landed on the wrong
                // worker, paid in expanded form on every NIC.
                let chunk = bytes / k;
                let read = chunk / self.datastore_bandwidth;
                let parse = chunk / self.parse_rate;
                let misplaced = chunk * (1.0 - 1.0 / k);
                let shuffle = misplaced * self.expansion_factor / self.network_bandwidth
                    + misplaced / self.parse_rate;
                read + parse + shuffle
            }
            LoaderKind::Micro => {
                // Workers read exactly their own micro-partitions.
                let chunk = bytes / k;
                chunk / self.datastore_bandwidth + chunk / self.parse_rate
            }
        };
        Ok(t + self.fixed_overhead)
    }
}

// ---------------------------------------------------------------------------
// Datastores.
// ---------------------------------------------------------------------------

/// Appends the decimal digits of `x` without any per-arc heap allocation.
fn push_u32(s: &mut String, mut x: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    s.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ascii"));
}

/// A text edge-list datastore: buckets of `u v\n` lines. One bucket is the
/// flat layout; one bucket per micro-partition is the fast-reload layout
/// (bucket `m` holds the arcs whose source lives in micro-partition `m`,
/// so each undirected edge appears in both endpoints' buckets).
///
/// Kept as the measured comparison baseline for the binary store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeListStore {
    buckets: Vec<String>,
}

impl EdgeListStore {
    /// Builds a flat (single-bucket) store from a graph in one pass, with
    /// integer formatting into a pre-sized buffer (no per-arc `String`).
    pub fn flat_from_graph(g: &Graph) -> Self {
        let mut flat = String::with_capacity(g.num_directed_edges() * 14);
        for (u, v, _) in g.arcs() {
            push_u32(&mut flat, u);
            flat.push(' ');
            push_u32(&mut flat, v);
            flat.push('\n');
        }
        EdgeListStore {
            buckets: vec![flat],
        }
    }

    /// Builds a store bucketed by `micro` (the fast-reload layout)
    /// directly — single pass over the arcs, no intermediate flat copy.
    pub fn micro_from_graph(g: &Graph, micro: &Partitioning) -> Result<Self> {
        if micro.num_vertices() != g.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "micro partitioning covers {} vertices, graph has {}",
                micro.num_vertices(),
                g.num_vertices()
            )));
        }
        let counts = hourglass_partition::micro::micro_arc_counts(g, micro)
            .map_err(EngineError::Partition)?;
        let mut buckets: Vec<String> = counts
            .iter()
            .map(|&c| String::with_capacity(c as usize * 14))
            .collect();
        for u in 0..g.num_vertices() as VertexId {
            let bucket = &mut buckets[micro.part_of(u) as usize];
            for &v in g.neighbors(u) {
                push_u32(bucket, u);
                bucket.push(' ');
                push_u32(bucket, v);
                bucket.push('\n');
            }
        }
        Ok(EdgeListStore { buckets })
    }

    /// Wraps externally produced buckets (whole lines per bucket).
    pub fn from_buckets(buckets: Vec<String>) -> Result<Self> {
        if buckets.is_empty() {
            return Err(EngineError::InvalidConfig(
                "a text store needs at least one bucket".into(),
            ));
        }
        Ok(EdgeListStore { buckets })
    }

    /// The per-bucket text blocks.
    pub fn buckets(&self) -> &[String] {
        &self.buckets
    }

    /// Number of buckets (1 = flat layout).
    pub fn num_buckets(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// Total size of the stored text in bytes.
    pub fn byte_size(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }
}

/// The datastore a loader reads: either the text baseline or the sharded
/// binary layout, behind one dispatch point so every loader runs over both.
#[derive(Debug, Clone, PartialEq)]
pub enum Datastore {
    /// Text edge-list buckets.
    Text(EdgeListStore),
    /// Sharded binary arc buckets (`HGS2` on disk, `HGS1` legacy reads),
    /// decoded zero-copy.
    Binary(ShardedArcs),
}

impl From<EdgeListStore> for Datastore {
    fn from(s: EdgeListStore) -> Self {
        Datastore::Text(s)
    }
}

impl From<ShardedArcs> for Datastore {
    fn from(s: ShardedArcs) -> Self {
        Datastore::Binary(s)
    }
}

impl Datastore {
    /// Flat text store from a graph.
    pub fn text_flat(g: &Graph) -> Self {
        Datastore::Text(EdgeListStore::flat_from_graph(g))
    }

    /// Micro-bucketed text store from a graph.
    pub fn text_micro(g: &Graph, micro: &Partitioning) -> Result<Self> {
        Ok(Datastore::Text(EdgeListStore::micro_from_graph(g, micro)?))
    }

    /// Flat binary store from a graph.
    pub fn binary_flat(g: &Graph) -> Self {
        Datastore::Binary(ShardedArcs::flat_from_graph(g))
    }

    /// Micro-bucketed binary store from a graph: one shard per
    /// micro-partition, each a contiguous block of LE arc pairs.
    pub fn binary_micro(g: &Graph, micro: &Partitioning) -> Result<Self> {
        if micro.num_vertices() != g.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "micro partitioning covers {} vertices, graph has {}",
                micro.num_vertices(),
                g.num_vertices()
            )));
        }
        let sharded = ShardedArcs::from_graph_buckets(g, micro.assignment(), micro.num_parts())
            .map_err(|e| EngineError::InvalidConfig(format!("sharded store: {e}")))?;
        Ok(Datastore::Binary(sharded))
    }

    /// Physical format of this store.
    pub fn format(&self) -> StoreFormat {
        match self {
            Datastore::Text(_) => StoreFormat::Text,
            Datastore::Binary(_) => StoreFormat::Binary,
        }
    }

    /// Number of buckets (1 = flat layout).
    pub fn num_buckets(&self) -> u32 {
        match self {
            Datastore::Text(s) => s.num_buckets(),
            Datastore::Binary(s) => s.num_buckets(),
        }
    }

    /// Stored size in bytes (text: all lines; binary: the arc payload).
    pub fn byte_size(&self) -> usize {
        match self {
            Datastore::Text(s) => s.byte_size(),
            Datastore::Binary(s) => s.payload_bytes(),
        }
    }

    fn bucket_byte_len(&self, b: u32) -> usize {
        match self {
            Datastore::Text(s) => s.buckets[b as usize].len(),
            Datastore::Binary(s) => s.bucket_bytes(b).len(),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing and chunking.
// ---------------------------------------------------------------------------

/// Parses `u v` text lines into `out`. Blank lines and `#` comments are
/// part of the format and skipped silently; unparseable lines and arcs
/// referencing vertices `>= n` are dropped and *counted*.
fn parse_text_arcs(out: &mut Vec<(VertexId, VertexId)>, text: &str, n: u32) -> u64 {
    let mut skipped = 0u64;
    for l in text.lines() {
        if l.is_empty() || l.starts_with('#') || l.trim().is_empty() {
            continue;
        }
        let mut it = l.split_whitespace();
        let parsed = (|| {
            let u: u32 = it.next()?.parse().ok()?;
            let v: u32 = it.next()?.parse().ok()?;
            (u < n && v < n).then_some((u, v))
        })();
        match parsed {
            Some(arc) => out.push(arc),
            None => skipped += 1,
        }
    }
    skipped
}

/// Decodes LE arc pairs into `out`, dropping and counting arcs that
/// reference vertices `>= n` (corrupt or foreign entries).
fn decode_bin_arcs(out: &mut Vec<(VertexId, VertexId)>, bytes: &[u8], n: u32) -> u64 {
    let mut skipped = 0u64;
    out.reserve(bytes.len() / ARC_BYTES);
    for (u, v) in decode_arcs(bytes) {
        if u < n && v < n {
            out.push((u, v));
        } else {
            skipped += 1;
        }
    }
    skipped
}

/// Splits the store's bucket concatenation into `k` record-aligned chunks,
/// each a list of byte-range slices `(bucket, start, end)`. Records never
/// span buckets, so alignment happens within a bucket: text chunks end at
/// a newline, binary chunks at an arc-pair boundary.
fn chunk_ranges(store: &Datastore, k: usize) -> Vec<Vec<(u32, usize, usize)>> {
    let b = store.num_buckets() as usize;
    let lens: Vec<usize> = (0..b as u32).map(|i| store.bucket_byte_len(i)).collect();
    let total: usize = lens.iter().sum();
    // (bucket, offset) cut points, monotone, first = start, last = end.
    let mut cuts: Vec<(usize, usize)> = Vec::with_capacity(k + 1);
    cuts.push((0, 0));
    for i in 1..k {
        let mut target = total * i / k;
        // Locate the bucket containing the global offset `target`.
        let mut bucket = 0usize;
        while bucket < b && target >= lens[bucket] {
            target -= lens[bucket];
            bucket += 1;
        }
        let cut = if bucket >= b {
            (b, 0)
        } else {
            // Align forward to the next record boundary inside the bucket.
            let aligned = match store {
                Datastore::Text(s) => s.buckets[bucket][target..]
                    .find('\n')
                    .map(|p| target + p + 1)
                    .unwrap_or(lens[bucket]),
                Datastore::Binary(_) => target.div_ceil(ARC_BYTES) * ARC_BYTES,
            };
            if aligned >= lens[bucket] {
                (bucket + 1, 0)
            } else {
                (bucket, aligned)
            }
        };
        cuts.push(cut.max(*cuts.last().expect("non-empty")));
    }
    cuts.push((b, 0));

    cuts.windows(2)
        .map(|w| {
            let ((b0, o0), (b1, o1)) = (w[0], w[1]);
            let mut slices = Vec::new();
            let mut push = |bucket: usize, start: usize, end: usize| {
                if start < end {
                    slices.push((bucket as u32, start, end));
                }
            };
            if b0 == b1 {
                push(b0, o0, o1);
            } else {
                if b0 < b {
                    push(b0, o0, lens[b0]);
                }
                for (mid, &len) in lens.iter().enumerate().take(b1.min(b)).skip(b0 + 1) {
                    push(mid, 0, len);
                }
                if b1 < b {
                    push(b1, 0, o1);
                }
            }
            slices
        })
        .collect()
}

/// Parses one chunk (a list of byte ranges) into arcs + skip count.
fn parse_chunk(
    store: &Datastore,
    ranges: &[(u32, usize, usize)],
    n: u32,
) -> (Vec<(VertexId, VertexId)>, u64) {
    let bytes: usize = ranges.iter().map(|&(_, s, e)| e - s).sum();
    let _span = obs::span("decode", "loader").arg("bytes", bytes as u64);
    let mut arcs = Vec::new();
    let mut skipped = 0u64;
    for &(bucket, start, end) in ranges {
        skipped += match store {
            Datastore::Text(s) => {
                parse_text_arcs(&mut arcs, &s.buckets[bucket as usize][start..end], n)
            }
            Datastore::Binary(s) => {
                decode_bin_arcs(&mut arcs, &s.bucket_bytes(bucket)[start..end], n)
            }
        };
    }
    (arcs, skipped)
}

// ---------------------------------------------------------------------------
// Counting-sort assembly.
// ---------------------------------------------------------------------------

/// One worker's loaded state: its owned (active) vertices and their
/// adjacency, as a CSR-shaped offsets+neighbors slab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedWorker {
    /// Worker id.
    pub worker: u32,
    /// Owned vertices with at least one out-neighbor, ascending.
    vertices: Vec<VertexId>,
    /// `offsets[i]..offsets[i + 1]` indexes `neighbors` for `vertices[i]`.
    offsets: Vec<usize>,
    /// Concatenated out-neighbor lists, each sorted.
    neighbors: Vec<VertexId>,
}

impl LoadedWorker {
    /// Number of (active) vertices this worker loaded.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of loaded arcs (adjacency entries).
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// The loaded vertices, ascending.
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Iterates `(vertex, out-neighbors)` in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, &self.neighbors[self.offsets[i]..self.offsets[i + 1]]))
    }
}

/// Per-worker slot layout derived from the vertex ownership once per load:
/// the id space is dense `u32`, so each worker's owned vertices map to a
/// contiguous slot range and arcs counting-sort straight into place.
struct AssemblyPlan {
    owner: Vec<u32>,
    slot_of: Vec<u32>,
    verts: Vec<Vec<VertexId>>,
}

impl AssemblyPlan {
    fn new(num_workers: u32, owner: Vec<u32>) -> Self {
        let _span = obs::span("plan", "loader")
            .arg("workers", num_workers as u64)
            .arg("vertices", owner.len() as u64);
        let mut counts = vec![0usize; num_workers as usize];
        for &w in &owner {
            counts[w as usize] += 1;
        }
        let mut verts: Vec<Vec<VertexId>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        let mut slot_of = vec![0u32; owner.len()];
        for (v, &w) in owner.iter().enumerate() {
            slot_of[v] = verts[w as usize].len() as u32;
            verts[w as usize].push(v as VertexId);
        }
        AssemblyPlan {
            owner,
            slot_of,
            verts,
        }
    }

    fn from_partitioning(p: &Partitioning) -> Self {
        Self::new(p.num_parts(), p.assignment().to_vec())
    }

    fn num_workers(&self) -> u32 {
        self.verts.len() as u32
    }
}

/// Borrowed arc source for one worker's assembly: routed parsed pairs, or
/// raw binary bucket slices iterated in place (the zero-copy micro path —
/// the counting and scatter passes both decode straight off the bytes).
enum WorkerArcs<'a> {
    Owned(Vec<(VertexId, VertexId)>),
    Bytes(Vec<&'a [u8]>),
}

impl WorkerArcs<'_> {
    fn for_each(&self, mut f: impl FnMut(VertexId, VertexId)) {
        match self {
            WorkerArcs::Owned(arcs) => {
                for &(u, v) in arcs {
                    f(u, v);
                }
            }
            WorkerArcs::Bytes(slices) => {
                for s in slices {
                    for (u, v) in decode_arcs(s) {
                        f(u, v);
                    }
                }
            }
        }
    }
}

/// Builds one worker's CSR slab by two-pass counting sort: count degrees
/// per slot, prefix-sum into offsets, scatter neighbors into place. Arcs
/// that are out of range or routed to the wrong worker are dropped and
/// counted (they can only come from a corrupt store or bucket map).
fn assemble_worker(w: u32, arcs: &WorkerArcs<'_>, plan: &AssemblyPlan) -> (LoadedWorker, u64) {
    let _span = obs::span("assemble", "loader").arg("worker", w as u64);
    let my = &plan.verts[w as usize];
    let n = plan.owner.len() as u32;
    let mut deg = vec![0u32; my.len()];
    let mut dropped = 0u64;
    arcs.for_each(|u, v| {
        if u < n && v < n && plan.owner[u as usize] == w {
            deg[plan.slot_of[u as usize] as usize] += 1;
        } else {
            dropped += 1;
        }
    });
    let mut slot_off = Vec::with_capacity(my.len() + 1);
    let mut acc = 0usize;
    slot_off.push(0);
    for &d in &deg {
        acc += d as usize;
        slot_off.push(acc);
    }
    let mut neighbors = vec![0 as VertexId; acc];
    let mut cursor = slot_off.clone();
    arcs.for_each(|u, v| {
        if u < n && v < n && plan.owner[u as usize] == w {
            let s = plan.slot_of[u as usize] as usize;
            neighbors[cursor[s]] = v;
            cursor[s] += 1;
        }
    });
    // Compact to active vertices; our stores emit every vertex's arcs in
    // ascending target order, so the sort below is a no-op check unless
    // the store was produced externally.
    let active = deg.iter().filter(|&&d| d > 0).count();
    let mut vertices = Vec::with_capacity(active);
    let mut offsets = Vec::with_capacity(active + 1);
    offsets.push(0);
    for (s, &d) in deg.iter().enumerate() {
        if d == 0 {
            continue;
        }
        vertices.push(my[s]);
        let seg = &mut neighbors[slot_off[s]..slot_off[s + 1]];
        if seg.windows(2).any(|p| p[0] > p[1]) {
            seg.sort_unstable();
        }
        offsets.push(slot_off[s + 1]);
    }
    (
        LoadedWorker {
            worker: w,
            vertices,
            offsets,
            neighbors,
        },
        dropped,
    )
}

/// Routes parsed arcs to their owning workers by counting sort (exact
/// per-worker capacity, one scatter pass).
fn route_by_owner(arcs: &[(VertexId, VertexId)], plan: &AssemblyPlan) -> Vec<WorkerArcs<'static>> {
    let _span = obs::span("route", "loader").arg("arcs", arcs.len() as u64);
    let mut counts = vec![0usize; plan.num_workers() as usize];
    for &(u, _) in arcs {
        counts[plan.owner[u as usize] as usize] += 1;
    }
    let mut per: Vec<Vec<(VertexId, VertexId)>> =
        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for &(u, v) in arcs {
        per[plan.owner[u as usize] as usize].push((u, v));
    }
    per.into_iter().map(WorkerArcs::Owned).collect()
}

/// Assembles every worker's slab in parallel.
fn assemble_all(plan: &AssemblyPlan, per_worker: Vec<WorkerArcs<'_>>) -> (Vec<LoadedWorker>, u64) {
    let indexed: Vec<(u32, WorkerArcs<'_>)> = per_worker
        .into_iter()
        .enumerate()
        .map(|(w, a)| (w as u32, a))
        .collect();
    let built = par_map(&indexed, |(w, arcs)| assemble_worker(*w, arcs, plan));
    let mut dropped = 0u64;
    let mut workers = Vec::with_capacity(built.len());
    for (lw, d) in built {
        dropped += d;
        workers.push(lw);
    }
    (workers, dropped)
}

/// Accounting of a physical load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadStats {
    /// Raw bytes parsed across machines.
    pub bytes_parsed: u64,
    /// Arcs that had to move between the parsing worker and the owning
    /// worker (the shuffle volume; zero for micro loading).
    pub arcs_exchanged: u64,
    /// Input records dropped instead of loaded: unparseable text lines,
    /// arcs referencing out-of-range vertices, or arcs found in a bucket
    /// routed to the wrong worker. Zero on a well-formed store; the figure
    /// binaries assert this.
    pub lines_skipped: u64,
    /// Transient shard-read faults retried away (fault-aware loads only).
    pub retries: u64,
    /// Accounted retry/delay backoff in nanoseconds. Never slept here —
    /// the simulation bills it to its own clock.
    pub backoff_ns: u64,
}

// ---------------------------------------------------------------------------
// Physical loaders.
// ---------------------------------------------------------------------------

/// Stream loading: one machine parses everything, then entities are handed
/// to their owners.
pub fn stream_load(
    store: &Datastore,
    partitioning: &Partitioning,
) -> (Vec<LoadedWorker>, LoadStats) {
    let _span = obs::span("stream_load", "loader")
        .arg("bytes", store.byte_size() as u64)
        .arg("workers", partitioning.num_parts() as u64);
    let n = partitioning.num_vertices() as u32;
    let plan = AssemblyPlan::from_partitioning(partitioning);
    // The master reads every bucket in order: one sequential parse.
    let mut arcs = Vec::new();
    let mut skipped = 0u64;
    for b in 0..store.num_buckets() {
        let len = store.bucket_byte_len(b);
        let (mut a, s) = parse_chunk(store, &[(b, 0, len)], n);
        arcs.append(&mut a);
        skipped += s;
    }
    let exchanged = arcs
        .iter()
        .filter(|&&(u, _)| plan.owner[u as usize] != 0)
        .count() as u64;
    let per_worker = route_by_owner(&arcs, &plan);
    drop(arcs);
    let (workers, dropped) = assemble_all(&plan, per_worker);
    let stats = LoadStats {
        bytes_parsed: store.byte_size() as u64,
        arcs_exchanged: exchanged,
        lines_skipped: skipped + dropped,
        ..LoadStats::default()
    };
    (workers, stats)
}

/// Hash loading: the store is split into `k` record-aligned chunks, each
/// parsed by one worker in parallel; arcs are then shuffled to their
/// owners.
pub fn hash_load(store: &Datastore, partitioning: &Partitioning) -> (Vec<LoadedWorker>, LoadStats) {
    let _span = obs::span("hash_load", "loader")
        .arg("bytes", store.byte_size() as u64)
        .arg("workers", partitioning.num_parts() as u64);
    let n = partitioning.num_vertices() as u32;
    let k = partitioning.num_parts() as usize;
    let plan = AssemblyPlan::from_partitioning(partitioning);
    let chunks = chunk_ranges(store, k);
    let parsed: Vec<(Vec<(VertexId, VertexId)>, u64)> =
        par_map(&chunks, |ranges| parse_chunk(store, ranges, n));

    let mut exchanged = 0u64;
    let mut skipped = 0u64;
    let mut all = Vec::with_capacity(parsed.iter().map(|(a, _)| a.len()).sum());
    for (parser, (arcs, s)) in parsed.into_iter().enumerate() {
        skipped += s;
        for &(u, _) in &arcs {
            if plan.owner[u as usize] as usize != parser {
                exchanged += 1;
            }
        }
        all.extend(arcs);
    }
    let per_worker = route_by_owner(&all, &plan);
    drop(all);
    let (workers, dropped) = assemble_all(&plan, per_worker);
    let stats = LoadStats {
        bytes_parsed: store.byte_size() as u64,
        arcs_exchanged: exchanged,
        lines_skipped: skipped + dropped,
        ..LoadStats::default()
    };
    (workers, stats)
}

/// Micro loading: each worker reads exactly the buckets of the
/// micro-partitions assigned to it — parallel, with **zero** exchange
/// (parallel recovery, §6.2). On a binary store each bucket is consumed
/// as a raw byte slice: the counting and scatter passes decode arcs in
/// place, copying nothing.
pub fn micro_load(
    store: &Datastore,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
) -> Result<(Vec<LoadedWorker>, LoadStats)> {
    micro_load_faulty(store, micro, micro_to_worker, num_workers, None)
}

/// Fault-injection context for the resilient (re)load path: the shared
/// [`FaultInjector`] consulted at [`Site::ShardRead`] plus the retry
/// bound/backoff applied to faulted bucket reads.
pub struct ReloadFaults {
    /// Shared injector — per-site call counters live here, so one
    /// `ReloadFaults` must span one logical reload.
    pub injector: std::sync::Arc<FaultInjector>,
    /// Bounded retries with deterministic backoff.
    pub retry: RetryPolicy,
}

impl ReloadFaults {
    /// Faults drawn from `plan` with its retry policy.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        ReloadFaults {
            injector: std::sync::Arc::new(plan.injector()),
            retry: RetryPolicy::from_plan(plan),
        }
    }

    /// Per-run variant for sweeps: same plan, run-decorrelated stream.
    pub fn for_run(plan: &FaultPlan, run: u32) -> Self {
        ReloadFaults {
            injector: std::sync::Arc::new(plan.injector_for_run(run)),
            retry: RetryPolicy::from_plan(plan),
        }
    }
}

/// [`micro_load`] with an optional fault plan applied to the shard reads.
///
/// Fault decisions are drawn in a **sequential pre-pass** over buckets in
/// global bucket order, before the parallel read phase — parallel worker
/// scheduling therefore never perturbs which bucket a rule hits, keeping
/// the outcome a pure function of the plan. Every injected fault at this
/// seam surfaces as a *detected* read failure (`HGS2` bucket checksums
/// turn bit flips and torn reads into verification errors), so the
/// uniform response is retry-with-backoff; a bucket still unreadable
/// after [`RetryPolicy::attempts`] tries yields a typed
/// [`EngineError::ShardRead`] — never a silently short graph.
pub fn micro_load_faulty(
    store: &Datastore,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
    faults: Option<&ReloadFaults>,
) -> Result<(Vec<LoadedWorker>, LoadStats)> {
    let _span = obs::span("micro_load", "loader")
        .arg("bytes", store.byte_size() as u64)
        .arg("workers", num_workers as u64)
        .arg("micros", micro.num_parts() as u64);
    let buckets = store.num_buckets();
    if buckets < 2 && micro.num_parts() >= 2 {
        return Err(EngineError::InvalidConfig(
            "store has no micro-partition buckets".into(),
        ));
    }
    if micro_to_worker.len() != buckets as usize || buckets != micro.num_parts() {
        return Err(EngineError::InvalidConfig(format!(
            "micro map covers {} micros, store has {} buckets",
            micro_to_worker.len(),
            buckets
        )));
    }
    if let Some(&bad) = micro_to_worker.iter().find(|&&w| w >= num_workers) {
        return Err(EngineError::InvalidConfig(format!(
            "micro map references worker {bad} of {num_workers}"
        )));
    }
    if let Datastore::Binary(s) = store {
        if s.num_vertices() as usize != micro.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "binary store indexes {} vertices, micro partitioning has {}",
                s.num_vertices(),
                micro.num_vertices()
            )));
        }
    }
    // Deterministic fault pre-pass: one consult loop per bucket, in
    // global bucket order, independent of worker scheduling.
    let mut fault_retries = 0u64;
    let mut fault_backoff_ns = 0u64;
    if let Some(f) = faults {
        for b in 0..buckets {
            let len = store.bucket_byte_len(b) as u64;
            let mut attempt: u32 = 0;
            loop {
                match f.injector.next(Site::ShardRead, Op::len(len)) {
                    None => break,
                    Some(FaultKind::Delay { ns }) => {
                        fault_backoff_ns += ns;
                        break;
                    }
                    Some(_) => {
                        attempt += 1;
                        if attempt >= f.retry.attempts {
                            return Err(EngineError::ShardRead {
                                bucket: b,
                                attempts: attempt,
                            });
                        }
                        fault_retries += 1;
                        fault_backoff_ns += f.retry.backoff_ns(attempt - 1);
                    }
                }
            }
        }
    }

    let n = micro.num_vertices() as u32;
    // Ownership = micro assignment composed with the micro→worker map.
    let owner: Vec<u32> = micro
        .assignment()
        .iter()
        .map(|&m| micro_to_worker[m as usize])
        .collect();
    let plan = AssemblyPlan::new(num_workers, owner);

    // Group buckets per worker (each worker reads exactly its shards).
    let mut per_worker_buckets: Vec<Vec<u32>> = (0..num_workers).map(|_| Vec::new()).collect();
    for (m, &w) in micro_to_worker.iter().enumerate() {
        per_worker_buckets[w as usize].push(m as u32);
    }

    let indexed: Vec<(u32, &[u32])> = per_worker_buckets
        .iter()
        .enumerate()
        .map(|(w, bs)| (w as u32, bs.as_slice()))
        .collect();
    let built: Vec<(LoadedWorker, u64, u64)> = par_map(&indexed, |&(w, bucket_ids)| {
        let bytes: u64 = bucket_ids
            .iter()
            .map(|&b| store.bucket_byte_len(b) as u64)
            .sum();
        let (arcs, parse_skipped) = {
            let _span = obs::span("shard_read", "loader")
                .arg("worker", w as u64)
                .arg("bytes", bytes)
                .arg("shards", bucket_ids.len() as u64);
            match store {
                Datastore::Text(s) => {
                    let mut out = Vec::new();
                    let mut skipped = 0u64;
                    for &b in bucket_ids {
                        skipped += parse_text_arcs(&mut out, &s.buckets()[b as usize], n);
                    }
                    (WorkerArcs::Owned(out), skipped)
                }
                Datastore::Binary(s) => (
                    WorkerArcs::Bytes(bucket_ids.iter().map(|&b| s.bucket_bytes(b)).collect()),
                    0,
                ),
            }
        };
        let (lw, dropped) = assemble_worker(w, &arcs, &plan);
        (lw, parse_skipped + dropped, bytes)
    });

    let mut workers = Vec::with_capacity(built.len());
    let mut skipped = 0u64;
    let mut bytes = 0u64;
    for (lw, s, b) in built {
        workers.push(lw);
        skipped += s;
        bytes += b;
    }
    let stats = LoadStats {
        bytes_parsed: bytes,
        arcs_exchanged: 0,
        lines_skipped: skipped,
        retries: fault_retries,
        backoff_ns: fault_backoff_ns,
    };
    Ok((workers, stats))
}

/// Reloads the deployment graph from the binary fast-reload store,
/// degrading to text-store re-assembly when shards stay unreadable.
///
/// The happy path is [`micro_load_faulty`] over `binary` followed by
/// [`reload_graph`]. When a shard read exhausts its retries, the loader
/// emits a `degraded_reload` instant and falls back to the authoritative
/// text store (`text_fallback`), re-assembling the same per-worker slabs
/// the slow way; the returned flag reports whether the reload degraded.
/// With no fallback store available the typed error propagates.
pub fn reload_graph_resilient(
    binary: &Datastore,
    text_fallback: Option<&Datastore>,
    micro: &Partitioning,
    micro_to_worker: &[u32],
    num_workers: u32,
    directed: bool,
    faults: Option<&ReloadFaults>,
) -> Result<(Graph, LoadStats, bool)> {
    match micro_load_faulty(binary, micro, micro_to_worker, num_workers, faults) {
        Ok((workers, stats)) => {
            let g = reload_graph(&workers, micro.num_vertices(), directed)?;
            Ok((g, stats, false))
        }
        Err(EngineError::ShardRead { bucket, attempts }) => {
            let text = match text_fallback {
                Some(t) => t,
                None => return Err(EngineError::ShardRead { bucket, attempts }),
            };
            let mut args = obs::Args::new();
            args.push("bucket", bucket as u64);
            args.push("attempts", attempts as u64);
            obs::instant("degraded_reload", "loader", args);
            let (workers, mut stats) = micro_load(text, micro, micro_to_worker, num_workers)?;
            stats.retries += (attempts - 1) as u64;
            let g = reload_graph(&workers, micro.num_vertices(), directed)?;
            Ok((g, stats, true))
        }
        Err(e) => Err(e),
    }
}

// ---------------------------------------------------------------------------
// Deployment.
// ---------------------------------------------------------------------------

/// Merges loaded worker slabs into the deployment-wide in-memory [`Graph`]
/// the engine executes on — the last step of the (re)load path. The CSR
/// arrays are assembled by the same counting-sort scheme: per-vertex
/// degrees from the slabs, prefix-sum, then each worker's neighbor block
/// is copied into place.
pub fn reload_graph(
    workers: &[LoadedWorker],
    num_vertices: usize,
    directed: bool,
) -> Result<Graph> {
    let _span = obs::span("reload_graph", "loader")
        .arg("workers", workers.len() as u64)
        .arg("vertices", num_vertices as u64);
    let mut degree = vec![0usize; num_vertices];
    for w in workers {
        for (i, &v) in w.vertices.iter().enumerate() {
            degree[v as usize] += w.offsets[i + 1] - w.offsets[i];
        }
    }
    let mut offsets = Vec::with_capacity(num_vertices + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut targets = vec![0 as VertexId; acc];
    for w in workers {
        for (i, &v) in w.vertices.iter().enumerate() {
            let src = &w.neighbors[w.offsets[i]..w.offsets[i + 1]];
            let dst = offsets[v as usize];
            targets[dst..dst + src.len()].copy_from_slice(src);
        }
    }
    Graph::from_csr(offsets, targets, None, None, directed)
        .map_err(|e| EngineError::InvalidConfig(format!("reloaded graph: {e}")))
}

/// Merges loaded workers back into a global adjacency check-sum view (test
/// helper exposed for integration tests).
pub fn loaded_adjacency(workers: &[LoadedWorker]) -> Vec<(VertexId, Vec<VertexId>)> {
    let mut all: Vec<(VertexId, Vec<VertexId>)> = workers
        .iter()
        .flat_map(|w| w.iter().map(|(v, ns)| (v, ns.to_vec())))
        .collect();
    all.sort_by_key(|(v, _)| *v);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use hourglass_graph::generators;
    use hourglass_partition::cluster::cluster_micro_partitions;
    use hourglass_partition::micro::MicroPartitioner;
    use hourglass_partition::multilevel::Multilevel;
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    fn fixture() -> (Graph, Partitioning) {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 3).expect("gen");
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        (g, p)
    }

    fn expected_adjacency(g: &Graph) -> Vec<(VertexId, Vec<VertexId>)> {
        (0..g.num_vertices() as u32)
            .filter(|&v| g.degree(v) > 0)
            .map(|v| (v, g.neighbors(v).to_vec()))
            .collect()
    }

    #[test]
    fn stream_and_hash_agree_with_graph_on_both_formats() {
        let (g, p) = fixture();
        let expect = expected_adjacency(&g);
        for store in [Datastore::text_flat(&g), Datastore::binary_flat(&g)] {
            let (sw, ss) = stream_load(&store, &p);
            let (hw, hs) = hash_load(&store, &p);
            assert_eq!(loaded_adjacency(&sw), expect, "{} stream", store.format());
            assert_eq!(loaded_adjacency(&hw), expect, "{} hash", store.format());
            assert_eq!(ss.bytes_parsed, store.byte_size() as u64);
            assert_eq!(hs.bytes_parsed, store.byte_size() as u64);
            assert_eq!(ss.lines_skipped, 0);
            assert_eq!(hs.lines_skipped, 0);
            assert!(hs.arcs_exchanged > 0, "hash loading must shuffle");
        }
    }

    #[test]
    fn micro_load_is_exchange_free_and_correct_on_both_formats() {
        let (g, _) = fixture();
        let mp = MicroPartitioner::new(Multilevel::new(), 16)
            .run(&g)
            .expect("micro");
        let clustering = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        for store in [
            Datastore::text_micro(&g, mp.micro()).expect("store"),
            Datastore::binary_micro(&g, mp.micro()).expect("store"),
        ] {
            let (mw, ms) =
                micro_load(&store, mp.micro(), clustering.micro_to_macro(), 4).expect("load");
            assert_eq!(ms.arcs_exchanged, 0);
            assert_eq!(ms.lines_skipped, 0);
            assert_eq!(loaded_adjacency(&mw), expected_adjacency(&g));
            // Ownership respects the clustering.
            for w in &mw {
                for (v, _) in w.iter() {
                    let micro = mp.micro().part_of(v);
                    assert_eq!(clustering.micro_to_macro()[micro as usize], w.worker);
                }
            }
        }
    }

    #[test]
    fn text_and_binary_loads_are_bit_identical() {
        let (g, p) = fixture();
        let text = Datastore::text_flat(&g);
        let bin = Datastore::binary_flat(&g);
        assert_eq!(
            loaded_adjacency(&stream_load(&text, &p).0),
            loaded_adjacency(&stream_load(&bin, &p).0)
        );
        assert_eq!(
            loaded_adjacency(&hash_load(&text, &p).0),
            loaded_adjacency(&hash_load(&bin, &p).0)
        );
        assert!(bin.byte_size() < text.byte_size() * 2, "sanity");
    }

    #[test]
    fn micro_load_validates_inputs() {
        let (g, p) = fixture();
        for flat in [Datastore::text_flat(&g), Datastore::binary_flat(&g)] {
            assert!(micro_load(&flat, &p, &[0; 4], 4).is_err(), "no buckets");
        }
        let mp = MicroPartitioner::new(HashPartitioner, 16)
            .run(&g)
            .expect("micro");
        for store in [
            Datastore::text_micro(&g, mp.micro()).expect("store"),
            Datastore::binary_micro(&g, mp.micro()).expect("store"),
        ] {
            assert!(
                micro_load(&store, mp.micro(), &[0; 3], 4).is_err(),
                "bad map len"
            );
            assert!(
                micro_load(&store, mp.micro(), &[9; 16], 4).is_err(),
                "worker out of range"
            );
        }
    }

    #[test]
    fn malformed_text_lines_are_counted_not_loaded() {
        let store = Datastore::Text(
            EdgeListStore::from_buckets(vec![
                "0 1\n# comment\n\n1 0\nnot a line\n2 0\n9999999 3\n0 zzz\n".to_string(),
            ])
            .expect("store"),
        );
        let p = Partitioning::new(vec![0, 0, 1, 1], 2).expect("partitioning");
        let (workers, stats) = stream_load(&store, &p);
        // "9999999 3" (out of range) + "not a line" + "0 zzz" are skipped;
        // comments and blanks are format, not errors.
        assert_eq!(stats.lines_skipped, 3);
        let adj = loaded_adjacency(&workers);
        assert_eq!(adj, vec![(0, vec![1]), (1, vec![0]), (2, vec![0])]);
        let (_, hstats) = hash_load(&store, &p);
        assert_eq!(hstats.lines_skipped, 3);
    }

    #[test]
    fn reload_graph_roundtrips_through_every_loader() {
        let (g, p) = fixture();
        let store = Datastore::binary_flat(&g);
        let (sw, _) = stream_load(&store, &p);
        assert_eq!(reload_graph(&sw, g.num_vertices(), false).expect("csr"), g);
        let (hw, _) = hash_load(&store, &p);
        assert_eq!(reload_graph(&hw, g.num_vertices(), false).expect("csr"), g);
        let mp = MicroPartitioner::new(HashPartitioner, 16)
            .run(&g)
            .expect("micro");
        let c = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        let micro_store = Datastore::binary_micro(&g, mp.micro()).expect("store");
        let (mw, _) = micro_load(&micro_store, mp.micro(), c.micro_to_macro(), 4).expect("load");
        assert_eq!(reload_graph(&mw, g.num_vertices(), false).expect("csr"), g);
    }

    #[test]
    fn modeled_micro_fastest_and_scales() {
        let m = LoaderCostModel::aws_2016();
        let bytes = 24.0e9; // Twitter at paper scale.
        for &k in &[2u32, 4, 8, 16] {
            let s = m.time(LoaderKind::Stream, bytes, k).expect("time");
            let h = m.time(LoaderKind::Hash, bytes, k).expect("time");
            let mi = m.time(LoaderKind::Micro, bytes, k).expect("time");
            assert!(mi < h && mi < s, "micro must win at k={k}: {mi} {h} {s}");
        }
        let m4 = m.time(LoaderKind::Micro, bytes, 4).expect("time");
        let m16 = m.time(LoaderKind::Micro, bytes, 16).expect("time");
        assert!(m16 < m4 / 2.0, "micro must scale with k");
    }

    #[test]
    fn modeled_stream_flat_in_k_grows_with_bytes() {
        let m = LoaderCostModel::aws_2016();
        let s2 = m.time(LoaderKind::Stream, 1.0e9, 2).expect("time");
        let s16 = m.time(LoaderKind::Stream, 1.0e9, 16).expect("time");
        assert!((s16 - s2).abs() / s2 < 0.2, "stream ~flat in k");
        let big = m.time(LoaderKind::Stream, 8.0e9, 4).expect("time");
        let small = m.time(LoaderKind::Stream, 1.0e9, 4).expect("time");
        assert!(big > 6.0 * small, "stream superlinear in bytes");
    }

    #[test]
    fn modeled_gap_grows_with_dataset() {
        // Paper: micro is 11× faster than stream on Orkut but ~80× on
        // Twitter. Check the ratio is increasing in dataset size.
        let m = LoaderCostModel::aws_2016();
        let ratio = |bytes: f64| {
            let s = m.time(LoaderKind::Stream, bytes, 8).expect("time");
            let mi = m.time(LoaderKind::Micro, bytes, 8).expect("time");
            s / mi
        };
        assert!(ratio(24.0e9) > 2.0 * ratio(1.8e9));
    }

    #[test]
    fn modeled_binary_calibration_parses_faster() {
        let text = LoaderCostModel::aws_2016_for(StoreFormat::Text);
        let bin = LoaderCostModel::aws_2016_for(StoreFormat::Binary);
        for kind in [LoaderKind::Stream, LoaderKind::Hash, LoaderKind::Micro] {
            let t = text.time(kind, 4.0e9, 8).expect("time");
            let b = bin.time(kind, 4.0e9, 8).expect("time");
            assert!(
                b < t,
                "{kind}: binary {b} must beat text {t} at equal bytes"
            );
        }
    }

    #[test]
    fn model_validates() {
        let m = LoaderCostModel::aws_2016();
        assert!(m.time(LoaderKind::Micro, 1e9, 0).is_err());
        assert!(m.time(LoaderKind::Micro, f64::NAN, 2).is_err());
    }

    // --- fault-aware reload path ---

    use hourglass_faults::{IoKind, Trigger};

    fn micro_fixture(
        g: &Graph,
    ) -> (
        hourglass_partition::micro::MicroPartitioning,
        Vec<u32>,
        Datastore,
        Datastore,
    ) {
        let mp = MicroPartitioner::new(Multilevel::new(), 16)
            .run(g)
            .expect("micro");
        let c = cluster_micro_partitions(&mp, 4, 1).expect("cluster");
        let bin = Datastore::binary_micro(g, mp.micro()).expect("store");
        let text = Datastore::text_micro(g, mp.micro()).expect("store");
        let map = c.micro_to_macro().to_vec();
        (mp, map, bin, text)
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_fault_free_load() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let (plain, ps) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
        let faults = ReloadFaults::from_plan(&FaultPlan::new(42));
        let (faulted, fs) =
            micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&faults)).expect("load");
        assert_eq!(loaded_adjacency(&plain), loaded_adjacency(&faulted));
        assert_eq!(ps, fs);
        assert_eq!(fs.retries, 0);
    }

    #[test]
    fn transient_shard_faults_are_retried_to_the_same_graph() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let expect = {
            let (w, _) = micro_load(&bin, mp.micro(), &map, 4).expect("load");
            loaded_adjacency(&w)
        };
        // Two one-shot transient failures on distinct shard reads.
        let plan = FaultPlan::new(7)
            .rule_budgeted(
                Site::ShardRead,
                Trigger::OnCall(0),
                FaultKind::Io(IoKind::TimedOut),
                1,
            )
            .rule_budgeted(
                Site::ShardRead,
                Trigger::OnCall(5),
                FaultKind::Io(IoKind::ConnectionReset),
                1,
            );
        let faults = ReloadFaults::from_plan(&plan);
        let (w, stats) = micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&faults)).expect("load");
        assert_eq!(
            loaded_adjacency(&w),
            expect,
            "retried load must be identical"
        );
        assert_eq!(stats.retries, 2);
        assert!(stats.backoff_ns > 0, "retries must account backoff");
    }

    #[test]
    fn exhausted_shard_retries_are_a_typed_error_never_a_short_graph() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let plan = FaultPlan::new(3).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 1000 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let faults = ReloadFaults::from_plan(&plan);
        let err = micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&faults))
            .expect_err("permanent faults must not load");
        assert!(matches!(err, EngineError::ShardRead { .. }), "{err}");
    }

    #[test]
    fn faulted_loads_are_deterministic_across_repeats() {
        let (g, _) = fixture();
        let (mp, map, bin, _) = micro_fixture(&g);
        let plan = FaultPlan::io_flaky(99);
        let run = |p: &FaultPlan| {
            let f = ReloadFaults::from_plan(p);
            micro_load_faulty(&bin, mp.micro(), &map, 4, Some(&f))
                .map(|(w, s)| (loaded_adjacency(&w), s))
        };
        match (run(&plan), run(&plan)) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (
                Err(EngineError::ShardRead { bucket: a, .. }),
                Err(EngineError::ShardRead { bucket: b, .. }),
            ) => assert_eq!(a, b),
            (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn resilient_reload_degrades_to_text_store() {
        let (g, _) = fixture();
        let (mp, map, bin, text) = micro_fixture(&g);
        let plan = FaultPlan::new(3).rule(
            Site::ShardRead,
            Trigger::Ratio { per_mille: 1000 },
            FaultKind::Io(IoKind::TimedOut),
        );
        let faults = ReloadFaults::from_plan(&plan);
        let (got, stats, degraded) =
            reload_graph_resilient(&bin, Some(&text), mp.micro(), &map, 4, false, Some(&faults))
                .expect("fallback reload");
        assert!(degraded, "must report the degradation");
        assert!(stats.retries > 0);
        assert_eq!(got, g, "text re-assembly must rebuild the same graph");

        // Without a fallback store the typed error propagates.
        let faults = ReloadFaults::from_plan(&plan);
        let err = reload_graph_resilient(&bin, None, mp.micro(), &map, 4, false, Some(&faults))
            .expect_err("no fallback");
        assert!(matches!(err, EngineError::ShardRead { .. }));
    }

    #[test]
    fn resilient_reload_clean_path_is_not_degraded() {
        let (g, _) = fixture();
        let (mp, map, bin, text) = micro_fixture(&g);
        let (got, stats, degraded) =
            reload_graph_resilient(&bin, Some(&text), mp.micro(), &map, 4, false, None)
                .expect("reload");
        assert!(!degraded);
        assert_eq!(stats.retries, 0);
        assert_eq!(got, g);
    }
}
