//! The BSP master: superstep orchestration, message delivery, halting.
//!
//! State is laid out worker-major and stays put for the whole run: vertex
//! values and halt flags live in one slab per worker, indexed by a
//! `(worker, slot)` pair derived once from the partitioning. Each
//! superstep the workers operate on `&mut` disjoint slabs — nothing is
//! cloned in or out — and message queues are double-buffered: vertices
//! read the current inbox while delivery fills the next one, and the two
//! swap at the barrier. Outgoing messages are bucketed per destination
//! worker at send time (with sender-side combining when the program has a
//! combiner), so the exchange phase is a matrix transpose of pointer
//! swaps followed by per-destination parallel delivery.

use crate::exec::fork_join;
use crate::metrics::{RunMetrics, SuperstepMetrics};
use crate::program::{Aggregates, ComputeContext, VertexProgram};
use crate::{EngineError, Result};
use hourglass_graph::{Graph, VertexId};
use hourglass_obs as obs;
use hourglass_partition::Partitioning;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How delivery walks a destination worker's slot space.
///
/// Flat delivery drains each source's bucket front to back; on slabs much
/// larger than L2 every message is a cache miss on the inbox. Blocked
/// delivery first scatters the buckets into ranges of
/// [`DELIVERY_BLOCK_SLOTS`] destination slots, then drains one range at a
/// time, so each pass touches an L2-resident window of the inbox. Both
/// orders append/combine into every inbox cell in the same source-major
/// sequence, so results are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Blocked when the inbox working set overflows the last-level cache
    /// (see [`auto_blocks`]), flat otherwise (the default).
    Auto,
    /// Always take the cache-blocked path.
    Blocked,
    /// Always drain buckets directly.
    Flat,
}

/// Destination-slot span of one delivery block: 8 Ki slots of message
/// vectors (≈ 192 KiB of inbox headers on 64-bit) sit comfortably in an
/// L2 slice while the scatter stream stays sequential.
pub const DELIVERY_BLOCK_SLOTS: usize = 8192;

/// Approximate bytes one inbox cell touches during delivery: the cell's
/// `Vec` header plus a combined message payload.
const APPROX_CELL_BYTES: usize = 48;

/// Last-level cache size estimate in bytes: the `HOURGLASS_LLC_BYTES`
/// override if set, else the largest data cache sysfs reports for cpu0,
/// else a conservative 32 MiB.
pub fn llc_bytes() -> usize {
    static LLC: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LLC.get_or_init(|| {
        if let Some(n) = std::env::var("HOURGLASS_LLC_BYTES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            return n;
        }
        for index in ["index3", "index2"] {
            let path = format!("/sys/devices/system/cpu/cpu0/cache/{index}/size");
            if let Some(n) = std::fs::read_to_string(&path)
                .ok()
                .and_then(|s| parse_cache_size(s.trim()))
            {
                return n;
            }
        }
        32 << 20
    })
}

/// Parses a sysfs cache size like `"32768K"`, `"260M"` or `"2G"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1usize << 10),
        b'M' => (&s[..s.len() - 1], 1 << 20),
        b'G' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|n| n.saturating_mul(mult))
}

/// Whether [`DeliveryMode::Auto`] blocks an inbox of `slots` cells.
///
/// The blocked scatter is an extra linear pass over every message; it
/// only pays off when flat delivery's randomly-addressed inbox working
/// set overflows the last-level cache and each append becomes a memory
/// round-trip. Below that the scattered writes already hit cache —
/// measured on a 260 MiB-LLC host, unconditionally blocking a
/// 2.1 M-slot inbox (scale-23 R-MAT, 4 workers) made delivery 3× slower
/// — so Auto blocks only past the LLC estimate.
pub fn auto_blocks(slots: usize) -> bool {
    slots > DELIVERY_BLOCK_SLOTS && slots.saturating_mul(APPROX_CELL_BYTES) > llc_bytes()
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Hard cap on supersteps (a convergence backstop).
    pub max_supersteps: usize,
    /// Execute workers as OS threads (one per partition) instead of
    /// sequentially. Results are identical; only wall time differs.
    pub parallel: bool,
    /// Delivery traversal order (see [`DeliveryMode`]). Results are
    /// identical across modes; only cache behavior differs.
    pub delivery: DeliveryMode,
    /// Order each worker's vertices by descending degree (ties by id)
    /// instead of member order, concentrating hub inbox slots — where
    /// most messages land — in the first delivery blocks. Off by
    /// default: slot order is also compute order, so programs whose
    /// floating-point reductions are order-sensitive see last-ulp
    /// differences (integer/idempotent programs are unaffected).
    pub hub_sort: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_supersteps: 10_000,
            parallel: true,
            delivery: DeliveryMode::Auto,
            hub_sort: false,
        }
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Whether every vertex halted with no pending messages.
    pub converged: bool,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Messages whose source and target lived on different workers.
    pub remote_messages: u64,
    /// Wall-clock seconds of the compute phase.
    pub wall_seconds: f64,
    /// Per-superstep detail.
    pub metrics: RunMetrics,
}

/// Serializable engine state written by [`BspEngine::checkpoint_state`].
///
/// Everything is stored in global vertex order, independent of the worker
/// count that produced it — that is what lets a checkpoint written on `k`
/// workers restore onto `k'` workers (the fast-reload scenario, §6.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint<V, M> {
    /// Superstep the engine will execute next.
    pub superstep: usize,
    /// Per-vertex values, in global vertex order.
    pub values: Vec<V>,
    /// Per-vertex halt flags.
    pub halted: Vec<bool>,
    /// Per-vertex inboxes for the next superstep.
    pub inbox: Vec<Vec<M>>,
    /// Aggregates produced by the last executed superstep.
    pub prev_aggregates: Aggregates,
}

/// One outgoing bucket: slot-addressed messages for a single destination
/// worker.
type Bucket<M> = Vec<(u32, M)>;

/// The `w×w` bucket matrix exchanged between compute and delivery.
type BucketMatrix<M> = Vec<Vec<Bucket<M>>>;

/// A Pregel-style synchronous engine over a shared immutable graph.
pub struct BspEngine<'g, P: VertexProgram> {
    program: P,
    graph: &'g Graph,
    partitioning: Partitioning,
    config: EngineConfig,
    /// Per-worker vertex lists (fixed for the run).
    members: Vec<Vec<VertexId>>,
    /// Packed global vertex id → (worker, slot) routing table; one read
    /// resolves both destination worker and inbox slot.
    route: Vec<u64>,
    /// Worker-major vertex values: `values[worker][slot]`.
    values: Vec<Vec<P::Value>>,
    /// Worker-major halt flags.
    halted: Vec<Vec<bool>>,
    /// Inboxes read this superstep: `inbox[worker][slot]`.
    inbox: Vec<Vec<Vec<P::Message>>>,
    /// Inboxes filled by delivery for the next superstep; swapped with
    /// `inbox` at the barrier (the double buffer).
    inbox_next: Vec<Vec<Vec<P::Message>>>,
    /// Per-source outgoing buckets: `outboxes[src][dest]`, entries
    /// addressed by destination slot.
    outboxes: BucketMatrix<P::Message>,
    /// Transposed buckets awaiting delivery: `delivery[dest][src]`. The
    /// cells ping-pong with `outboxes` via `mem::swap`, so bucket
    /// capacity is reused across supersteps.
    delivery: BucketMatrix<P::Message>,
    /// Per-destination scatter buffers for blocked delivery, one vector
    /// per [`DELIVERY_BLOCK_SLOTS`]-slot range; kept across supersteps so
    /// their capacity is reused. Empty when delivery runs flat.
    scratch: BucketMatrix<P::Message>,
    superstep: usize,
    prev_aggregates: Aggregates,
    metrics: RunMetrics,
}

/// What one worker reports back from a superstep's compute phase.
struct WorkerOut {
    aggregates: Aggregates,
    active: u64,
    sent: u64,
    remote: u64,
    compute_seconds: f64,
    /// Tracing tick at which the worker finished compute (0 when no
    /// collector is installed); lets the master synthesize per-worker
    /// barrier-wait spans from here to the slowest worker's finish.
    end_ns: u64,
}

impl<'g, P: VertexProgram> BspEngine<'g, P> {
    /// Creates an engine; vertex values are initialized via
    /// [`VertexProgram::init`] and every vertex starts active.
    pub fn new(
        program: P,
        graph: &'g Graph,
        partitioning: Partitioning,
        config: EngineConfig,
    ) -> Result<Self> {
        if partitioning.num_vertices() != graph.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "partitioning covers {} vertices, graph has {}",
                partitioning.num_vertices(),
                graph.num_vertices()
            )));
        }
        let mut members = partitioning.members();
        if config.hub_sort {
            for ws in &mut members {
                ws.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
            }
        }
        let route = crate::program::build_routes(graph.num_vertices(), &members);
        let w = members.len();
        let values = members
            .iter()
            .map(|ws| ws.iter().map(|&v| program.init(v, graph)).collect())
            .collect();
        let halted = members.iter().map(|ws| vec![false; ws.len()]).collect();
        let empty_inboxes = |members: &[Vec<VertexId>]| -> Vec<Vec<Vec<P::Message>>> {
            members
                .iter()
                .map(|ws| (0..ws.len()).map(|_| Vec::new()).collect())
                .collect()
        };
        let empty_buckets = || -> BucketMatrix<P::Message> {
            (0..w)
                .map(|_| (0..w).map(|_| Vec::new()).collect())
                .collect()
        };
        Ok(BspEngine {
            program,
            graph,
            config,
            values,
            halted,
            inbox: empty_inboxes(&members),
            inbox_next: empty_inboxes(&members),
            outboxes: empty_buckets(),
            delivery: empty_buckets(),
            scratch: (0..w).map(|_| Vec::new()).collect(),
            members,
            route,
            partitioning,
            superstep: 0,
            prev_aggregates: Aggregates::new(),
            metrics: RunMetrics::default(),
        })
    }

    /// The superstep the engine will execute next.
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// The partitioning the engine was built with.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Per-vertex values gathered into global vertex order (the engine
    /// stores them worker-major, so this clones; call once per run, not
    /// per superstep).
    pub fn values(&self) -> Vec<P::Value> {
        self.route
            .iter()
            .map(|&r| self.values[(r >> 32) as usize][r as u32 as usize].clone())
            .collect()
    }

    /// Consumes the engine, returning the per-vertex values in global
    /// vertex order (no clones).
    pub fn into_values(self) -> Vec<P::Value> {
        let mut out: Vec<Option<P::Value>> = (0..self.graph.num_vertices()).map(|_| None).collect();
        for (ws, vals) in self.members.iter().zip(self.values) {
            for (&v, val) in ws.iter().zip(vals) {
                out[v as usize] = Some(val);
            }
        }
        out.into_iter()
            .map(|v| v.expect("every vertex belongs to a worker"))
            .collect()
    }

    /// Aggregates produced by the most recent superstep.
    pub fn aggregates(&self) -> &Aggregates {
        &self.prev_aggregates
    }

    /// Per-superstep metrics recorded so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Whether every vertex has halted and no messages are pending.
    pub fn is_done(&self) -> bool {
        self.halted.iter().all(|hs| hs.iter().all(|&h| h))
            && self.inbox.iter().all(|ws| ws.iter().all(|m| m.is_empty()))
    }

    /// Executes one superstep; returns `true` when the computation is done.
    pub fn step(&mut self) -> Result<bool> {
        if self.is_done() {
            return Ok(true);
        }
        let w = self.members.len();
        let _step_span = obs::span("superstep", "engine")
            .arg("superstep", self.superstep as u64)
            .arg("workers", w as u64);

        // Compute phase: one task per worker, each owning its slab of
        // values/halt flags, its inbox rows (drained in place) and its
        // outgoing buckets. The sequential path runs the same closures in
        // worker order, so both paths are behaviorally identical.
        let program = &self.program;
        let graph = self.graph;
        let prev = &self.prev_aggregates;
        let superstep = self.superstep;
        let route = &self.route;
        let tasks: Vec<_> = self
            .members
            .iter()
            .zip(self.values.iter_mut())
            .zip(self.halted.iter_mut())
            .zip(self.inbox.iter_mut())
            .zip(self.outboxes.iter_mut())
            .enumerate()
            .map(|(worker, ((((ws, vals), hs), inbox), buckets))| {
                move || {
                    run_worker_slab::<P>(
                        worker as u32,
                        ws,
                        vals,
                        hs,
                        inbox,
                        buckets,
                        program,
                        graph,
                        prev,
                        superstep,
                        route,
                    )
                }
            })
            .collect();
        let outs = fork_join(self.config.parallel, tasks);

        // The barrier wait is implicit in the join above: every worker
        // idles from its own finish until the slowest one's. Reconstruct
        // it per worker from the recorded end ticks.
        if obs::enabled() {
            let max_end = outs.iter().map(|o| o.end_ns).max().unwrap_or(0);
            for (worker, out) in outs.iter().enumerate() {
                if out.end_ns > 0 && max_end > out.end_ns {
                    obs::record(obs::SpanRecord {
                        name: "barrier_wait",
                        cat: "engine",
                        track: worker as u32,
                        start_ns: out.end_ns,
                        end_ns: max_end,
                        kind: obs::RecordKind::Span,
                        args: obs::Args::new(),
                    });
                }
            }
        }

        // Exchange phase: transpose the bucket matrix with pointer swaps
        // (outboxes[src][dest] ↔ delivery[dest][src]), then deliver each
        // destination's buckets in parallel, draining them in source order
        // into the next-superstep inboxes.
        let t_delivery = Instant::now();
        {
            let _transpose_span = obs::span("transpose", "engine");
            for src in 0..w {
                for dest in 0..w {
                    std::mem::swap(&mut self.outboxes[src][dest], &mut self.delivery[dest][src]);
                }
            }
        }
        let mode = self.config.delivery;
        let delivery_tasks: Vec<_> = self
            .delivery
            .iter_mut()
            .zip(self.inbox_next.iter_mut())
            .zip(self.scratch.iter_mut())
            .enumerate()
            .map(|(dest, ((rows, inbox), scratch))| {
                move || {
                    let blocked = match mode {
                        DeliveryMode::Blocked => true,
                        DeliveryMode::Flat => false,
                        DeliveryMode::Auto => auto_blocks(inbox.len()),
                    };
                    let _span = obs::span("deliver", "engine")
                        .arg("worker", dest as u64)
                        .arg("blocked", u64::from(blocked));
                    if blocked {
                        deliver_worker_blocked::<P>(program, rows, inbox, scratch)
                    } else {
                        deliver_worker::<P>(program, rows, inbox)
                    }
                }
            })
            .collect();
        fork_join(self.config.parallel, delivery_tasks);

        // Barrier: the filled buffers become current, the drained ones
        // become next superstep's delivery target.
        std::mem::swap(&mut self.inbox, &mut self.inbox_next);
        let delivery_seconds = t_delivery.elapsed().as_secs_f64();

        let mut next_aggregates = Aggregates::new();
        let mut active = 0u64;
        let mut total_messages = 0u64;
        let mut remote_messages = 0u64;
        let mut max_worker_seconds = 0.0f64;
        let mut total_worker_seconds = 0.0f64;
        for out in &outs {
            active += out.active;
            total_messages += out.sent;
            remote_messages += out.remote;
            max_worker_seconds = max_worker_seconds.max(out.compute_seconds);
            total_worker_seconds += out.compute_seconds;
            next_aggregates.merge(&out.aggregates);
        }
        // Aggregate CPU lost to compute skew: each worker idles at the
        // barrier for the gap between its own compute time and the max.
        let barrier_wait_seconds = outs
            .iter()
            .map(|o| max_worker_seconds - o.compute_seconds)
            .sum::<f64>()
            .max(0.0);
        obs::counter("messages", "engine", total_messages);
        let step_metrics = SuperstepMetrics {
            superstep: self.superstep,
            active_vertices: active,
            messages: total_messages,
            remote_messages,
            max_worker_seconds,
            total_worker_seconds,
            delivery_seconds,
            barrier_wait_seconds,
        };
        crate::metrics::record_superstep(&step_metrics);
        self.metrics.push(step_metrics);
        self.prev_aggregates = next_aggregates;
        self.superstep += 1;
        Ok(self.is_done())
    }

    /// Runs to completion (or the superstep cap).
    pub fn run(&mut self) -> Result<ExecutionReport> {
        let t0 = Instant::now();
        let mut converged = self.is_done();
        while !converged && self.superstep < self.config.max_supersteps {
            converged = self.step()?;
        }
        if !converged {
            return Err(EngineError::DidNotConverge {
                max_supersteps: self.config.max_supersteps,
            });
        }
        Ok(ExecutionReport {
            supersteps: self.superstep,
            converged,
            total_messages: self.metrics.total_messages(),
            remote_messages: self.metrics.total_remote_messages(),
            wall_seconds: t0.elapsed().as_secs_f64(),
            metrics: self.metrics.clone(),
        })
    }

    /// Captures the engine state for checkpointing, gathered into global
    /// vertex order so the checkpoint is portable across worker counts.
    pub fn checkpoint_state(&self) -> EngineCheckpoint<P::Value, P::Message> {
        let _span = obs::span("checkpoint_save", "ckpt")
            .arg("superstep", self.superstep as u64)
            .arg("vertices", self.graph.num_vertices() as u64);
        let gather = |v: usize| {
            let r = self.route[v];
            ((r >> 32) as usize, r as u32 as usize)
        };
        let n = self.graph.num_vertices();
        EngineCheckpoint {
            superstep: self.superstep,
            values: (0..n)
                .map(|v| {
                    let (w, s) = gather(v);
                    self.values[w][s].clone()
                })
                .collect(),
            halted: (0..n)
                .map(|v| {
                    let (w, s) = gather(v);
                    self.halted[w][s]
                })
                .collect(),
            inbox: (0..n)
                .map(|v| {
                    let (w, s) = gather(v);
                    self.inbox[w][s].clone()
                })
                .collect(),
            prev_aggregates: self.prev_aggregates.clone(),
        }
    }

    /// Restores engine state from a checkpoint (graph and partitioning must
    /// match the original run; the partitioning may differ in worker count
    /// — that is exactly the fast-reload scenario).
    pub fn restore_state(&mut self, ckpt: EngineCheckpoint<P::Value, P::Message>) -> Result<()> {
        let _span = obs::span("checkpoint_restore", "ckpt")
            .arg("superstep", ckpt.superstep as u64)
            .arg("vertices", ckpt.values.len() as u64);
        let n = self.graph.num_vertices();
        if ckpt.values.len() != n || ckpt.halted.len() != n || ckpt.inbox.len() != n {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint covers {} vertices, graph has {n}",
                ckpt.values.len()
            )));
        }
        self.superstep = ckpt.superstep;
        let scatter = |v: usize| {
            let r = self.route[v];
            ((r >> 32) as usize, r as u32 as usize)
        };
        for (v, val) in ckpt.values.into_iter().enumerate() {
            let (w, s) = scatter(v);
            self.values[w][s] = val;
        }
        for (v, h) in ckpt.halted.into_iter().enumerate() {
            let (w, s) = scatter(v);
            self.halted[w][s] = h;
        }
        for (v, msgs) in ckpt.inbox.into_iter().enumerate() {
            let (w, s) = scatter(v);
            self.inbox[w][s] = msgs;
        }
        self.prev_aggregates = ckpt.prev_aggregates;
        // Drop any in-flight buffers from the pre-restore execution…
        for rows in &mut self.inbox_next {
            for cell in rows {
                cell.clear();
            }
        }
        for rows in self.outboxes.iter_mut().chain(self.delivery.iter_mut()) {
            for cell in rows {
                cell.clear();
            }
        }
        // …and the metrics of supersteps the resumed run will re-execute,
        // so totals are not double-counted.
        self.metrics.truncate_to_superstep(self.superstep);
        Ok(())
    }

    /// Adopts the execution state of another engine over the same graph —
    /// the state carry-through of a delta migration: vertex values, halt
    /// flags and pending inboxes move with their vertices instead of being
    /// re-derived from a durable checkpoint. Workers whose member list is
    /// unchanged take the old slabs wholesale; everyone else gathers
    /// per-vertex through the old routing table. The result is
    /// bit-identical to [`Self::checkpoint_state`] on `old` followed by
    /// [`Self::restore_state`] on `self`, without materializing the
    /// global-order checkpoint.
    pub fn adopt_state_from(&mut self, old: &Self) -> Result<()> {
        let n = self.graph.num_vertices();
        if old.graph.num_vertices() != n {
            return Err(EngineError::Checkpoint(format!(
                "adopting state for {} vertices onto a graph with {n}",
                old.graph.num_vertices()
            )));
        }
        let _span = obs::span("delta_adopt", "engine")
            .arg("superstep", old.superstep as u64)
            .arg("vertices", n as u64);
        self.superstep = old.superstep;
        self.prev_aggregates = old.prev_aggregates.clone();
        for w in 0..self.members.len() {
            if old.members.get(w).is_some_and(|m| *m == self.members[w]) {
                // Same vertex list in the same order: the slabs line up
                // slot for slot.
                self.values[w].clone_from(&old.values[w]);
                self.halted[w].clone_from(&old.halted[w]);
                self.inbox[w].clone_from(&old.inbox[w]);
            } else {
                for (slot, &v) in self.members[w].iter().enumerate() {
                    let r = old.route[v as usize];
                    let (ow, os) = ((r >> 32) as usize, r as u32 as usize);
                    self.values[w][slot] = old.values[ow][os].clone();
                    self.halted[w][slot] = old.halted[ow][os];
                    self.inbox[w][slot] = old.inbox[ow][os].clone();
                }
            }
        }
        // Drop any in-flight buffers from the pre-adopt state, exactly as
        // a checkpoint restore would.
        for rows in &mut self.inbox_next {
            for cell in rows {
                cell.clear();
            }
        }
        for rows in self.outboxes.iter_mut().chain(self.delivery.iter_mut()) {
            for cell in rows {
                cell.clear();
            }
        }
        self.metrics.truncate_to_superstep(self.superstep);
        Ok(())
    }
}

/// The worker kernel: computes one superstep for the vertices of a single
/// worker, operating on the worker's own slabs (`vals[slot]`,
/// `halted[slot]`, `inbox[slot]` aligned with `worker_vertices`).
/// Inbox cells are drained in place — the buffers keep their capacity for
/// the next time this worker receives messages.
#[allow(clippy::too_many_arguments)]
fn run_worker_slab<P: VertexProgram>(
    self_worker: u32,
    worker_vertices: &[VertexId],
    vals: &mut [P::Value],
    halted: &mut [bool],
    inbox: &mut [Vec<P::Message>],
    buckets: &mut [Vec<(u32, P::Message)>],
    program: &P,
    graph: &Graph,
    prev_aggregates: &Aggregates,
    superstep: usize,
    route: &[u64],
) -> WorkerOut {
    let t0 = Instant::now();
    let _span = obs::span("compute", "engine")
        .arg("worker", self_worker as u64)
        .arg("superstep", superstep as u64)
        .arg("vertices", worker_vertices.len() as u64);
    let mut aggregates = Aggregates::new();
    let mut active = 0u64;
    let mut sent = 0u64;
    let mut remote = 0u64;
    let combiner = |a: &P::Message, b: &P::Message| program.combine(a, b);
    for (slot, &v) in worker_vertices.iter().enumerate() {
        if halted[slot] && inbox[slot].is_empty() {
            continue;
        }
        halted[slot] = false;
        active += 1;
        // Move the inbox cell out so the context can borrow the rest of
        // the slabs mutably; hand the (cleared) buffer back afterwards.
        let messages = std::mem::take(&mut inbox[slot]);
        let mut ctx = ComputeContext {
            vertex: v,
            superstep,
            graph,
            prev_aggregates,
            value: &mut vals[slot],
            halted: &mut halted[slot],
            buckets,
            route,
            self_worker,
            combiner: &combiner,
            sent: &mut sent,
            remote: &mut remote,
            next_aggregates: &mut aggregates,
        };
        program.compute(&mut ctx, &messages);
        let mut messages = messages;
        messages.clear();
        inbox[slot] = messages;
    }
    WorkerOut {
        aggregates,
        active,
        sent,
        remote,
        compute_seconds: t0.elapsed().as_secs_f64(),
        end_ns: obs::now_ns_if_enabled(),
    }
}

/// Delivers one destination worker's incoming buckets (one per source, in
/// source order) into its next-superstep inboxes, combining against the
/// inbox tail when the program allows it. Bucket entries are already
/// slot-addressed, so delivery indexes the inbox slab directly.
fn deliver_worker<P: VertexProgram>(
    program: &P,
    rows: &mut [Vec<(u32, P::Message)>],
    inbox: &mut [Vec<P::Message>],
) {
    for row in rows {
        for (slot, msg) in row.drain(..) {
            let cell = &mut inbox[slot as usize];
            if let Some(last) = cell.last_mut() {
                if let Some(combined) = program.combine(last, &msg) {
                    *last = combined;
                    continue;
                }
            }
            cell.push(msg);
        }
    }
}

/// Cache-blocked delivery: a stable counting scatter into
/// [`DELIVERY_BLOCK_SLOTS`]-slot ranges, then a per-range drain. The
/// scatter streams every source bucket front to back (sequential reads,
/// append-only writes), and the drain's random inbox accesses are confined
/// to one block at a time. Entries destined for the same slot keep their
/// source-major order through both passes, so the inbox — and any
/// tail-combining — comes out bit-identical to [`deliver_worker`].
/// `scratch` keeps its per-block capacity across supersteps.
fn deliver_worker_blocked<P: VertexProgram>(
    program: &P,
    rows: &mut [Vec<(u32, P::Message)>],
    inbox: &mut [Vec<P::Message>],
    scratch: &mut Vec<Vec<(u32, P::Message)>>,
) {
    let num_blocks = inbox.len().div_ceil(DELIVERY_BLOCK_SLOTS).max(1);
    if scratch.len() < num_blocks {
        scratch.resize_with(num_blocks, Vec::new);
    }
    for row in rows {
        for (slot, msg) in row.drain(..) {
            scratch[slot as usize / DELIVERY_BLOCK_SLOTS].push((slot, msg));
        }
    }
    for block in scratch {
        for (slot, msg) in block.drain(..) {
            let cell = &mut inbox[slot as usize];
            if let Some(last) = cell.last_mut() {
                if let Some(combined) = program.combine(last, &msg) {
                    *last = combined;
                    continue;
                }
            }
            cell.push(msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hourglass_graph::generators;
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    /// Toy program: every vertex floods its id once, then records the max
    /// id it heard and halts.
    struct MaxId;

    impl VertexProgram for MaxId {
        type Value = u32;
        type Message = u32;

        fn init(&self, v: VertexId, _g: &Graph) -> u32 {
            v
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
            if ctx.superstep == 0 {
                let me = *ctx.value_ref();
                ctx.send_to_neighbors(me);
            } else {
                let best = messages.iter().copied().max().unwrap_or(0);
                if best > *ctx.value_ref() {
                    *ctx.value() = best;
                }
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
            Some(*a.max(b))
        }
    }

    fn ring(n: usize) -> Graph {
        let mut b = hourglass_graph::GraphBuilder::undirected(n);
        for i in 0..n as u32 {
            b.add_edge(i, (i + 1) % n as u32);
        }
        b.build().expect("build")
    }

    fn engine_on<'g>(g: &'g Graph, k: u32, parallel: bool) -> BspEngine<'g, MaxId> {
        let p = HashPartitioner.partition(g, k).expect("partition");
        BspEngine::new(
            MaxId,
            g,
            p,
            EngineConfig {
                parallel,
                ..EngineConfig::default()
            },
        )
        .expect("engine")
    }

    #[test]
    fn max_id_one_hop() {
        let g = ring(8);
        let mut e = engine_on(&g, 2, false);
        let report = e.run().expect("run");
        assert!(report.converged);
        assert_eq!(report.supersteps, 2);
        // Vertex 0 hears from 1 and 7 → 7.
        assert_eq!(e.values()[0], 7);
        assert_eq!(e.values()[3], 4);
    }

    #[test]
    fn blocked_delivery_matches_flat_exactly() {
        // More vertices than one delivery block so Auto also blocks, and
        // a float-valued program so the check is bit-exact, not epsilon.
        let g = generators::rmat(14, 6, generators::RmatParams::SOCIAL, 3).expect("gen");
        assert!(g.num_vertices() > DELIVERY_BLOCK_SLOTS);
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let run = |delivery: DeliveryMode| {
            let mut e = BspEngine::new(
                crate::apps::PageRank::fixed(10),
                &g,
                p.clone(),
                EngineConfig {
                    delivery,
                    ..EngineConfig::default()
                },
            )
            .expect("engine");
            e.run().expect("run");
            e.into_values()
        };
        let flat = run(DeliveryMode::Flat);
        assert_eq!(flat, run(DeliveryMode::Blocked), "blocked vs flat");
        assert_eq!(flat, run(DeliveryMode::Auto), "auto vs flat");
    }

    #[test]
    fn blocked_delivery_forced_on_small_slabs() {
        // Blocked mode must also be exact when the slab fits one block.
        let g = generators::erdos_renyi(300, 900, 5).expect("gen");
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let mut flat = engine_on(&g, 4, true);
        let mut blocked = BspEngine::new(
            MaxId,
            &g,
            p,
            EngineConfig {
                delivery: DeliveryMode::Blocked,
                ..EngineConfig::default()
            },
        )
        .expect("engine");
        flat.run().expect("run");
        blocked.run().expect("run");
        assert_eq!(flat.values(), blocked.values());
    }

    #[test]
    fn auto_delivery_threshold_is_cache_aware() {
        assert_eq!(parse_cache_size("32768K"), Some(32768 << 10));
        assert_eq!(parse_cache_size("260M"), Some(260 << 20));
        assert_eq!(parse_cache_size("2G"), Some(2usize << 30));
        assert_eq!(parse_cache_size("1024"), Some(1024));
        assert_eq!(parse_cache_size("junk"), None);
        assert!(llc_bytes() >= 1 << 20, "sane LLC estimate");
        // One block never blocks; an inbox past the LLC estimate must.
        assert!(!auto_blocks(DELIVERY_BLOCK_SLOTS));
        let past_llc = llc_bytes() / APPROX_CELL_BYTES + DELIVERY_BLOCK_SLOTS + 1;
        assert!(auto_blocks(past_llc));
    }

    #[test]
    fn hub_sort_preserves_results() {
        let g = generators::rmat(10, 8, generators::RmatParams::SOCIAL, 7).expect("gen");
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let run = |hub_sort: bool| {
            let mut e = BspEngine::new(
                MaxId,
                &g,
                p.clone(),
                EngineConfig {
                    hub_sort,
                    ..EngineConfig::default()
                },
            )
            .expect("engine");
            let report = e.run().expect("run");
            (e.into_values(), report.total_messages)
        };
        let (plain, plain_msgs) = run(false);
        let (sorted, sorted_msgs) = run(true);
        // Values come back in global vertex order either way; an integer
        // max-program is insensitive to the changed compute order.
        assert_eq!(plain, sorted);
        assert_eq!(plain_msgs, sorted_msgs);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = generators::erdos_renyi(300, 900, 5).expect("gen");
        let mut seq = engine_on(&g, 4, false);
        let mut par = engine_on(&g, 4, true);
        seq.run().expect("run");
        par.run().expect("run");
        assert_eq!(seq.values(), par.values());
    }

    #[test]
    fn combiner_reduces_messages() {
        // A star: all leaves message the center in superstep 0.
        let mut b = hourglass_graph::GraphBuilder::undirected(64);
        for v in 1..64 {
            b.add_edge(0, v);
        }
        let g = b.build().expect("build");
        let p = HashPartitioner.partition(&g, 1).expect("partition");
        let mut e = BspEngine::new(MaxId, &g, p, EngineConfig::default()).expect("engine");
        e.run().expect("run");
        // With a single worker and a max-combiner, the center's inbox never
        // held more than one message; it ends with the max leaf id.
        assert_eq!(e.values()[0], 63);
    }

    #[test]
    fn remote_messages_counted() {
        let g = ring(8);
        let mut e = engine_on(&g, 4, false);
        let report = e.run().expect("run");
        // Hash partitioning of a ring: most edges cross workers.
        assert!(report.remote_messages > 0);
        assert!(report.remote_messages <= report.total_messages);
    }

    #[test]
    fn worker_timings_recorded() {
        let g = ring(64);
        let mut e = engine_on(&g, 4, false);
        let report = e.run().expect("run");
        for s in report.metrics.steps() {
            assert!(s.max_worker_seconds >= 0.0);
            assert!(s.total_worker_seconds >= s.max_worker_seconds);
            assert!(s.delivery_seconds >= 0.0);
            assert!(s.barrier_wait_seconds >= 0.0);
            // The wait is bounded by aggregate skew: (w − 1) · max.
            assert!(s.barrier_wait_seconds <= 4.0 * s.max_worker_seconds);
        }
        assert!(report.metrics.critical_path_seconds() <= report.wall_seconds);
    }

    #[test]
    fn traced_run_produces_phase_spans() {
        let g = generators::erdos_renyi(300, 900, 5).expect("gen");
        let session = hourglass_obs::TraceSession::start();
        let mut e = engine_on(&g, 4, true);
        let report = e.run().expect("run");
        let trace = session.finish();
        assert!(trace
            .spans
            .iter()
            .any(|s| s.name == "superstep" && s.track == hourglass_obs::TRACK_MAIN));
        // Per-worker compute spans carry the fork-join task's track.
        for w in 0..4u32 {
            assert!(
                trace
                    .spans
                    .iter()
                    .any(|s| s.name == "compute" && s.track == w),
                "missing compute span for worker {w}"
            );
        }
        assert!(trace.spans.iter().any(|s| s.name == "deliver"));
        assert!(trace.spans.iter().any(|s| s.name == "transpose"));
        // Compute span time is consistent with the recorded metric.
        let compute_total = trace.total_seconds("compute");
        let metric_total = report.metrics.total_worker_seconds();
        assert!(
            (compute_total - metric_total).abs() <= 0.5 * metric_total.max(1e-3),
            "span total {compute_total} vs metric {metric_total}"
        );
        // Tracing must not leak into the next session.
        let empty = hourglass_obs::TraceSession::start().finish();
        assert!(empty.spans.is_empty());
    }

    #[test]
    fn traced_results_match_untraced() {
        let g = generators::erdos_renyi(200, 600, 7).expect("gen");
        let mut plain = engine_on(&g, 4, true);
        plain.run().expect("run");
        let session = hourglass_obs::TraceSession::start();
        let mut traced = engine_on(&g, 4, true);
        traced.run().expect("run");
        drop(session.finish());
        assert_eq!(plain.values(), traced.values());
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let g = generators::erdos_renyi(100, 300, 9).expect("gen");
        let p = HashPartitioner.partition(&g, 2).expect("partition");
        // Run one superstep, checkpoint, run to completion.
        let mut a = BspEngine::new(MaxId, &g, p.clone(), EngineConfig::default()).expect("engine");
        a.step().expect("step");
        let ckpt = a.checkpoint_state();
        let json = serde_json::to_vec(&ckpt).expect("serialize");
        a.run().expect("run");

        // Restore into a *different* worker count (fast-reload scenario).
        let p8 = HashPartitioner.partition(&g, 8).expect("partition");
        let mut b = BspEngine::new(MaxId, &g, p8, EngineConfig::default()).expect("engine");
        let restored: EngineCheckpoint<u32, u32> =
            serde_json::from_slice(&json).expect("deserialize");
        b.restore_state(restored).expect("restore");
        assert_eq!(b.superstep(), 1);
        b.run().expect("run");
        assert_eq!(a.values(), b.values(), "recovery must not change results");
    }

    #[test]
    fn adopt_state_matches_checkpoint_restore() {
        let g = generators::erdos_renyi(100, 300, 9).expect("gen");
        let p2 = HashPartitioner.partition(&g, 2).expect("partition");
        let mut a = BspEngine::new(MaxId, &g, p2.clone(), EngineConfig::default()).expect("engine");
        a.step().expect("step");

        for k in [1u32, 2, 8] {
            let pk = HashPartitioner.partition(&g, k).expect("partition");
            // Path 1: durable checkpoint + restore.
            let mut via_ckpt =
                BspEngine::new(MaxId, &g, pk.clone(), EngineConfig::default()).expect("engine");
            via_ckpt
                .restore_state(a.checkpoint_state())
                .expect("restore");
            // Path 2: direct adoption (the delta-migration carry-through).
            let mut via_adopt =
                BspEngine::new(MaxId, &g, pk, EngineConfig::default()).expect("engine");
            via_adopt.adopt_state_from(&a).expect("adopt");

            assert_eq!(via_adopt.superstep(), via_ckpt.superstep());
            assert_eq!(via_adopt.values(), via_ckpt.values(), "k={k}");
            via_ckpt.run().expect("run");
            via_adopt.run().expect("run");
            assert_eq!(via_adopt.values(), via_ckpt.values(), "k={k} after run");
        }
    }

    #[test]
    fn adopt_state_rejects_mismatched_graph() {
        let g1 = ring(8);
        let g2 = ring(9);
        let p1 = HashPartitioner.partition(&g1, 2).expect("partition");
        let p2 = HashPartitioner.partition(&g2, 2).expect("partition");
        let a = BspEngine::new(MaxId, &g1, p1, EngineConfig::default()).expect("engine");
        let mut b = BspEngine::new(MaxId, &g2, p2, EngineConfig::default()).expect("engine");
        assert!(b.adopt_state_from(&a).is_err());
    }

    #[test]
    fn restore_truncates_stale_metrics() {
        let g = generators::erdos_renyi(100, 300, 9).expect("gen");
        let p = HashPartitioner.partition(&g, 2).expect("partition");
        let mut e = BspEngine::new(MaxId, &g, p, EngineConfig::default()).expect("engine");
        e.step().expect("step");
        let ckpt = e.checkpoint_state();
        let full = e.run().expect("run");

        // Rewind the same engine and resume: the report must match a
        // straight run, not double-count the re-executed supersteps.
        e.restore_state(ckpt).expect("restore");
        assert_eq!(
            e.metrics().steps().len(),
            1,
            "metrics rewound to superstep 1"
        );
        let resumed = e.run().expect("run");
        assert_eq!(resumed.supersteps, full.supersteps);
        assert_eq!(resumed.total_messages, full.total_messages);
        assert_eq!(resumed.metrics.steps().len(), full.metrics.steps().len());
    }

    #[test]
    fn report_converged_is_computed() {
        let g = ring(8);
        let mut e = engine_on(&g, 2, false);
        let report = e.run().expect("run");
        assert!(report.converged);
        assert!(e.is_done());
        // Running an already-converged engine reports convergence without
        // executing more supersteps.
        let again = e.run().expect("run");
        assert!(again.converged);
        assert_eq!(again.supersteps, report.supersteps);
    }

    #[test]
    fn restore_rejects_mismatched_graph() {
        let g1 = ring(8);
        let g2 = ring(9);
        let p1 = HashPartitioner.partition(&g1, 2).expect("partition");
        let p2 = HashPartitioner.partition(&g2, 2).expect("partition");
        let a = BspEngine::new(MaxId, &g1, p1, EngineConfig::default()).expect("engine");
        let ckpt = a.checkpoint_state();
        let mut b = BspEngine::new(MaxId, &g2, p2, EngineConfig::default()).expect("engine");
        assert!(b.restore_state(ckpt).is_err());
    }

    #[test]
    fn engine_rejects_mismatched_partitioning() {
        let g = ring(8);
        let p = HashPartitioner.partition(&ring(4), 2).expect("partition");
        assert!(BspEngine::new(MaxId, &g, p, EngineConfig::default()).is_err());
    }

    #[test]
    fn superstep_cap_errors() {
        /// Never halts.
        struct Forever;
        impl VertexProgram for Forever {
            type Value = u8;
            type Message = u8;
            fn init(&self, _: VertexId, _: &Graph) -> u8 {
                0
            }
            fn compute(&self, ctx: &mut ComputeContext<'_, u8, u8>, _m: &[u8]) {
                ctx.send_to_neighbors(0);
            }
        }
        let g = ring(4);
        let p = HashPartitioner.partition(&g, 1).expect("partition");
        let mut e = BspEngine::new(
            Forever,
            &g,
            p,
            EngineConfig {
                max_supersteps: 5,
                parallel: false,
                ..EngineConfig::default()
            },
        )
        .expect("engine");
        assert!(matches!(
            e.run(),
            Err(EngineError::DidNotConverge { max_supersteps: 5 })
        ));
    }
}
