//! The BSP master: superstep orchestration, message delivery, halting.

use crate::metrics::{RunMetrics, SuperstepMetrics};
use crate::program::{Aggregates, ComputeContext, VertexProgram};
use crate::{EngineError, Result};
use hourglass_graph::{Graph, VertexId};
use hourglass_partition::Partitioning;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Hard cap on supersteps (a convergence backstop).
    pub max_supersteps: usize,
    /// Execute workers as OS threads (one per partition) instead of
    /// sequentially. Results are identical; only wall time differs.
    pub parallel: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_supersteps: 10_000,
            parallel: true,
        }
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Whether every vertex halted with no pending messages.
    pub converged: bool,
    /// Total messages delivered.
    pub total_messages: u64,
    /// Messages whose source and target lived on different workers.
    pub remote_messages: u64,
    /// Wall-clock seconds of the compute phase.
    pub wall_seconds: f64,
    /// Per-superstep detail.
    pub metrics: RunMetrics,
}

/// Serializable engine state written by [`BspEngine::checkpoint_state`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint<V, M> {
    /// Superstep the engine will execute next.
    pub superstep: usize,
    /// Per-vertex values, in global vertex order.
    pub values: Vec<V>,
    /// Per-vertex halt flags.
    pub halted: Vec<bool>,
    /// Per-vertex inboxes for the next superstep.
    pub inbox: Vec<Vec<M>>,
    /// Aggregates produced by the last executed superstep.
    pub prev_aggregates: Aggregates,
}

/// A Pregel-style synchronous engine over a shared immutable graph.
pub struct BspEngine<'g, P: VertexProgram> {
    program: P,
    graph: &'g Graph,
    partitioning: Partitioning,
    config: EngineConfig,
    values: Vec<P::Value>,
    halted: Vec<bool>,
    inbox: Vec<Vec<P::Message>>,
    superstep: usize,
    prev_aggregates: Aggregates,
    metrics: RunMetrics,
}

impl<'g, P: VertexProgram> BspEngine<'g, P> {
    /// Creates an engine; vertex values are initialized via
    /// [`VertexProgram::init`] and every vertex starts active.
    pub fn new(
        program: P,
        graph: &'g Graph,
        partitioning: Partitioning,
        config: EngineConfig,
    ) -> Result<Self> {
        if partitioning.num_vertices() != graph.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "partitioning covers {} vertices, graph has {}",
                partitioning.num_vertices(),
                graph.num_vertices()
            )));
        }
        let n = graph.num_vertices();
        let values = (0..n as u32).map(|v| program.init(v, graph)).collect();
        Ok(BspEngine {
            program,
            graph,
            partitioning,
            config,
            values,
            halted: vec![false; n],
            inbox: (0..n).map(|_| Vec::new()).collect(),
            superstep: 0,
            prev_aggregates: Aggregates::new(),
            metrics: RunMetrics::default(),
        })
    }

    /// The superstep the engine will execute next.
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Read access to per-vertex values (global vertex order).
    pub fn values(&self) -> &[P::Value] {
        &self.values
    }

    /// Consumes the engine, returning the per-vertex values.
    pub fn into_values(self) -> Vec<P::Value> {
        self.values
    }

    /// Aggregates produced by the most recent superstep.
    pub fn aggregates(&self) -> &Aggregates {
        &self.prev_aggregates
    }

    /// Whether every vertex has halted and no messages are pending.
    pub fn is_done(&self) -> bool {
        self.halted.iter().all(|&h| h) && self.inbox.iter().all(|m| m.is_empty())
    }

    /// Executes one superstep; returns `true` when the computation is done.
    pub fn step(&mut self) -> Result<bool> {
        if self.is_done() {
            return Ok(true);
        }
        let n = self.graph.num_vertices();
        let num_workers = self.partitioning.num_parts() as usize;
        // Take the inboxes; vertices read them this superstep.
        let inbox = std::mem::replace(&mut self.inbox, (0..n).map(|_| Vec::new()).collect());

        // Per-worker vertex lists.
        let members = self.partitioning.members();

        // Extract per-worker state slices (each worker owns a disjoint
        // vertex set; copying in/out keeps the sharing story trivially
        // safe on both the threaded and sequential paths).
        let mut per_worker_values: Vec<Vec<P::Value>> = members
            .iter()
            .map(|ws| ws.iter().map(|&v| self.values[v as usize].clone()).collect())
            .collect();
        let mut per_worker_halted: Vec<Vec<bool>> = members
            .iter()
            .map(|ws| ws.iter().map(|&v| self.halted[v as usize]).collect())
            .collect();
        let program = &self.program;
        let graph = self.graph;
        let prev = &self.prev_aggregates;
        let superstep = self.superstep;
        let inbox_ref = &inbox;
        type WorkerOut<M> = (Vec<(VertexId, M)>, Aggregates, u64);
        let outs: Vec<WorkerOut<P::Message>> = if self.config.parallel && num_workers > 1 {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = members
                    .iter()
                    .zip(per_worker_values.iter_mut())
                    .zip(per_worker_halted.iter_mut())
                    .map(|((ws, vals), hs)| {
                        scope.spawn(move |_| {
                            run_worker_local::<P>(
                                ws, vals, hs, program, graph, prev, superstep, inbox_ref,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("scope panicked")
        } else {
            members
                .iter()
                .zip(per_worker_values.iter_mut())
                .zip(per_worker_halted.iter_mut())
                .map(|((ws, vals), hs)| {
                    run_worker_local::<P>(ws, vals, hs, program, graph, prev, superstep, inbox_ref)
                })
                .collect()
        };
        // Write back per-worker state.
        for (ws, vals) in members.iter().zip(per_worker_values) {
            for (&v, val) in ws.iter().zip(vals) {
                self.values[v as usize] = val;
            }
        }
        for (ws, hs) in members.iter().zip(per_worker_halted) {
            for (&v, h) in ws.iter().zip(hs) {
                self.halted[v as usize] = h;
            }
        }

        // Deliver messages (with combining) and reduce aggregates.
        let mut next_aggregates = Aggregates::new();
        let mut total_messages = 0u64;
        let mut remote_messages = 0u64;
        let mut active = 0u64;
        for (worker, (outbox, aggregates, worker_active)) in outs.into_iter().enumerate() {
            active += worker_active;
            next_aggregates.merge(&aggregates);
            for (target, msg) in outbox {
                total_messages += 1;
                if self.partitioning.part_of(target) as usize != worker {
                    remote_messages += 1;
                }
                let slot = &mut self.inbox[target as usize];
                if let Some(last) = slot.last_mut() {
                    if let Some(combined) = self.program.combine(last, &msg) {
                        *last = combined;
                        continue;
                    }
                }
                slot.push(msg);
            }
        }
        self.metrics.push(SuperstepMetrics {
            superstep: self.superstep,
            active_vertices: active,
            messages: total_messages,
            remote_messages,
        });
        self.prev_aggregates = next_aggregates;
        self.superstep += 1;
        Ok(self.is_done())
    }

    /// Runs to completion (or the superstep cap).
    pub fn run(&mut self) -> Result<ExecutionReport> {
        let t0 = Instant::now();
        let mut converged = false;
        while self.superstep < self.config.max_supersteps {
            if self.step()? {
                converged = true;
                break;
            }
        }
        if !converged && !self.is_done() {
            return Err(EngineError::DidNotConverge {
                max_supersteps: self.config.max_supersteps,
            });
        }
        Ok(ExecutionReport {
            supersteps: self.superstep,
            converged: true,
            total_messages: self.metrics.total_messages(),
            remote_messages: self.metrics.total_remote_messages(),
            wall_seconds: t0.elapsed().as_secs_f64(),
            metrics: self.metrics.clone(),
        })
    }

    /// Captures the engine state for checkpointing.
    pub fn checkpoint_state(&self) -> EngineCheckpoint<P::Value, P::Message> {
        EngineCheckpoint {
            superstep: self.superstep,
            values: self.values.clone(),
            halted: self.halted.clone(),
            inbox: self.inbox.clone(),
            prev_aggregates: self.prev_aggregates.clone(),
        }
    }

    /// Restores engine state from a checkpoint (graph and partitioning must
    /// match the original run; the partitioning may differ in worker count
    /// — that is exactly the fast-reload scenario).
    pub fn restore_state(&mut self, ckpt: EngineCheckpoint<P::Value, P::Message>) -> Result<()> {
        let n = self.graph.num_vertices();
        if ckpt.values.len() != n || ckpt.halted.len() != n || ckpt.inbox.len() != n {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint covers {} vertices, graph has {n}",
                ckpt.values.len()
            )));
        }
        self.superstep = ckpt.superstep;
        self.values = ckpt.values;
        self.halted = ckpt.halted;
        self.inbox = ckpt.inbox;
        self.prev_aggregates = ckpt.prev_aggregates;
        Ok(())
    }
}

/// The worker kernel: computes one superstep for the vertices of a single
/// worker, operating on worker-local slices (`vals[slot]`/`halted[slot]`
/// aligned with `worker_vertices`).
#[allow(clippy::too_many_arguments)]
fn run_worker_local<P: VertexProgram>(
    worker_vertices: &[VertexId],
    vals: &mut [P::Value],
    halted: &mut [bool],
    program: &P,
    graph: &Graph,
    prev_aggregates: &Aggregates,
    superstep: usize,
    inbox: &[Vec<P::Message>],
) -> (Vec<(VertexId, P::Message)>, Aggregates, u64) {
    let mut outbox = Vec::new();
    let mut aggregates = Aggregates::new();
    let mut active = 0u64;
    for (slot, &v) in worker_vertices.iter().enumerate() {
        let vi = v as usize;
        let has_messages = !inbox[vi].is_empty();
        if halted[slot] && !has_messages {
            continue;
        }
        halted[slot] = false;
        active += 1;
        let mut ctx = ComputeContext {
            vertex: v,
            superstep,
            graph,
            prev_aggregates,
            value: &mut vals[slot],
            halted: &mut halted[slot],
            outbox: &mut outbox,
            next_aggregates: &mut aggregates,
        };
        program.compute(&mut ctx, &inbox[vi]);
    }
    (outbox, aggregates, active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hourglass_graph::generators;
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    /// Toy program: every vertex floods its id once, then records the max
    /// id it heard and halts.
    struct MaxId;

    impl VertexProgram for MaxId {
        type Value = u32;
        type Message = u32;

        fn init(&self, v: VertexId, _g: &Graph) -> u32 {
            v
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
            if ctx.superstep == 0 {
                let me = *ctx.value_ref();
                ctx.send_to_neighbors(me);
            } else {
                let best = messages.iter().copied().max().unwrap_or(0);
                if best > *ctx.value_ref() {
                    *ctx.value() = best;
                }
            }
            ctx.vote_to_halt();
        }

        fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
            Some(*a.max(b))
        }
    }

    fn ring(n: usize) -> Graph {
        let mut b = hourglass_graph::GraphBuilder::undirected(n);
        for i in 0..n as u32 {
            b.add_edge(i, (i + 1) % n as u32);
        }
        b.build().expect("build")
    }

    fn engine_on<'g>(g: &'g Graph, k: u32, parallel: bool) -> BspEngine<'g, MaxId> {
        let p = HashPartitioner.partition(g, k).expect("partition");
        BspEngine::new(
            MaxId,
            g,
            p,
            EngineConfig {
                parallel,
                ..EngineConfig::default()
            },
        )
        .expect("engine")
    }

    #[test]
    fn max_id_one_hop() {
        let g = ring(8);
        let mut e = engine_on(&g, 2, false);
        let report = e.run().expect("run");
        assert!(report.converged);
        assert_eq!(report.supersteps, 2);
        // Vertex 0 hears from 1 and 7 → 7.
        assert_eq!(e.values()[0], 7);
        assert_eq!(e.values()[3], 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = generators::erdos_renyi(300, 900, 5).expect("gen");
        let mut seq = engine_on(&g, 4, false);
        let mut par = engine_on(&g, 4, true);
        seq.run().expect("run");
        par.run().expect("run");
        assert_eq!(seq.values(), par.values());
    }

    #[test]
    fn combiner_reduces_messages() {
        // A star: all leaves message the center in superstep 0.
        let mut b = hourglass_graph::GraphBuilder::undirected(64);
        for v in 1..64 {
            b.add_edge(0, v);
        }
        let g = b.build().expect("build");
        let p = HashPartitioner.partition(&g, 1).expect("partition");
        let mut e = BspEngine::new(MaxId, &g, p, EngineConfig::default()).expect("engine");
        e.run().expect("run");
        // With a single worker and a max-combiner, the center's inbox never
        // held more than one message; it ends with the max leaf id.
        assert_eq!(e.values()[0], 63);
    }

    #[test]
    fn remote_messages_counted() {
        let g = ring(8);
        let mut e = engine_on(&g, 4, false);
        let report = e.run().expect("run");
        // Hash partitioning of a ring: most edges cross workers.
        assert!(report.remote_messages > 0);
        assert!(report.remote_messages <= report.total_messages);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let g = generators::erdos_renyi(100, 300, 9).expect("gen");
        let p = HashPartitioner.partition(&g, 2).expect("partition");
        // Run one superstep, checkpoint, run to completion.
        let mut a = BspEngine::new(MaxId, &g, p.clone(), EngineConfig::default()).expect("engine");
        a.step().expect("step");
        let ckpt = a.checkpoint_state();
        let json = serde_json::to_vec(&ckpt).expect("serialize");
        a.run().expect("run");

        // Restore into a *different* worker count (fast-reload scenario).
        let p8 = HashPartitioner.partition(&g, 8).expect("partition");
        let mut b = BspEngine::new(MaxId, &g, p8, EngineConfig::default()).expect("engine");
        let restored: EngineCheckpoint<u32, u32> =
            serde_json::from_slice(&json).expect("deserialize");
        b.restore_state(restored).expect("restore");
        assert_eq!(b.superstep(), 1);
        b.run().expect("run");
        assert_eq!(a.values(), b.values(), "recovery must not change results");
    }

    #[test]
    fn restore_rejects_mismatched_graph() {
        let g1 = ring(8);
        let g2 = ring(9);
        let p1 = HashPartitioner.partition(&g1, 2).expect("partition");
        let p2 = HashPartitioner.partition(&g2, 2).expect("partition");
        let a = BspEngine::new(MaxId, &g1, p1, EngineConfig::default()).expect("engine");
        let ckpt = a.checkpoint_state();
        let mut b = BspEngine::new(MaxId, &g2, p2, EngineConfig::default()).expect("engine");
        assert!(b.restore_state(ckpt).is_err());
    }

    #[test]
    fn engine_rejects_mismatched_partitioning() {
        let g = ring(8);
        let p = HashPartitioner
            .partition(&ring(4), 2)
            .expect("partition");
        assert!(BspEngine::new(MaxId, &g, p, EngineConfig::default()).is_err());
    }

    #[test]
    fn superstep_cap_errors() {
        /// Never halts.
        struct Forever;
        impl VertexProgram for Forever {
            type Value = u8;
            type Message = u8;
            fn init(&self, _: VertexId, _: &Graph) -> u8 {
                0
            }
            fn compute(&self, ctx: &mut ComputeContext<'_, u8, u8>, _m: &[u8]) {
                ctx.send_to_neighbors(0);
            }
        }
        let g = ring(4);
        let p = HashPartitioner.partition(&g, 1).expect("partition");
        let mut e = BspEngine::new(
            Forever,
            &g,
            p,
            EngineConfig {
                max_supersteps: 5,
                parallel: false,
            },
        )
        .expect("engine");
        assert!(matches!(
            e.run(),
            Err(EngineError::DidNotConverge { max_supersteps: 5 })
        ));
    }
}
