//! The vertex-program abstraction ("think like a vertex", Pregel [27]).

use hourglass_graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Global aggregates exchanged between supersteps.
///
/// Two merge semantics are provided, keyed by name: sums and maxima. The
/// values written during superstep `s` are visible to every vertex during
/// superstep `s + 1` (and to the master between supersteps), matching
/// Pregel aggregator semantics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Aggregates {
    sums: HashMap<String, f64>,
    maxs: HashMap<String, f64>,
}

impl Aggregates {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` into the sum-aggregate `name`.
    pub fn add_sum(&mut self, name: &str, v: f64) {
        *self.sums.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Merges `v` into the max-aggregate `name`.
    pub fn add_max(&mut self, name: &str, v: f64) {
        let e = self
            .maxs
            .entry(name.to_string())
            .or_insert(f64::NEG_INFINITY);
        if v > *e {
            *e = v;
        }
    }

    /// Reads the sum-aggregate `name` (0 when never written).
    pub fn sum(&self, name: &str) -> f64 {
        self.sums.get(name).copied().unwrap_or(0.0)
    }

    /// Reads the max-aggregate `name` (−∞ when never written).
    pub fn max(&self, name: &str) -> f64 {
        self.maxs.get(name).copied().unwrap_or(f64::NEG_INFINITY)
    }

    /// Merges another set into this one (worker → master reduction).
    pub fn merge(&mut self, other: &Aggregates) {
        for (k, v) in &other.sums {
            *self.sums.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.maxs {
            let e = self.maxs.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if *v > *e {
                *e = *v;
            }
        }
    }
}

/// Packed routing word for one vertex: destination worker in the high 32
/// bits, slot within that worker's slabs in the low 32. One cache line
/// read at send time resolves both, and delivery needs no lookup at all.
pub(crate) fn pack_route(worker: u32, slot: u32) -> u64 {
    ((worker as u64) << 32) | slot as u64
}

/// Builds the packed vertex → (worker, slot) routing table from per-worker
/// member lists.
pub(crate) fn build_routes(num_vertices: usize, members: &[Vec<VertexId>]) -> Vec<u64> {
    let mut route = vec![0u64; num_vertices];
    for (worker, ws) in members.iter().enumerate() {
        for (slot, &v) in ws.iter().enumerate() {
            route[v as usize] = pack_route(worker as u32, slot as u32);
        }
    }
    route
}

/// Everything a vertex sees during `compute`: its state, the graph, the
/// previous superstep's aggregates, and sinks for messages and halting.
///
/// Messages are routed as they are sent: the context holds one reusable
/// bucket per destination worker, resolves the target's (worker, slot)
/// with a single packed-table read, and folds the message into the
/// bucket's tail when the program's combiner applies (sender-side
/// combining). Bucket entries are addressed by destination *slot*, so
/// delivery indexes the destination inbox slab directly.
pub struct ComputeContext<'a, V, M> {
    /// The vertex being computed.
    pub vertex: VertexId,
    /// Current superstep number (0-based).
    pub superstep: usize,
    /// The shared immutable graph.
    pub graph: &'a Graph,
    /// Aggregates written during the previous superstep.
    pub prev_aggregates: &'a Aggregates,
    pub(crate) value: &'a mut V,
    pub(crate) halted: &'a mut bool,
    /// One outgoing bucket per destination worker; entries are
    /// `(destination slot, message)`.
    pub(crate) buckets: &'a mut [Vec<(u32, M)>],
    /// Packed vertex → (worker, slot) routing table.
    pub(crate) route: &'a [u64],
    /// The worker computing this vertex.
    pub(crate) self_worker: u32,
    /// The program's combiner, type-erased so the context stays generic
    /// over `(V, M)` only.
    pub(crate) combiner: &'a dyn Fn(&M, &M) -> Option<M>,
    /// Logical messages emitted (counted before combining).
    pub(crate) sent: &'a mut u64,
    /// Logical messages addressed to another worker.
    pub(crate) remote: &'a mut u64,
    pub(crate) next_aggregates: &'a mut Aggregates,
}

impl<'a, V, M> ComputeContext<'a, V, M> {
    /// The vertex's mutable value.
    pub fn value(&mut self) -> &mut V {
        self.value
    }

    /// Read-only access to the vertex's value.
    pub fn value_ref(&self) -> &V {
        self.value
    }

    /// The vertex's out-neighbors.
    pub fn neighbors(&self) -> &'a [VertexId] {
        self.graph.neighbors(self.vertex)
    }

    /// Out-degree.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.vertex)
    }

    /// Sends `msg` to `target`, to be delivered next superstep.
    pub fn send(&mut self, target: VertexId, msg: M) {
        *self.sent += 1;
        let route = self.route[target as usize];
        let dest = (route >> 32) as u32;
        let slot = route as u32;
        if dest != self.self_worker {
            *self.remote += 1;
        }
        push_combined(&mut self.buckets[dest as usize], self.combiner, slot, msg);
    }

    /// Sends `msg` to every neighbor.
    ///
    /// The engine's hottest send path: one tight pass over the adjacency
    /// list with the logical-send and remote counters hoisted out of the
    /// loop, combining into the bucket tails exactly as [`Self::send`]
    /// would per message.
    pub fn send_to_neighbors(&mut self, msg: M)
    where
        M: Clone,
    {
        let neighbors = self.neighbors();
        let Some((&last_n, init)) = neighbors.split_last() else {
            return;
        };
        *self.sent += neighbors.len() as u64;
        let mut remote = 0u64;
        for &n in init {
            let route = self.route[n as usize];
            let (dest, slot) = ((route >> 32) as u32, route as u32);
            remote += u64::from(dest != self.self_worker);
            push_combined(
                &mut self.buckets[dest as usize],
                self.combiner,
                slot,
                msg.clone(),
            );
        }
        let route = self.route[last_n as usize];
        let (dest, slot) = ((route >> 32) as u32, route as u32);
        remote += u64::from(dest != self.self_worker);
        push_combined(&mut self.buckets[dest as usize], self.combiner, slot, msg);
        *self.remote += remote;
    }

    /// Votes to halt; the vertex is reactivated by incoming messages.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }

    /// Contributes to a sum aggregate visible next superstep.
    pub fn aggregate_sum(&mut self, name: &str, v: f64) {
        self.next_aggregates.add_sum(name, v);
    }

    /// Contributes to a max aggregate visible next superstep.
    pub fn aggregate_max(&mut self, name: &str, v: f64) {
        self.next_aggregates.add_max(name, v);
    }
}

/// Appends `(slot, msg)` to `bucket`, folding into the tail entry when it
/// addresses the same slot and the combiner applies (sender-side
/// combining).
#[inline]
fn push_combined<M>(
    bucket: &mut Vec<(u32, M)>,
    combiner: &dyn Fn(&M, &M) -> Option<M>,
    slot: u32,
    msg: M,
) {
    if let Some((tail, last)) = bucket.last_mut() {
        if *tail == slot {
            if let Some(combined) = combiner(last, &msg) {
                *last = combined;
                return;
            }
        }
    }
    bucket.push((slot, msg));
}

/// A vertex-centric program.
///
/// `Value` is the per-vertex state; `Message` is what vertices exchange.
/// Both must be serializable so the engine can checkpoint mid-run.
pub trait VertexProgram: Send + Sync {
    /// Per-vertex state.
    type Value: Clone + Send + Sync + serde::Serialize + serde::de::DeserializeOwned;
    /// Inter-vertex message.
    type Message: Clone + Send + Sync + serde::Serialize + serde::de::DeserializeOwned;

    /// Initial value of `vertex` (superstep 0 sees these).
    fn init(&self, vertex: VertexId, graph: &Graph) -> Self::Value;

    /// The per-superstep vertex kernel.
    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, Self::Value, Self::Message>,
        messages: &[Self::Message],
    );

    /// Optional message combiner: when provided, messages addressed to the
    /// same vertex are folded eagerly, cutting memory and "network" volume
    /// (Pregel combiners).
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Human-readable program name.
    fn name(&self) -> &'static str {
        "vertex-program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_and_max() {
        let mut a = Aggregates::new();
        a.add_sum("x", 1.0);
        a.add_sum("x", 2.0);
        a.add_max("m", 5.0);
        a.add_max("m", 3.0);
        assert_eq!(a.sum("x"), 3.0);
        assert_eq!(a.max("m"), 5.0);
        assert_eq!(a.sum("missing"), 0.0);
        assert_eq!(a.max("missing"), f64::NEG_INFINITY);
    }

    #[test]
    fn aggregates_merge() {
        let mut a = Aggregates::new();
        a.add_sum("x", 1.0);
        a.add_max("m", 1.0);
        let mut b = Aggregates::new();
        b.add_sum("x", 2.0);
        b.add_max("m", 9.0);
        a.merge(&b);
        assert_eq!(a.sum("x"), 3.0);
        assert_eq!(a.max("m"), 9.0);
    }

    #[test]
    fn routes_pack_and_unpack() {
        // Workers 0 and 1 own the even and odd vertices respectively.
        let members = vec![vec![0u32, 2], vec![1, 3]];
        let route = build_routes(4, &members);
        assert_eq!(route[0], pack_route(0, 0));
        assert_eq!(route[2], pack_route(0, 1));
        assert_eq!(route[1], pack_route(1, 0));
        assert_eq!(route[3], pack_route(1, 1));
    }

    #[test]
    fn send_routes_counts_and_combines() {
        let mut graph_builder = hourglass_graph::GraphBuilder::undirected(4);
        graph_builder.add_edge(0, 1);
        let graph = graph_builder.build().expect("build");
        // Worker 0 owns {0, 2} (slots 0, 1), worker 1 owns {1, 3}.
        let route = build_routes(4, &[vec![0, 2], vec![1, 3]]);
        let mut buckets = vec![Vec::new(), Vec::new()];
        let mut value = 0u32;
        let mut halted = false;
        let mut next_aggregates = Aggregates::new();
        let (mut sent, mut remote) = (0u64, 0u64);
        let prev = Aggregates::new();
        let combiner = |a: &u32, b: &u32| Some(*a.max(b));
        let mut ctx: ComputeContext<'_, u32, u32> = ComputeContext {
            vertex: 0,
            superstep: 0,
            graph: &graph,
            prev_aggregates: &prev,
            value: &mut value,
            halted: &mut halted,
            buckets: &mut buckets,
            route: &route,
            self_worker: 0,
            combiner: &combiner,
            sent: &mut sent,
            remote: &mut remote,
            next_aggregates: &mut next_aggregates,
        };
        ctx.send(2, 7); // local → worker 0 slot 1
        ctx.send(1, 3); // remote → worker 1 slot 0
        ctx.send(1, 9); // remote, combines with the tail
        ctx.send(3, 1); // remote, different target: no combine
        assert_eq!(sent, 4, "logical sends counted before combining");
        assert_eq!(remote, 3);
        assert_eq!(buckets[0], vec![(1, 7)]);
        assert_eq!(buckets[1], vec![(0, 9), (1, 1)]);
    }
}
