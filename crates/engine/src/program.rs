//! The vertex-program abstraction ("think like a vertex", Pregel [27]).

use hourglass_graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Global aggregates exchanged between supersteps.
///
/// Two merge semantics are provided, keyed by name: sums and maxima. The
/// values written during superstep `s` are visible to every vertex during
/// superstep `s + 1` (and to the master between supersteps), matching
/// Pregel aggregator semantics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Aggregates {
    sums: HashMap<String, f64>,
    maxs: HashMap<String, f64>,
}

impl Aggregates {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` into the sum-aggregate `name`.
    pub fn add_sum(&mut self, name: &str, v: f64) {
        *self.sums.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Merges `v` into the max-aggregate `name`.
    pub fn add_max(&mut self, name: &str, v: f64) {
        let e = self.maxs.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        if v > *e {
            *e = v;
        }
    }

    /// Reads the sum-aggregate `name` (0 when never written).
    pub fn sum(&self, name: &str) -> f64 {
        self.sums.get(name).copied().unwrap_or(0.0)
    }

    /// Reads the max-aggregate `name` (−∞ when never written).
    pub fn max(&self, name: &str) -> f64 {
        self.maxs.get(name).copied().unwrap_or(f64::NEG_INFINITY)
    }

    /// Merges another set into this one (worker → master reduction).
    pub fn merge(&mut self, other: &Aggregates) {
        for (k, v) in &other.sums {
            *self.sums.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, v) in &other.maxs {
            let e = self.maxs.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if *v > *e {
                *e = *v;
            }
        }
    }
}

/// Everything a vertex sees during `compute`: its state, the graph, the
/// previous superstep's aggregates, and sinks for messages and halting.
pub struct ComputeContext<'a, V, M> {
    /// The vertex being computed.
    pub vertex: VertexId,
    /// Current superstep number (0-based).
    pub superstep: usize,
    /// The shared immutable graph.
    pub graph: &'a Graph,
    /// Aggregates written during the previous superstep.
    pub prev_aggregates: &'a Aggregates,
    pub(crate) value: &'a mut V,
    pub(crate) halted: &'a mut bool,
    pub(crate) outbox: &'a mut Vec<(VertexId, M)>,
    pub(crate) next_aggregates: &'a mut Aggregates,
}

impl<'a, V, M> ComputeContext<'a, V, M> {
    /// The vertex's mutable value.
    pub fn value(&mut self) -> &mut V {
        self.value
    }

    /// Read-only access to the vertex's value.
    pub fn value_ref(&self) -> &V {
        self.value
    }

    /// The vertex's out-neighbors.
    pub fn neighbors(&self) -> &'a [VertexId] {
        self.graph.neighbors(self.vertex)
    }

    /// Out-degree.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.vertex)
    }

    /// Sends `msg` to `target`, to be delivered next superstep.
    pub fn send(&mut self, target: VertexId, msg: M) {
        self.outbox.push((target, msg));
    }

    /// Sends `msg` to every neighbor.
    pub fn send_to_neighbors(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.neighbors().len() {
            let n = self.neighbors()[i];
            self.outbox.push((n, msg.clone()));
        }
    }

    /// Votes to halt; the vertex is reactivated by incoming messages.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }

    /// Contributes to a sum aggregate visible next superstep.
    pub fn aggregate_sum(&mut self, name: &str, v: f64) {
        self.next_aggregates.add_sum(name, v);
    }

    /// Contributes to a max aggregate visible next superstep.
    pub fn aggregate_max(&mut self, name: &str, v: f64) {
        self.next_aggregates.add_max(name, v);
    }
}

/// A vertex-centric program.
///
/// `Value` is the per-vertex state; `Message` is what vertices exchange.
/// Both must be serializable so the engine can checkpoint mid-run.
pub trait VertexProgram: Send + Sync {
    /// Per-vertex state.
    type Value: Clone + Send + Sync + serde::Serialize + serde::de::DeserializeOwned;
    /// Inter-vertex message.
    type Message: Clone + Send + Sync + serde::Serialize + serde::de::DeserializeOwned;

    /// Initial value of `vertex` (superstep 0 sees these).
    fn init(&self, vertex: VertexId, graph: &Graph) -> Self::Value;

    /// The per-superstep vertex kernel.
    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, Self::Value, Self::Message>,
        messages: &[Self::Message],
    );

    /// Optional message combiner: when provided, messages addressed to the
    /// same vertex are folded eagerly, cutting memory and "network" volume
    /// (Pregel combiners).
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Human-readable program name.
    fn name(&self) -> &'static str {
        "vertex-program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_and_max() {
        let mut a = Aggregates::new();
        a.add_sum("x", 1.0);
        a.add_sum("x", 2.0);
        a.add_max("m", 5.0);
        a.add_max("m", 3.0);
        assert_eq!(a.sum("x"), 3.0);
        assert_eq!(a.max("m"), 5.0);
        assert_eq!(a.sum("missing"), 0.0);
        assert_eq!(a.max("missing"), f64::NEG_INFINITY);
    }

    #[test]
    fn aggregates_merge() {
        let mut a = Aggregates::new();
        a.add_sum("x", 1.0);
        a.add_max("m", 1.0);
        let mut b = Aggregates::new();
        b.add_sum("x", 2.0);
        b.add_max("m", 9.0);
        a.merge(&b);
        assert_eq!(a.sum("x"), 3.0);
        assert_eq!(a.max("m"), 9.0);
    }
}
