//! Fork-join helpers for the engine's parallel sections.
//!
//! The implementation lives in the shared [`hourglass_exec`] crate so the
//! simulator's Monte-Carlo sweeps reuse the exact same scoped-thread
//! plumbing as superstep compute, message delivery and loader parsing;
//! this module re-exports it under the engine's historical path.

pub use hourglass_exec::{fork_join, par_map, par_map_when, pin};
