//! Shared fork-join helpers for the engine's parallel sections.
//!
//! Every parallel region in this crate (superstep compute, message
//! delivery, loader parsing) is a fork-join over disjoint per-worker
//! state. Centralizing the scoped-thread plumbing keeps the sequential
//! and threaded paths literally the same closures, which is what makes
//! "parallel matches sequential" a structural guarantee rather than a
//! test-enforced one.

/// Runs `tasks` to completion and returns their results in task order.
///
/// With `parallel` set (and more than one task) each task runs on its own
/// scoped thread; otherwise they run in order on the calling thread. A
/// panicking task propagates the panic either way.
pub fn fork_join<R, F>(parallel: bool, tasks: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    if !parallel || tasks.len() < 2 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|t| scope.spawn(move |_| t()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("scope panicked")
}

/// Maps `f` over `items` on one scoped thread per item, preserving order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let f = &f;
    fork_join(true, items.iter().map(|item| move || f(item)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_preserves_order() {
        let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
        assert_eq!(fork_join(true, tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
        let tasks: Vec<_> = (0..8).map(|i| move || i * i).collect();
        assert_eq!(fork_join(false, tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..16).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(par_map(&items, |x| x + 1), expect);
    }

    #[test]
    fn fork_join_mutates_disjoint_slices() {
        let mut data = vec![0u64; 6];
        let tasks: Vec<_> = data
            .chunks_mut(2)
            .enumerate()
            .map(|(i, chunk)| {
                move || {
                    for c in chunk.iter_mut() {
                        *c = i as u64 + 1;
                    }
                }
            })
            .collect();
        fork_join(true, tasks);
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3]);
    }
}
