//! Per-superstep execution metrics.

/// Metrics of one superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperstepMetrics {
    /// Superstep number.
    pub superstep: usize,
    /// Vertices that executed `compute`.
    pub active_vertices: u64,
    /// Messages sent.
    pub messages: u64,
    /// Messages that crossed workers.
    pub remote_messages: u64,
}

/// Metrics of a whole run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    steps: Vec<SuperstepMetrics>,
}

impl RunMetrics {
    /// Records one superstep.
    pub fn push(&mut self, m: SuperstepMetrics) {
        self.steps.push(m);
    }

    /// Per-superstep detail.
    pub fn steps(&self) -> &[SuperstepMetrics] {
        &self.steps
    }

    /// Total messages across supersteps.
    pub fn total_messages(&self) -> u64 {
        self.steps.iter().map(|s| s.messages).sum()
    }

    /// Total remote messages across supersteps.
    pub fn total_remote_messages(&self) -> u64 {
        self.steps.iter().map(|s| s.remote_messages).sum()
    }

    /// Fraction of message traffic that crossed workers (0 when no
    /// messages were sent).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            0.0
        } else {
            self.total_remote_messages() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let mut m = RunMetrics::default();
        m.push(SuperstepMetrics {
            superstep: 0,
            active_vertices: 10,
            messages: 100,
            remote_messages: 40,
        });
        m.push(SuperstepMetrics {
            superstep: 1,
            active_vertices: 5,
            messages: 50,
            remote_messages: 10,
        });
        assert_eq!(m.total_messages(), 150);
        assert_eq!(m.total_remote_messages(), 50);
        assert!((m.remote_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.steps().len(), 2);
    }

    #[test]
    fn empty_run_fraction_zero() {
        assert_eq!(RunMetrics::default().remote_fraction(), 0.0);
    }
}
