//! Per-superstep execution metrics.

use hourglass_metrics as hm;
use serde::{Deserialize, Serialize};

/// Supersteps executed (both the in-process engine and the cluster
/// harness record one increment per superstep).
pub static M_SUPERSTEPS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_engine_supersteps_total",
    help: "Supersteps executed.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Messages delivered between vertices (after combining).
pub static M_MESSAGES: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_engine_messages_total",
    help: "Messages delivered between vertices.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Messages that crossed worker boundaries.
pub static M_REMOTE_MESSAGES: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_engine_remote_messages_total",
    help: "Messages that crossed worker boundaries.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Vertices that executed `compute` in the most recent superstep.
pub static M_ACTIVE_VERTICES: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_engine_active_vertices",
    help: "Vertices active in the most recent superstep.",
    kind: hm::MetricKind::Gauge,
    buckets: &[],
    nondeterministic: false,
};
/// Aggregate worker compute seconds (wall clock — nondeterministic).
pub static M_COMPUTE_SECONDS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_engine_compute_seconds_total",
    help: "Aggregate worker compute seconds (wall clock).",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: true,
};
/// Message-delivery seconds (wall clock — nondeterministic).
pub static M_DELIVERY_SECONDS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_engine_delivery_seconds_total",
    help: "Message delivery seconds (wall clock).",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: true,
};
/// Barrier-idle seconds lost to compute skew (wall clock).
pub static M_BARRIER_SECONDS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_engine_barrier_wait_seconds_total",
    help: "Worker seconds idle at superstep barriers (wall clock).",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: true,
};

/// Folds one superstep into the metrics registry. Logical counts go to
/// deterministic families; the wall-clock phase timings are flagged
/// nondeterministic. Called on the master thread by both engines, so the
/// fold order is the superstep order.
pub fn record_superstep(m: &SuperstepMetrics) {
    if !hm::enabled() {
        return;
    }
    hm::add(&M_SUPERSTEPS, &[], 1);
    hm::add(&M_MESSAGES, &[], m.messages);
    hm::add(&M_REMOTE_MESSAGES, &[], m.remote_messages);
    hm::set(&M_ACTIVE_VERTICES, &[], m.active_vertices as f64);
    hm::addf(&M_COMPUTE_SECONDS, &[], m.total_worker_seconds);
    hm::addf(&M_DELIVERY_SECONDS, &[], m.delivery_seconds);
    hm::addf(&M_BARRIER_SECONDS, &[], m.barrier_wait_seconds);
}

/// Metrics of one superstep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuperstepMetrics {
    /// Superstep number.
    pub superstep: usize,
    /// Vertices that executed `compute`.
    pub active_vertices: u64,
    /// Messages sent.
    pub messages: u64,
    /// Messages that crossed workers.
    pub remote_messages: u64,
    /// Compute seconds of the slowest worker (the BSP barrier waits for
    /// it, so this is the superstep's contribution to wall time).
    pub max_worker_seconds: f64,
    /// Compute seconds summed over all workers (aggregate CPU).
    pub total_worker_seconds: f64,
    /// Seconds the superstep spent delivering messages after the barrier
    /// (outbox transpose + per-worker inbox scatter in the in-process
    /// engine; the exchange phase in the cluster harness).
    pub delivery_seconds: f64,
    /// Seconds workers spent idle at the superstep barrier, summed over
    /// workers: `Σ_w (max_worker_seconds − compute_w)`. Separates compute
    /// skew from delivery cost in the `t_exec` calibration.
    pub barrier_wait_seconds: f64,
}

/// Metrics of a whole run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    steps: Vec<SuperstepMetrics>,
}

impl RunMetrics {
    /// Records one superstep.
    pub fn push(&mut self, m: SuperstepMetrics) {
        self.steps.push(m);
    }

    /// Per-superstep detail.
    pub fn steps(&self) -> &[SuperstepMetrics] {
        &self.steps
    }

    /// Total messages across supersteps.
    pub fn total_messages(&self) -> u64 {
        self.steps.iter().map(|s| s.messages).sum()
    }

    /// Total remote messages across supersteps.
    pub fn total_remote_messages(&self) -> u64 {
        self.steps.iter().map(|s| s.remote_messages).sum()
    }

    /// Fraction of message traffic that crossed workers (0 when no
    /// messages were sent).
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_messages();
        if total == 0 {
            0.0
        } else {
            self.total_remote_messages() as f64 / total as f64
        }
    }

    /// Sum over supersteps of the slowest worker's compute seconds: the
    /// compute-phase lower bound on wall time. This is the measured
    /// quantity that calibrates `t_exec` in the provisioning cost model
    /// (a full-job execution-time estimate for the running configuration).
    pub fn critical_path_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.max_worker_seconds).sum()
    }

    /// Aggregate worker CPU seconds across supersteps.
    pub fn total_worker_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.total_worker_seconds).sum()
    }

    /// Total message-delivery seconds across supersteps.
    pub fn total_delivery_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.delivery_seconds).sum()
    }

    /// Total worker barrier-idle seconds across supersteps (aggregate
    /// CPU lost to compute skew).
    pub fn total_barrier_wait_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.barrier_wait_seconds).sum()
    }

    /// Drops every superstep at or past `superstep`. Called on checkpoint
    /// restore so a resumed run does not double-count the supersteps it is
    /// about to re-execute.
    pub fn truncate_to_superstep(&mut self, superstep: usize) {
        self.steps.retain(|s| s.superstep < superstep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(superstep: usize, messages: u64, remote: u64, secs: f64) -> SuperstepMetrics {
        SuperstepMetrics {
            superstep,
            active_vertices: 10,
            messages,
            remote_messages: remote,
            max_worker_seconds: secs,
            total_worker_seconds: secs * 4.0,
            delivery_seconds: secs * 0.5,
            barrier_wait_seconds: secs * 0.25,
        }
    }

    #[test]
    fn totals() {
        let mut m = RunMetrics::default();
        m.push(step(0, 100, 40, 0.5));
        m.push(step(1, 50, 10, 0.25));
        assert_eq!(m.total_messages(), 150);
        assert_eq!(m.total_remote_messages(), 50);
        assert!((m.remote_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.steps().len(), 2);
    }

    #[test]
    fn empty_run_fraction_zero() {
        assert_eq!(RunMetrics::default().remote_fraction(), 0.0);
    }

    #[test]
    fn timing_totals() {
        let mut m = RunMetrics::default();
        m.push(step(0, 1, 0, 0.5));
        m.push(step(1, 1, 0, 0.25));
        assert!((m.critical_path_seconds() - 0.75).abs() < 1e-12);
        assert!((m.total_worker_seconds() - 3.0).abs() < 1e-12);
        assert!((m.total_delivery_seconds() - 0.375).abs() < 1e-12);
        assert!((m.total_barrier_wait_seconds() - 0.1875).abs() < 1e-12);
    }

    #[test]
    fn truncate_drops_resumed_supersteps() {
        let mut m = RunMetrics::default();
        m.push(step(0, 10, 0, 0.1));
        m.push(step(1, 20, 0, 0.1));
        m.push(step(2, 30, 0, 0.1));
        m.truncate_to_superstep(1);
        assert_eq!(m.steps().len(), 1);
        assert_eq!(m.total_messages(), 10);
        m.truncate_to_superstep(0);
        assert!(m.steps().is_empty());
    }
}
