//! Epoch-based checkpoint save/restore with retries and graceful
//! degradation.
//!
//! The engine's [`crate::engine::BspEngine::checkpoint_state`] produces a
//! portable state snapshot; this module decides how snapshots live in a
//! [`CheckpointStore`] so a deployment can survive the store misbehaving:
//!
//! - every epoch is written under its own key ([`epoch_key`]) inside a
//!   CRC32C frame, through a bounded [`RetryPolicy`];
//! - restore scans epochs newest-first: a corrupt or unreadable latest
//!   checkpoint *degrades* to the previous valid epoch (emitting a
//!   `ckpt_fallback` span) instead of failing the run — only when every
//!   present epoch is corrupt does the restore return a typed error.

use crate::checkpoint::{get_framed, put_framed, CheckpointStore};
use crate::engine::{BspEngine, EngineCheckpoint};
use crate::program::VertexProgram;
use crate::{EngineError, Result};
use hourglass_faults::RetryPolicy;
use hourglass_obs as obs;

/// The store key of checkpoint epoch `epoch` under `prefix`.
pub fn epoch_key(prefix: &str, epoch: usize) -> String {
    format!("{prefix}-e{epoch:06}")
}

fn fallback_args(epoch: usize) -> obs::Args {
    let mut args = obs::Args::new();
    args.push("epoch", epoch as u64);
    args
}

/// What a recovery-path operation cost, for billing and observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Failed attempts retried away across all store operations.
    pub retries: u32,
    /// Accounted retry backoff, nanoseconds (never slept here; callers
    /// bill it to their own clock).
    pub backoff_ns: u64,
    /// Epochs skipped because their blob was corrupt or unreadable.
    pub fallback_epochs: u32,
}

/// Serializes and stores one checkpoint epoch, framed and retried.
pub fn save_epoch<P: VertexProgram>(
    store: &dyn CheckpointStore,
    prefix: &str,
    epoch: usize,
    ckpt: &EngineCheckpoint<P::Value, P::Message>,
    retry: &RetryPolicy,
) -> Result<RecoveryStats> {
    let key = epoch_key(prefix, epoch);
    let payload = serde_json::to_vec(ckpt)
        .map_err(|e| EngineError::Checkpoint(format!("serialize epoch {epoch}: {e}")))?;
    let _span = obs::span("ckpt_save_epoch", "ckpt")
        .arg("epoch", epoch as u64)
        .arg("bytes", payload.len() as u64);
    let (res, stats) = retry.run(|_| put_framed(store, &key, &payload));
    res?;
    Ok(RecoveryStats {
        retries: stats.attempts - 1,
        backoff_ns: stats.backoff_ns,
        ..RecoveryStats::default()
    })
}

/// The payload of the newest valid epoch at or below `max_epoch`, with
/// the stats of getting it.
///
/// Corrupt or persistently unreadable epochs are skipped (each emits a
/// `ckpt_fallback` span and counts in
/// [`RecoveryStats::fallback_epochs`]). Returns `Ok(None)` when no epoch
/// exists at all, and a typed [`EngineError::Checkpoint`] when epochs
/// exist but every one of them is corrupt.
pub fn load_latest(
    store: &dyn CheckpointStore,
    prefix: &str,
    max_epoch: usize,
    retry: &RetryPolicy,
) -> Result<Option<(usize, Vec<u8>, RecoveryStats)>> {
    let mut stats = RecoveryStats::default();
    let mut saw_corrupt = false;
    for epoch in (0..=max_epoch).rev() {
        let key = epoch_key(prefix, epoch);
        let (res, attempt) = retry.run(|_| get_framed(store, &key));
        stats.retries += attempt.attempts - 1;
        stats.backoff_ns += attempt.backoff_ns;
        match res {
            Ok(Some(payload)) => return Ok(Some((epoch, payload, stats))),
            Ok(None) => {}
            Err(e) => {
                saw_corrupt = true;
                stats.fallback_epochs += 1;
                obs::instant("ckpt_fallback", "ckpt", fallback_args(epoch));
                let _ = e;
            }
        }
    }
    if saw_corrupt {
        return Err(EngineError::Checkpoint(format!(
            "no valid checkpoint epoch under {prefix:?}: all {} present epochs corrupt",
            stats.fallback_epochs
        )));
    }
    Ok(None)
}

/// Restores the engine from the newest valid epoch at or below
/// `max_epoch`, degrading past corrupt epochs (including blobs whose
/// frame verifies but whose payload fails to deserialize).
///
/// Returns the epoch restored and the recovery stats, `Ok(None)` when no
/// epoch exists, or a typed error when every present epoch is unusable.
pub fn restore_latest<P: VertexProgram>(
    engine: &mut BspEngine<'_, P>,
    store: &dyn CheckpointStore,
    prefix: &str,
    max_epoch: usize,
    retry: &RetryPolicy,
) -> Result<Option<(usize, RecoveryStats)>> {
    let mut stats = RecoveryStats::default();
    let mut saw_corrupt = false;
    let mut epoch = max_epoch;
    loop {
        match load_latest(store, prefix, epoch, retry) {
            Ok(Some((found, payload, inner))) => {
                stats.retries += inner.retries;
                stats.backoff_ns += inner.backoff_ns;
                stats.fallback_epochs += inner.fallback_epochs;
                match serde_json::from_slice::<EngineCheckpoint<P::Value, P::Message>>(&payload) {
                    Ok(ckpt) => {
                        engine.restore_state(ckpt)?;
                        return Ok(Some((found, stats)));
                    }
                    Err(_) => {
                        // Framed-but-undecodable: degrade past it too.
                        saw_corrupt = true;
                        stats.fallback_epochs += 1;
                        obs::instant("ckpt_fallback", "ckpt", fallback_args(found));
                        if found == 0 {
                            break;
                        }
                        epoch = found - 1;
                    }
                }
            }
            Ok(None) => {
                if saw_corrupt {
                    break;
                }
                return Ok(None);
            }
            Err(e) => {
                if saw_corrupt {
                    break;
                }
                return Err(e);
            }
        }
    }
    Err(EngineError::Checkpoint(format!(
        "no usable checkpoint epoch under {prefix:?}: {} epochs skipped",
        stats.fallback_epochs
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemoryStore;
    use crate::engine::{BspEngine, EngineConfig};
    use crate::program::{ComputeContext, VertexProgram};
    use hourglass_graph::generators;
    use hourglass_partition::hash::HashPartitioner;
    use hourglass_partition::Partitioner;

    struct MaxId;
    impl VertexProgram for MaxId {
        type Value = u32;
        type Message = u32;

        fn init(&self, v: hourglass_graph::VertexId, _g: &hourglass_graph::Graph) -> u32 {
            v
        }

        fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
            if ctx.superstep == 0 {
                let me = *ctx.value_ref();
                ctx.send_to_neighbors(me);
            } else if let Some(&best) = messages.iter().max() {
                if best > *ctx.value_ref() {
                    *ctx.value() = best;
                }
            }
            ctx.vote_to_halt();
        }
    }

    fn engine_fixture(g: &hourglass_graph::Graph) -> BspEngine<'_, MaxId> {
        let p = HashPartitioner.partition(g, 4).expect("partition");
        BspEngine::new(MaxId, g, p, EngineConfig::default()).expect("engine")
    }

    #[test]
    fn epoch_keys_sort_lexicographically() {
        let a = epoch_key("run", 9);
        let b = epoch_key("run", 10);
        let c = epoch_key("run", 123_456);
        assert!(a < b && b < c);
    }

    #[test]
    fn save_then_restore_latest_round_trips() {
        let g = generators::erdos_renyi(40, 80, 11).expect("gen");
        let store = MemoryStore::new();
        let retry = RetryPolicy::default();

        let mut engine = engine_fixture(&g);
        engine.step().expect("step");
        let ckpt = engine.checkpoint_state();
        let expect_values = ckpt.values.clone();
        save_epoch::<MaxId>(&store, "run", 0, &ckpt, &retry).expect("save");
        engine.step().expect("step");
        save_epoch::<MaxId>(&store, "run", 1, &engine.checkpoint_state(), &retry).expect("save");

        let mut fresh = engine_fixture(&g);
        let (epoch, stats) = restore_latest(&mut fresh, &store, "run", 10, &retry)
            .expect("restore")
            .expect("found");
        assert_eq!(epoch, 1);
        assert_eq!(stats, RecoveryStats::default());

        // And the earlier epoch is still reachable directly.
        let (found, payload, _) = load_latest(&store, "run", 0, &retry)
            .expect("load")
            .expect("found");
        assert_eq!(found, 0);
        let old: EngineCheckpoint<u32, u32> = serde_json::from_slice(&payload).expect("decode");
        assert_eq!(old.values, expect_values);
    }

    #[test]
    fn corrupt_latest_epoch_falls_back_to_previous() {
        let g = generators::erdos_renyi(30, 60, 5).expect("gen");
        let store = MemoryStore::new();
        let retry = RetryPolicy::default();

        let mut engine = engine_fixture(&g);
        engine.step().expect("step");
        save_epoch::<MaxId>(&store, "run", 0, &engine.checkpoint_state(), &retry).expect("save");
        engine.step().expect("step");
        save_epoch::<MaxId>(&store, "run", 1, &engine.checkpoint_state(), &retry).expect("save");

        // Tear the final checkpoint: cut the framed blob in half.
        let blob = store.get(&epoch_key("run", 1)).expect("get").expect("blob");
        store
            .put(&epoch_key("run", 1), &blob[..blob.len() / 2])
            .expect("corrupt");

        let mut fresh = engine_fixture(&g);
        let (epoch, stats) = restore_latest(&mut fresh, &store, "run", 1, &retry)
            .expect("restore")
            .expect("found");
        assert_eq!(epoch, 0, "must degrade to epoch N-1");
        assert_eq!(stats.fallback_epochs, 1);
    }

    #[test]
    fn all_epochs_corrupt_is_a_typed_error() {
        let g = generators::erdos_renyi(20, 40, 3).expect("gen");
        let store = MemoryStore::new();
        let retry = RetryPolicy::default();
        let mut engine = engine_fixture(&g);
        engine.step().expect("step");
        save_epoch::<MaxId>(&store, "run", 0, &engine.checkpoint_state(), &retry).expect("save");
        store
            .put(&epoch_key("run", 0), b"garbage")
            .expect("corrupt");

        let mut fresh = engine_fixture(&g);
        let err = restore_latest(&mut fresh, &store, "run", 3, &retry).expect_err("typed error");
        assert!(matches!(err, EngineError::Checkpoint(_)));
    }

    #[test]
    fn no_epochs_at_all_is_none() {
        let g = generators::erdos_renyi(20, 40, 3).expect("gen");
        let store = MemoryStore::new();
        let mut engine = engine_fixture(&g);
        let got = restore_latest(&mut engine, &store, "run", 5, &RetryPolicy::default())
            .expect("restore");
        assert!(got.is_none());
    }

    #[test]
    fn framed_but_undecodable_payload_degrades() {
        let g = generators::erdos_renyi(20, 40, 3).expect("gen");
        let store = MemoryStore::new();
        let retry = RetryPolicy::default();
        let mut engine = engine_fixture(&g);
        engine.step().expect("step");
        save_epoch::<MaxId>(&store, "run", 0, &engine.checkpoint_state(), &retry).expect("save");
        // Epoch 1 has a *valid frame* around a payload that is not a
        // checkpoint: the restore must degrade past it, not error.
        crate::checkpoint::put_framed(&store, &epoch_key("run", 1), b"not a checkpoint")
            .expect("put");

        let mut fresh = engine_fixture(&g);
        let (epoch, stats) = restore_latest(&mut fresh, &store, "run", 1, &retry)
            .expect("restore")
            .expect("found");
        assert_eq!(epoch, 0);
        assert_eq!(stats.fallback_epochs, 1);
    }
}
