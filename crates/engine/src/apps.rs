//! The paper's graph applications (§8.1) plus a few standard extras.
//!
//! - [`PageRank`] — relevance estimation [9], fixed iteration count
//!   (the paper runs 30);
//! - [`Sssp`] — single-source shortest paths;
//! - [`GraphColoring`] — greedy coloring following the independent-set
//!   approach of Salihoglu & Widom [31];
//! - [`Wcc`], [`Bfs`], [`DegreeCount`] — standard auxiliary programs used
//!   by tests and examples.

use crate::program::{ComputeContext, VertexProgram};
use hourglass_graph::{Graph, VertexId};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// PageRank.
// ---------------------------------------------------------------------------

/// PageRank with damping 0.85, a fixed iteration budget and an optional
/// early-convergence tolerance.
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    /// Maximum number of rank-update iterations (the paper uses 30).
    pub iterations: usize,
    /// Stop early once the total rank change `Σ|Δ|` of a superstep drops
    /// below this value (None = always run the full budget).
    pub tolerance: Option<f64>,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            iterations: 30,
            tolerance: None,
        }
    }
}

impl PageRank {
    /// Fixed-iteration PageRank (the paper's configuration).
    pub fn fixed(iterations: usize) -> Self {
        PageRank {
            iterations,
            tolerance: None,
        }
    }

    /// Convergence-based PageRank: stops when `Σ|Δ| < tolerance`.
    pub fn converging(tolerance: f64, max_iterations: usize) -> Self {
        PageRank {
            iterations: max_iterations,
            tolerance: Some(tolerance),
        }
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Message = f64;

    fn init(&self, _v: VertexId, g: &Graph) -> f64 {
        1.0 / g.num_vertices().max(1) as f64
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, f64, f64>, messages: &[f64]) {
        let n = ctx.graph.num_vertices() as f64;
        let mut converged = false;
        if ctx.superstep > 0 {
            // Dangling (degree-0) vertices cannot forward their rank;
            // their aggregated mass is redistributed uniformly, keeping
            // total rank at 1 (the standard dangling-node correction).
            let dangling = ctx.prev_aggregates.sum("dangling");
            let sum: f64 = messages.iter().sum();
            let old = *ctx.value_ref();
            *ctx.value() = 0.15 / n + 0.85 * (sum + dangling / n);
            let delta = (*ctx.value_ref() - old).abs();
            ctx.aggregate_sum("delta", delta);
            if let Some(tol) = self.tolerance {
                // The previous superstep's total change is visible to all
                // vertices; when it fell below tolerance, stop uniformly.
                converged = ctx.superstep > 1 && ctx.prev_aggregates.sum("delta") < tol;
            }
        }
        if !converged && ctx.superstep < self.iterations {
            let d = ctx.degree();
            if d > 0 {
                let share = *ctx.value_ref() / d as f64;
                ctx.send_to_neighbors(share);
            } else {
                let mass = *ctx.value_ref();
                ctx.aggregate_sum("dangling", mass);
            }
        } else {
            ctx.vote_to_halt();
        }
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }

    fn name(&self) -> &'static str {
        "PageRank"
    }
}

// ---------------------------------------------------------------------------
// Single-source shortest paths.
// ---------------------------------------------------------------------------

/// SSSP from a source vertex over unit-weight edges.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
}

impl VertexProgram for Sssp {
    type Value = f64;
    type Message = f64;

    fn init(&self, v: VertexId, _g: &Graph) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, f64, f64>, messages: &[f64]) {
        let incoming = messages.iter().copied().fold(f64::INFINITY, f64::min);
        let candidate = if ctx.superstep == 0 && ctx.vertex == self.source {
            0.0
        } else {
            incoming
        };
        if candidate < *ctx.value_ref() || (ctx.superstep == 0 && ctx.vertex == self.source) {
            if candidate < *ctx.value_ref() {
                *ctx.value() = candidate;
            }
            let next = *ctx.value_ref() + 1.0;
            ctx.send_to_neighbors(next);
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a.min(*b))
    }

    fn name(&self) -> &'static str {
        "SSSP"
    }
}

// ---------------------------------------------------------------------------
// Greedy graph coloring.
// ---------------------------------------------------------------------------

/// Per-vertex coloring state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColorState {
    /// Assigned color, `u32::MAX` while undecided.
    pub color: u32,
}

impl ColorState {
    /// Whether a color has been assigned.
    pub fn is_colored(&self) -> bool {
        self.color != u32::MAX
    }
}

/// Greedy graph coloring via rounds of independent sets (Salihoglu &
/// Widom [31]): in round `r`, every still-uncolored vertex draws a
/// deterministic pseudo-random priority; local priority minima join the
/// round's independent set and take color `r`. Adjacent vertices can never
/// join the same round's set, so the coloring is proper.
#[derive(Debug, Clone, Copy)]
pub struct GraphColoring {
    /// Seed for the per-round priorities.
    pub seed: u64,
}

impl Default for GraphColoring {
    fn default() -> Self {
        GraphColoring { seed: 0xC0105 }
    }
}

impl GraphColoring {
    fn priority(&self, v: VertexId, round: usize) -> u64 {
        // SplitMix64 over (seed, vertex, round): deterministic and
        // uncorrelated between rounds.
        let mut x = self
            .seed
            .wrapping_add((v as u64) << 32)
            .wrapping_add(round as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl VertexProgram for GraphColoring {
    type Value = ColorState;
    /// `(priority, vertex)` of an uncolored neighbor.
    type Message = (u64, u32);

    fn init(&self, _v: VertexId, _g: &Graph) -> ColorState {
        ColorState { color: u32::MAX }
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, ColorState, (u64, u32)>,
        messages: &[(u64, u32)],
    ) {
        if ctx.value_ref().is_colored() {
            ctx.vote_to_halt();
            return;
        }
        // Decide round `superstep − 1` based on last superstep's
        // priorities: local minima (with id tie-break) take the color.
        if ctx.superstep > 0 {
            let round = ctx.superstep - 1;
            let mine = (self.priority(ctx.vertex, round), ctx.vertex);
            let is_min = messages.iter().all(|&(p, v)| mine < (p, v));
            if is_min {
                ctx.value().color = round as u32;
                ctx.vote_to_halt();
                return;
            }
        }
        // Still uncolored: advertise this round's priority.
        let p = self.priority(ctx.vertex, ctx.superstep);
        let me = ctx.vertex;
        ctx.send_to_neighbors((p, me));
    }

    fn name(&self) -> &'static str {
        "GraphColoring"
    }
}

// ---------------------------------------------------------------------------
// Auxiliary programs.
// ---------------------------------------------------------------------------

/// Weakly connected components by min-label propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wcc;

impl VertexProgram for Wcc {
    type Value = u32;
    type Message = u32;

    fn init(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
        let best = messages
            .iter()
            .copied()
            .min()
            .unwrap_or(u32::MAX)
            .min(*ctx.value_ref());
        if ctx.superstep == 0 || best < *ctx.value_ref() {
            *ctx.value() = best.min(*ctx.value_ref());
            let label = *ctx.value_ref();
            ctx.send_to_neighbors(label);
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
        Some(*a.min(b))
    }

    fn name(&self) -> &'static str {
        "WCC"
    }
}

/// BFS levels from a source (`u32::MAX` = unreachable).
#[derive(Debug, Clone, Copy)]
pub struct Bfs {
    /// The source vertex.
    pub source: VertexId,
}

impl VertexProgram for Bfs {
    type Value = u32;
    type Message = u32;

    fn init(&self, v: VertexId, _g: &Graph) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
        let candidate = if ctx.superstep == 0 && ctx.vertex == self.source {
            0
        } else {
            messages.iter().copied().min().unwrap_or(u32::MAX)
        };
        if candidate < *ctx.value_ref() || (ctx.superstep == 0 && ctx.vertex == self.source) {
            if candidate < *ctx.value_ref() {
                *ctx.value() = candidate;
            }
            let next = ctx.value_ref().saturating_add(1);
            ctx.send_to_neighbors(next);
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
        Some(*a.min(b))
    }

    fn name(&self) -> &'static str {
        "BFS"
    }
}

/// Records each vertex's degree (single superstep; smoke-test program).
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeCount;

impl VertexProgram for DegreeCount {
    type Value = u32;
    type Message = u32;

    fn init(&self, _v: VertexId, _g: &Graph) -> u32 {
        0
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, _messages: &[u32]) {
        *ctx.value() = ctx.degree() as u32;
        ctx.vote_to_halt();
    }

    fn name(&self) -> &'static str {
        "Degree"
    }
}

/// Validates a coloring: no edge may connect equal colors and every vertex
/// must be colored.
pub fn coloring_is_proper(g: &Graph, colors: &[ColorState]) -> bool {
    if colors.len() != g.num_vertices() {
        return false;
    }
    if colors.iter().any(|c| !c.is_colored()) {
        return false;
    }
    g.edges()
        .all(|(u, v)| u == v || colors[u as usize].color != colors[v as usize].color)
}

/// Number of distinct colors used.
pub fn color_count(colors: &[ColorState]) -> usize {
    let mut seen: Vec<u32> = colors.iter().map(|c| c.color).collect();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BspEngine, EngineConfig};
    use hourglass_graph::{generators, stats, GraphBuilder};
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    fn run<P: VertexProgram>(program: P, g: &Graph, k: u32) -> Vec<P::Value> {
        let p = HashPartitioner.partition(g, k).expect("partition");
        let mut e = BspEngine::new(program, g, p, EngineConfig::default()).expect("engine");
        e.run().expect("run");
        e.into_values()
    }

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::undirected(n);
        for i in 0..n as u32 - 1 {
            b.add_edge(i, i + 1);
        }
        b.build().expect("build")
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 2).expect("gen");
        let ranks = run(PageRank::fixed(20), &g, 4);
        let total: f64 = ranks.iter().sum();
        // Dangling (degree-0) vertices leak rank; R-MAT has few. Allow 5%.
        assert!((total - 1.0).abs() < 0.05, "rank mass {total}");
        assert!(ranks.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn pagerank_hubs_rank_higher() {
        // Star: the center must outrank every leaf.
        let mut b = GraphBuilder::undirected(11);
        for v in 1..11 {
            b.add_edge(0, v);
        }
        let g = b.build().expect("build");
        let ranks = run(PageRank::fixed(30), &g, 2);
        for v in 1..11 {
            assert!(ranks[0] > ranks[v]);
        }
    }

    #[test]
    fn sssp_on_path() {
        let g = path(6);
        let dist = run(Sssp { source: 0 }, &g, 3);
        for (v, &d) in dist.iter().enumerate() {
            assert_eq!(d, v as f64, "distance of vertex {v}");
        }
    }

    #[test]
    fn sssp_unreachable_stays_infinite() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1);
        // 2-3 disconnected from source 0.
        b.add_edge(2, 3);
        let g = b.build().expect("build");
        let dist = run(Sssp { source: 0 }, &g, 2);
        assert_eq!(dist[1], 1.0);
        assert!(dist[2].is_infinite() && dist[3].is_infinite());
    }

    #[test]
    fn coloring_proper_on_rmat() {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 7).expect("gen");
        let colors = run(GraphColoring::default(), &g, 4);
        assert!(coloring_is_proper(&g, &colors));
        let max_deg = (0..g.num_vertices())
            .map(|v| g.degree(v as u32))
            .max()
            .expect("non-empty");
        assert!(
            color_count(&colors) <= max_deg + 1,
            "greedy bound violated: {} colors, max degree {max_deg}",
            color_count(&colors)
        );
    }

    #[test]
    fn coloring_of_clique_uses_n_colors() {
        let mut b = GraphBuilder::undirected(6);
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                b.add_edge(i, j);
            }
        }
        let g = b.build().expect("build");
        let colors = run(GraphColoring::default(), &g, 2);
        assert!(coloring_is_proper(&g, &colors));
        assert_eq!(color_count(&colors), 6);
    }

    #[test]
    fn coloring_of_edgeless_graph_is_single_color() {
        let g = GraphBuilder::undirected(10).build().expect("build");
        let colors = run(GraphColoring::default(), &g, 2);
        assert!(coloring_is_proper(&g, &colors));
        assert_eq!(color_count(&colors), 1);
    }

    #[test]
    fn wcc_matches_union_find() {
        let g = generators::erdos_renyi(400, 500, 11).expect("gen");
        let labels = run(Wcc, &g, 4);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), stats::connected_components(&g));
        // Labels constant within an edge.
        for (u, v) in g.edges() {
            assert_eq!(labels[u as usize], labels[v as usize]);
        }
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = path(5);
        let levels = run(Bfs { source: 2 }, &g, 2);
        assert_eq!(levels, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn degree_program() {
        let g = path(4);
        let degs = run(DegreeCount, &g, 2);
        assert_eq!(degs, vec![1, 2, 2, 1]);
    }

    #[test]
    fn converging_pagerank_stops_early_with_same_answer() {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 2).expect("gen");
        let p = hourglass_partition::hash::HashPartitioner
            .partition(&g, 2)
            .expect("partition");
        let mut full = crate::engine::BspEngine::new(
            PageRank::fixed(60),
            &g,
            p.clone(),
            crate::engine::EngineConfig::default(),
        )
        .expect("engine");
        let full_report = full.run().expect("run");
        let mut conv = crate::engine::BspEngine::new(
            PageRank::converging(1e-7, 60),
            &g,
            p,
            crate::engine::EngineConfig::default(),
        )
        .expect("engine");
        let conv_report = conv.run().expect("run");
        assert!(
            conv_report.supersteps < full_report.supersteps,
            "convergence should stop early: {} vs {}",
            conv_report.supersteps,
            full_report.supersteps
        );
        let max_diff = full
            .values()
            .iter()
            .zip(conv.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-5, "ranks drifted by {max_diff}");
    }

    #[test]
    fn coloring_validator_rejects_bad_colorings() {
        let g = path(3);
        let all_same = vec![ColorState { color: 0 }; 3];
        assert!(!coloring_is_proper(&g, &all_same));
        let incomplete = vec![
            ColorState { color: 0 },
            ColorState { color: u32::MAX },
            ColorState { color: 0 },
        ];
        assert!(!coloring_is_proper(&g, &incomplete));
        let ok = vec![
            ColorState { color: 0 },
            ColorState { color: 1 },
            ColorState { color: 0 },
        ];
        assert!(coloring_is_proper(&g, &ok));
        assert!(!coloring_is_proper(&g, &ok[..2]));
    }
}

// ---------------------------------------------------------------------------
// Extended applications (beyond the paper's three benchmarks).
// ---------------------------------------------------------------------------

/// Per-vertex triangle count: each vertex learns its neighbors' adjacency
/// and counts closed wedges. Two supersteps; message volume is O(Σ d²),
/// so use on moderate-degree graphs.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriangleCount;

impl VertexProgram for TriangleCount {
    type Value = u64;
    /// `(sender, sender's adjacency list)`.
    type Message = (u32, Vec<u32>);

    fn init(&self, _v: VertexId, _g: &Graph) -> u64 {
        0
    }

    fn compute(
        &self,
        ctx: &mut ComputeContext<'_, u64, (u32, Vec<u32>)>,
        messages: &[(u32, Vec<u32>)],
    ) {
        if ctx.superstep == 0 {
            // Send the adjacency to neighbors with a *smaller* id.
            let mine: Vec<u32> = ctx.neighbors().to_vec();
            let me = ctx.vertex;
            for i in 0..ctx.neighbors().len() {
                let n = ctx.neighbors()[i];
                if n < me {
                    ctx.send(n, (me, mine.clone()));
                }
            }
        } else {
            // Count, for each higher neighbor u, the common neighbors w
            // with w > u: triangle {v, u, w} (v < u < w) is then counted
            // exactly once, at its smallest vertex v.
            let mine = ctx.neighbors();
            let mut count = 0u64;
            for (sender, adj) in messages {
                for w in adj {
                    if *w > *sender && mine.binary_search(w).is_ok() {
                        count += 1;
                    }
                }
            }
            *ctx.value() = count;
        }
        ctx.vote_to_halt();
    }

    fn name(&self) -> &'static str {
        "TriangleCount"
    }
}

/// Sums the per-vertex triangle counts produced by [`TriangleCount`] into
/// the global triangle count.
pub fn total_triangles(per_vertex: &[u64]) -> u64 {
    per_vertex.iter().sum()
}

/// k-core decomposition flavor: iteratively deactivate vertices with
/// fewer than `k` live neighbors; the surviving vertices form the k-core.
#[derive(Debug, Clone, Copy)]
pub struct KCore {
    /// The core order.
    pub k: u32,
}

/// State of a vertex in the k-core computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreState {
    /// Whether the vertex is still in the candidate core.
    pub alive: bool,
    /// Number of dead neighbors observed so far.
    pub dead_neighbors: u32,
}

impl VertexProgram for KCore {
    type Value = CoreState;
    /// "I died" notification.
    type Message = u8;

    fn init(&self, _v: VertexId, _g: &Graph) -> CoreState {
        CoreState {
            alive: true,
            dead_neighbors: 0,
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, CoreState, u8>, messages: &[u8]) {
        if !ctx.value_ref().alive {
            ctx.vote_to_halt();
            return;
        }
        ctx.value().dead_neighbors += messages.len() as u32;
        let live_degree = ctx.degree() as u32 - ctx.value_ref().dead_neighbors;
        if live_degree < self.k {
            ctx.value().alive = false;
            ctx.send_to_neighbors(1);
        }
        ctx.vote_to_halt();
    }

    fn name(&self) -> &'static str {
        "KCore"
    }
}

/// Label-propagation community detection: every vertex adopts the most
/// frequent label among its neighbors, for a fixed number of rounds
/// (deterministic tie-break on the smaller label).
#[derive(Debug, Clone, Copy)]
pub struct LabelPropagation {
    /// Rounds to run (label propagation rarely needs more than ~10).
    pub rounds: usize,
}

impl VertexProgram for LabelPropagation {
    type Value = u32;
    type Message = u32;

    fn init(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, u32, u32>, messages: &[u32]) {
        if ctx.superstep > 0 {
            // Adopt the most frequent incoming label (ties → smallest).
            let mut labels: Vec<u32> = messages.to_vec();
            labels.sort_unstable();
            let mut best = *ctx.value_ref();
            let mut best_count = 0usize;
            let mut i = 0;
            while i < labels.len() {
                let mut j = i;
                while j < labels.len() && labels[j] == labels[i] {
                    j += 1;
                }
                let count = j - i;
                if count > best_count || (count == best_count && labels[i] < best) {
                    best = labels[i];
                    best_count = count;
                }
                i = j;
            }
            *ctx.value() = best;
        }
        if ctx.superstep < self.rounds {
            let label = *ctx.value_ref();
            ctx.send_to_neighbors(label);
        } else {
            ctx.vote_to_halt();
        }
    }

    fn name(&self) -> &'static str {
        "LabelPropagation"
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use crate::engine::{BspEngine, EngineConfig};
    use hourglass_graph::{generators, GraphBuilder};
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    fn run<P: VertexProgram>(program: P, g: &Graph, k: u32) -> Vec<P::Value> {
        let p = HashPartitioner.partition(g, k).expect("partition");
        let mut e = BspEngine::new(program, g, p, EngineConfig::default()).expect("engine");
        e.run().expect("run");
        e.into_values()
    }

    #[test]
    fn triangles_of_a_triangle() {
        let mut b = GraphBuilder::undirected(3);
        b.extend_edges([(0, 1), (1, 2), (0, 2)]);
        let g = b.build().expect("build");
        let counts = run(TriangleCount, &g, 2);
        assert_eq!(total_triangles(&counts), 1);
    }

    #[test]
    fn triangles_of_k4() {
        // K4 has 4 triangles.
        let mut b = GraphBuilder::undirected(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.add_edge(i, j);
            }
        }
        let g = b.build().expect("build");
        let counts = run(TriangleCount, &g, 2);
        assert_eq!(total_triangles(&counts), 4);
    }

    #[test]
    fn triangles_of_triangle_free_graph() {
        // Even cycles are triangle-free.
        let mut b = GraphBuilder::undirected(6);
        for i in 0..6u32 {
            b.add_edge(i, (i + 1) % 6);
        }
        let g = b.build().expect("build");
        let counts = run(TriangleCount, &g, 3);
        assert_eq!(total_triangles(&counts), 0);
    }

    #[test]
    fn kcore_peels_tails() {
        // Triangle (a 2-core) with a pendant path attached.
        let mut b = GraphBuilder::undirected(5);
        b.extend_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let g = b.build().expect("build");
        let states = run(KCore { k: 2 }, &g, 2);
        assert!(states[0].alive && states[1].alive && states[2].alive);
        assert!(!states[3].alive && !states[4].alive);
    }

    #[test]
    fn kcore_zero_keeps_everything() {
        let g = generators::erdos_renyi(50, 100, 1).expect("gen");
        let states = run(KCore { k: 0 }, &g, 2);
        assert!(states.iter().all(|s| s.alive));
    }

    #[test]
    fn label_propagation_finds_communities() {
        // Two dense communities joined by one bridge.
        let g = generators::community(2, 32, 0.5, 1, 3).expect("gen");
        let labels = run(LabelPropagation { rounds: 8 }, &g, 2);
        let mut distinct: Vec<u32> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() <= 6,
            "two communities should collapse to few labels, got {}",
            distinct.len()
        );
    }
}
