//! A cluster-style runtime: long-lived worker threads exchanging message
//! batches over channels.
//!
//! [`crate::BspEngine`] re-partitions state between supersteps from a
//! master loop — simple and good for simulation. This runtime is the
//! faithful Giraph-shaped alternative: each worker is a thread that lives
//! for the whole computation, owns its vertices' state, applies the
//! program's combiner **at the sender** per destination worker (the real
//! Pregel network optimization), and exchanges one batch per peer per
//! superstep. Results are bit-identical to [`crate::BspEngine`] for
//! programs with associative/commutative combiners and order-insensitive
//! `compute` functions (all the bundled apps).
//!
//! The synchronization protocol per superstep:
//!
//! 1. the master broadcasts `Start { superstep, aggregates }`;
//! 2. every worker computes its active vertices, accumulating outgoing
//!    messages per destination worker (combined eagerly);
//! 3. every worker sends exactly one (possibly empty) batch to every
//!    peer, then receives the `W − 1` batches addressed to it;
//! 4. every worker reports `Done { active, sent, aggregates }`;
//! 5. the master decides whether another superstep is needed.

use crate::metrics::{RunMetrics, SuperstepMetrics};
use crate::program::{Aggregates, ComputeContext, VertexProgram};
use crate::{EngineError, ExecutionReport, Result};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use hourglass_graph::{Graph, VertexId};
use hourglass_obs as obs;
use hourglass_partition::Partitioning;
use std::time::Instant;

/// Messages from the master to a worker.
enum Control {
    Start {
        superstep: usize,
        aggregates: Aggregates,
    },
    Finish,
}

/// One superstep's batch of vertex messages from one worker to another;
/// entries are addressed by destination slot, resolved at send time.
struct Batch<M> {
    messages: Vec<(u32, M)>,
}

/// A sender/receiver pair for one destination worker's batch channel.
type BatchChannel<M> = (Sender<Batch<M>>, Receiver<Batch<M>>);

/// Per-superstep report from a worker to the master.
struct WorkerDone {
    /// Worker index (dones arrive in completion order; the master
    /// re-indexes by this so span merges stay deterministic).
    worker: usize,
    active: u64,
    sent: u64,
    remote: u64,
    any_alive: bool,
    aggregates: Aggregates,
    compute_seconds: f64,
    /// Wall seconds of the worker's exchange phase (send + drain peers).
    exchange_seconds: f64,
    /// Tracing tick at which compute finished (0 with no collector).
    compute_end_ns: u64,
    /// Spans the worker recorded this superstep, shipped to the master
    /// for deterministic merging in worker order.
    spans: obs::TaskSpans,
}

/// Runs `program` on `graph`/`partitioning` with one OS thread per worker,
/// returning the final per-vertex values (global order) and the report.
pub fn run_cluster<P: VertexProgram>(
    program: &P,
    graph: &Graph,
    partitioning: &Partitioning,
    max_supersteps: usize,
) -> Result<(Vec<P::Value>, ExecutionReport)> {
    if partitioning.num_vertices() != graph.num_vertices() {
        return Err(EngineError::InvalidConfig(format!(
            "partitioning covers {} vertices, graph has {}",
            partitioning.num_vertices(),
            graph.num_vertices()
        )));
    }
    let w = partitioning.num_parts() as usize;
    let members = partitioning.members();
    let t0 = Instant::now();

    // Channels: control per worker, one shared done-channel, and a full
    // mesh of batch channels (workers send batches directly to peers).
    let (done_tx, done_rx) = unbounded::<WorkerDone>();
    let mut control_txs = Vec::with_capacity(w);
    let mut control_rxs = Vec::with_capacity(w);
    for _ in 0..w {
        let (tx, rx) = bounded::<Control>(1);
        control_txs.push(tx);
        control_rxs.push(rx);
    }
    let mut batch_txs: Vec<Vec<Sender<Batch<P::Message>>>> = Vec::with_capacity(w);
    let mut batch_rxs: Vec<Receiver<Batch<P::Message>>> = Vec::with_capacity(w);
    {
        let mut per_dest: Vec<BatchChannel<P::Message>> = (0..w).map(|_| unbounded()).collect();
        // batch_txs[src][dst] clones the dst channel's sender.
        for _src in 0..w {
            let row: Vec<Sender<Batch<P::Message>>> =
                per_dest.iter().map(|(tx, _)| tx.clone()).collect();
            batch_txs.push(row);
        }
        for (_, rx) in per_dest.drain(..) {
            batch_rxs.push(rx);
        }
    }

    // Packed vertex → (worker, slot) routing table for message routing.
    let route = crate::program::build_routes(graph.num_vertices(), &members);
    let route = &route;

    let mut metrics = RunMetrics::default();
    let mut final_values: Vec<Option<Vec<P::Value>>> = (0..w).map(|_| None).collect();
    let mut converged = false;

    crossbeam::thread::scope(|scope| -> Result<()> {
        // Spawn workers.
        let mut handles = Vec::with_capacity(w);
        for (worker, ws) in members.iter().enumerate() {
            let control_rx = control_rxs.remove(0);
            let done_tx = done_tx.clone();
            let my_batch_rx = batch_rxs.remove(0);
            let my_batch_txs = batch_txs[worker].clone();
            handles.push(scope.spawn(move |_| {
                worker_main::<P>(
                    worker,
                    ws,
                    program,
                    graph,
                    route,
                    control_rx,
                    done_tx,
                    my_batch_rx,
                    my_batch_txs,
                )
            }));
        }
        drop(done_tx);

        // Master loop.
        let mut superstep = 0usize;
        let mut aggregates = Aggregates::new();
        while superstep < max_supersteps {
            let _step_span = obs::span("superstep", "engine")
                .arg("superstep", superstep as u64)
                .arg("workers", w as u64);
            for tx in &control_txs {
                tx.send(Control::Start {
                    superstep,
                    aggregates: aggregates.clone(),
                })
                .map_err(|_| EngineError::InvalidConfig("worker hung up".into()))?;
            }
            // Dones arrive in completion order; index by worker id so the
            // span merge (and any per-worker math) is deterministic.
            let mut dones: Vec<Option<WorkerDone>> = (0..w).map(|_| None).collect();
            for _ in 0..w {
                let done = done_rx
                    .recv()
                    .map_err(|_| EngineError::InvalidConfig("worker died".into()))?;
                let worker = done.worker;
                dones[worker] = Some(done);
            }
            let mut active = 0u64;
            let mut sent = 0u64;
            let mut remote = 0u64;
            let mut any_alive = false;
            let mut next_aggregates = Aggregates::new();
            let mut max_worker_seconds = 0.0f64;
            let mut total_worker_seconds = 0.0f64;
            let mut delivery_seconds = 0.0f64;
            let mut barrier_wait_seconds = 0.0f64;
            let max_compute_end = dones
                .iter()
                .flatten()
                .map(|d| d.compute_end_ns)
                .max()
                .unwrap_or(0);
            for done in dones.iter_mut().flatten() {
                active += done.active;
                sent += done.sent;
                remote += done.remote;
                any_alive |= done.any_alive;
                max_worker_seconds = max_worker_seconds.max(done.compute_seconds);
                total_worker_seconds += done.compute_seconds;
                // All workers exchange concurrently: the phase's wall
                // contribution is the slowest worker's exchange.
                delivery_seconds = delivery_seconds.max(done.exchange_seconds);
                next_aggregates.merge(&done.aggregates);
                obs::merge_task(std::mem::take(&mut done.spans));
                if done.compute_end_ns > 0 && max_compute_end > done.compute_end_ns {
                    obs::record(obs::SpanRecord {
                        name: "barrier_wait",
                        cat: "engine",
                        track: done.worker as u32,
                        start_ns: done.compute_end_ns,
                        end_ns: max_compute_end,
                        kind: obs::RecordKind::Span,
                        args: obs::Args::new(),
                    });
                }
            }
            for done in dones.iter().flatten() {
                barrier_wait_seconds += max_worker_seconds - done.compute_seconds;
            }
            obs::counter("messages", "engine", sent);
            let step_metrics = SuperstepMetrics {
                superstep,
                active_vertices: active,
                messages: sent,
                remote_messages: remote,
                max_worker_seconds,
                total_worker_seconds,
                delivery_seconds,
                barrier_wait_seconds: barrier_wait_seconds.max(0.0),
            };
            crate::metrics::record_superstep(&step_metrics);
            metrics.push(step_metrics);
            aggregates = next_aggregates;
            superstep += 1;
            if !any_alive {
                converged = true;
                break;
            }
        }
        // Collect final values.
        for tx in &control_txs {
            tx.send(Control::Finish)
                .map_err(|_| EngineError::InvalidConfig("worker hung up".into()))?;
        }
        for h in handles {
            let (worker, values) = h.join().expect("worker thread panicked");
            final_values[worker] = Some(values);
        }
        Ok(())
    })
    .expect("scope panicked")?;

    if !converged {
        return Err(EngineError::DidNotConverge { max_supersteps });
    }

    // Stitch worker-local values back into global vertex order.
    let mut values: Vec<Option<P::Value>> = (0..graph.num_vertices()).map(|_| None).collect();
    for (worker, ws) in members.iter().enumerate() {
        let local = final_values[worker].take().expect("collected");
        for (&v, val) in ws.iter().zip(local) {
            values[v as usize] = Some(val);
        }
    }
    let values: Vec<P::Value> = values
        .into_iter()
        .map(|v| v.expect("every vertex belongs to a worker"))
        .collect();
    let report = ExecutionReport {
        supersteps: metrics.steps().len(),
        converged: true,
        total_messages: metrics.total_messages(),
        remote_messages: metrics.total_remote_messages(),
        wall_seconds: t0.elapsed().as_secs_f64(),
        metrics,
    };
    Ok((values, report))
}

/// The worker thread body: owns its vertices for the whole run.
#[allow(clippy::too_many_arguments)]
fn worker_main<P: VertexProgram>(
    worker: usize,
    my_vertices: &[VertexId],
    program: &P,
    graph: &Graph,
    route: &[u64],
    control_rx: Receiver<Control>,
    done_tx: Sender<WorkerDone>,
    batch_rx: Receiver<Batch<P::Message>>,
    batch_txs: Vec<Sender<Batch<P::Message>>>,
) -> (usize, Vec<P::Value>) {
    let w = batch_txs.len();
    let mut values: Vec<P::Value> = my_vertices
        .iter()
        .map(|&v| program.init(v, graph))
        .collect();
    let mut halted = vec![false; my_vertices.len()];
    let mut inbox: Vec<Vec<P::Message>> = (0..my_vertices.len()).map(|_| Vec::new()).collect();
    // Scatter buffers for cache-blocked delivery over large slabs; kept
    // across batches and supersteps so their capacity is reused.
    let mut scratch: Vec<Vec<(u32, P::Message)>> = Vec::new();

    // Runs until `Finish` arrives or the master hangs up.
    while let Ok(Control::Start {
        superstep,
        aggregates,
    }) = control_rx.recv()
    {
        // Tracing scope: everything this superstep records on this thread
        // is drained at the end and shipped to the master, which merges
        // worker batches in worker order.
        let trace_scope = obs::task_begin(worker as u32);
        // Compute phase: the context buckets messages straight
        // into per-destination batches with sender-side combining
        // (messages to the same target vertex fold eagerly when
        // the program provides a combiner).
        let t0 = Instant::now();
        let compute_span = obs::span("compute", "engine")
            .arg("worker", worker as u64)
            .arg("superstep", superstep as u64)
            .arg("vertices", my_vertices.len() as u64);
        let mut out_batches: Vec<Vec<(u32, P::Message)>> = (0..w).map(|_| Vec::new()).collect();
        let mut next_aggregates = Aggregates::new();
        let mut active = 0u64;
        // The context counts logical emissions; this runtime
        // reports post-combining batch sizes at exchange time
        // instead, so these stay unread.
        let (mut logical_sent, mut logical_remote) = (0u64, 0u64);
        let combiner = |a: &P::Message, b: &P::Message| program.combine(a, b);
        for (slot, &v) in my_vertices.iter().enumerate() {
            let has_messages = !inbox[slot].is_empty();
            if halted[slot] && !has_messages {
                continue;
            }
            halted[slot] = false;
            active += 1;
            let messages = std::mem::take(&mut inbox[slot]);
            let mut ctx = ComputeContext {
                vertex: v,
                superstep,
                graph,
                prev_aggregates: &aggregates,
                value: &mut values[slot],
                halted: &mut halted[slot],
                buckets: &mut out_batches,
                route,
                self_worker: worker as u32,
                combiner: &combiner,
                sent: &mut logical_sent,
                remote: &mut logical_remote,
                next_aggregates: &mut next_aggregates,
            };
            program.compute(&mut ctx, &messages);
            let mut messages = messages;
            messages.clear();
            inbox[slot] = messages;
        }
        drop(compute_span);
        let compute_seconds = t0.elapsed().as_secs_f64();
        let compute_end_ns = obs::now_ns_if_enabled();
        // Exchange phase: one batch to every peer (self included,
        // delivered locally), then drain W−1 incoming batches.
        let t_exchange = Instant::now();
        let exchange_span = obs::span("exchange", "engine")
            .arg("worker", worker as u64)
            .arg("superstep", superstep as u64);
        let mut sent = 0u64;
        let mut remote = 0u64;
        for dest in 0..w {
            let batch = std::mem::take(&mut out_batches[dest]);
            sent += batch.len() as u64;
            if dest == worker {
                deliver::<P>(program, &mut inbox, batch, &mut scratch);
            } else {
                remote += batch.len() as u64;
                batch_txs[dest]
                    .send(Batch { messages: batch })
                    .expect("peer hung up mid-superstep");
            }
        }
        for _ in 0..w.saturating_sub(1) {
            let batch = batch_rx.recv().expect("peer hung up mid-superstep");
            deliver::<P>(program, &mut inbox, batch.messages, &mut scratch);
        }
        drop(exchange_span);
        let exchange_seconds = t_exchange.elapsed().as_secs_f64();
        let any_alive = halted.iter().any(|&h| !h) || inbox.iter().any(|m| !m.is_empty());
        done_tx
            .send(WorkerDone {
                worker,
                active,
                sent,
                remote,
                any_alive,
                aggregates: next_aggregates,
                compute_seconds,
                exchange_seconds,
                compute_end_ns,
                spans: obs::task_end(trace_scope),
            })
            .expect("master hung up");
    }
    (worker, values)
}

/// Receiver-side delivery with combining against the existing inbox tail;
/// batch entries are already slot-addressed, so no lookup is needed.
///
/// Slabs whose working set overflows the last-level cache (the same
/// [`crate::engine::auto_blocks`] heuristic the in-process engine uses)
/// take the cache-blocked path: a stable scatter into per-range `scratch`
/// vectors, then a per-range drain whose random inbox accesses stay
/// cache-resident. Per-slot message order — and therefore tail-combining
/// — is identical either way.
fn deliver<P: VertexProgram>(
    program: &P,
    inbox: &mut [Vec<P::Message>],
    messages: Vec<(u32, P::Message)>,
    scratch: &mut Vec<Vec<(u32, P::Message)>>,
) {
    use crate::engine::DELIVERY_BLOCK_SLOTS;
    if crate::engine::auto_blocks(inbox.len()) {
        let num_blocks = inbox.len().div_ceil(DELIVERY_BLOCK_SLOTS);
        if scratch.len() < num_blocks {
            scratch.resize_with(num_blocks, Vec::new);
        }
        for (slot, msg) in messages {
            scratch[slot as usize / DELIVERY_BLOCK_SLOTS].push((slot, msg));
        }
        for block in scratch {
            for (slot, msg) in block.drain(..) {
                deliver_one::<P>(program, inbox, slot, msg);
            }
        }
    } else {
        for (slot, msg) in messages {
            deliver_one::<P>(program, inbox, slot, msg);
        }
    }
}

#[inline]
fn deliver_one<P: VertexProgram>(
    program: &P,
    inbox: &mut [Vec<P::Message>],
    slot: u32,
    msg: P::Message,
) {
    let cell = &mut inbox[slot as usize];
    if let Some(last) = cell.last_mut() {
        if let Some(combined) = program.combine(last, &msg) {
            *last = combined;
            return;
        }
    }
    cell.push(msg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{coloring_is_proper, GraphColoring, PageRank, Sssp, Wcc};
    use crate::engine::{BspEngine, EngineConfig};
    use hourglass_graph::generators;
    use hourglass_partition::{hash::HashPartitioner, Partitioner};

    fn graph() -> Graph {
        generators::rmat(9, 8, generators::RmatParams::SOCIAL, 6).expect("gen")
    }

    fn bsp_values<P: VertexProgram>(program: P, g: &Graph, p: &Partitioning) -> Vec<P::Value> {
        let mut e = BspEngine::new(program, g, p.clone(), EngineConfig::default()).expect("engine");
        e.run().expect("run");
        e.into_values()
    }

    #[test]
    fn sssp_matches_bsp_engine() {
        let g = graph();
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let reference = bsp_values(Sssp { source: 0 }, &g, &p);
        let (values, report) =
            run_cluster(&Sssp { source: 0 }, &g, &p, 10_000).expect("cluster run");
        assert_eq!(values, reference);
        assert!(report.converged);
    }

    #[test]
    fn pagerank_matches_bsp_engine_closely() {
        let g = graph();
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let reference = bsp_values(PageRank::fixed(15), &g, &p);
        let (values, _) = run_cluster(&PageRank::fixed(15), &g, &p, 10_000).expect("run");
        // Float summation order differs (sender-side combining), so allow
        // an epsilon.
        let max_diff = reference
            .iter()
            .zip(&values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_diff < 1e-12, "drift {max_diff}");
    }

    #[test]
    fn wcc_matches_bsp_engine() {
        let g = generators::erdos_renyi(500, 700, 3).expect("gen");
        let p = HashPartitioner.partition(&g, 8).expect("partition");
        let reference = bsp_values(Wcc, &g, &p);
        let (values, _) = run_cluster(&Wcc, &g, &p, 10_000).expect("run");
        assert_eq!(values, reference);
    }

    #[test]
    fn coloring_is_proper_on_cluster_runtime() {
        let g = graph();
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let (values, _) = run_cluster(&GraphColoring::default(), &g, &p, 10_000).expect("run");
        assert!(coloring_is_proper(&g, &values));
    }

    #[test]
    fn single_worker_cluster_works() {
        let g = graph();
        let p = HashPartitioner.partition(&g, 1).expect("partition");
        let (values, report) = run_cluster(&Sssp { source: 0 }, &g, &p, 10_000).expect("run");
        assert_eq!(report.remote_messages, 0);
        assert_eq!(values, bsp_values(Sssp { source: 0 }, &g, &p));
    }

    #[test]
    fn superstep_cap_is_enforced() {
        struct Forever;
        impl VertexProgram for Forever {
            type Value = u8;
            type Message = u8;
            fn init(&self, _: VertexId, _: &Graph) -> u8 {
                0
            }
            fn compute(&self, ctx: &mut ComputeContext<'_, u8, u8>, _m: &[u8]) {
                ctx.send_to_neighbors(0);
            }
        }
        let g = graph();
        let p = HashPartitioner.partition(&g, 2).expect("partition");
        assert!(matches!(
            run_cluster(&Forever, &g, &p, 5),
            Err(EngineError::DidNotConverge { max_supersteps: 5 })
        ));
    }

    #[test]
    fn rejects_mismatched_partitioning() {
        let g = graph();
        let other = generators::erdos_renyi(10, 20, 1).expect("gen");
        let p = HashPartitioner.partition(&other, 2).expect("partition");
        assert!(run_cluster(&Wcc, &g, &p, 100).is_err());
    }

    #[test]
    fn cluster_run_emits_worker_spans_in_worker_order() {
        let g = graph();
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let session = hourglass_obs::TraceSession::start();
        let (values, report) = run_cluster(&Sssp { source: 0 }, &g, &p, 10_000).expect("run");
        let trace = session.finish();
        assert_eq!(values, bsp_values(Sssp { source: 0 }, &g, &p));
        assert!(trace.spans.iter().any(|s| s.name == "superstep"));
        assert!(trace.spans.iter().any(|s| s.name == "exchange"));
        // Dones arrive in completion order, but span merges are re-indexed
        // by worker: the first superstep's compute spans appear on tracks
        // 0, 1, 2, 3 in that order.
        let compute_tracks: Vec<u32> = trace
            .spans
            .iter()
            .filter(|s| s.name == "compute")
            .take(4)
            .map(|s| s.track)
            .collect();
        assert_eq!(compute_tracks, vec![0, 1, 2, 3]);
        for s in report.metrics.steps() {
            assert!(s.delivery_seconds >= 0.0);
            assert!(s.barrier_wait_seconds >= 0.0);
        }
    }

    #[test]
    fn sender_side_combining_reduces_traffic() {
        // A star graph with a min-combiner: every leaf messages the hub,
        // but each worker sends at most one combined message per superstep.
        let mut b = hourglass_graph::GraphBuilder::undirected(257);
        for v in 1..257 {
            b.add_edge(0, v);
        }
        let g = b.build().expect("build");
        let p = HashPartitioner.partition(&g, 4).expect("partition");
        let (_, cluster_report) = run_cluster(&Sssp { source: 5 }, &g, &p, 10_000).expect("run");
        let mut e =
            BspEngine::new(Sssp { source: 5 }, &g, p, EngineConfig::default()).expect("engine");
        let bsp_report = e.run().expect("run");
        assert!(
            cluster_report.total_messages < bsp_report.total_messages,
            "sender-side combining should shrink traffic: {} vs {}",
            cluster_report.total_messages,
            bsp_report.total_messages
        );
    }
}
