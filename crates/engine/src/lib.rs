//! A Pregel-style BSP graph-processing engine (the Giraph stand-in).
//!
//! The paper's prototype runs a modified Apache Giraph; we build the same
//! class of engine from scratch: vertex-centric programs executed in
//! synchronous supersteps by a set of workers, with message passing,
//! combiners, aggregators, checkpoint/restore to a durable store, and the
//! three graph-loading strategies contrasted in §6/§8.3.1 (stream, hash
//! and micro loading).
//!
//! The engine executes workers as threads over a shared immutable graph;
//! partition ownership decides which messages are "remote" (they cross
//! workers and are tallied separately, since the paper's partition-quality
//! metric §8.3.3 estimates exactly this traffic).
//!
//! Loading reads a [`loaders::Datastore`] — the text edge-list baseline or
//! the sharded binary (`HGS2`, checksummed; legacy `HGS1` still loads)
//! layout whose micro-partition buckets decode zero-copy — and
//! [`loaders::reload_graph`] turns the loaded per-worker slabs back into
//! the in-memory graph a deployment executes on. Checkpoint recovery and
//! degraded reloads under injected faults live in [`recovery`] and
//! [`loaders::reload_graph_resilient`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod checkpoint;
pub mod cluster;
pub mod engine;
pub mod exec;
pub mod loaders;
pub mod metrics;
pub mod program;
pub mod recovery;

/// The deterministic fault-injection layer the stores and loaders accept
/// plans from (re-exported so downstream crates need no extra dependency).
pub use hourglass_faults as faults;

pub use checkpoint::{get_framed, put_framed, CheckpointStore, DirStore, FaultyStore, MemoryStore};
pub use engine::{
    auto_blocks, llc_bytes, BspEngine, DeliveryMode, EngineConfig, ExecutionReport,
    DELIVERY_BLOCK_SLOTS,
};
pub use loaders::{Datastore, StoreFormat};
pub use program::{ComputeContext, VertexProgram};

use std::fmt;

/// Errors produced by the engine.
#[derive(Debug)]
pub enum EngineError {
    /// Configuration was invalid for the given graph/partitioning.
    InvalidConfig(String),
    /// Checkpoint serialization or IO failed.
    Checkpoint(String),
    /// A partitioning error bubbled up.
    Partition(hourglass_partition::PartitionError),
    /// A datastore shard stayed unreadable after every retry.
    ShardRead {
        /// The bucket whose read kept failing.
        bucket: u32,
        /// Attempts spent before giving up.
        attempts: u32,
    },
    /// The program exceeded the superstep limit without halting.
    DidNotConverge {
        /// The limit that was hit.
        max_supersteps: usize,
    },
    /// Worker slabs handed to [`loaders::reload_graph`] were inconsistent:
    /// a vertex was out of range for the deployment graph or owned by more
    /// than one worker (a corrupt store or a bad micro→worker map would
    /// otherwise silently corrupt the rebuilt CSR).
    SlabConflict {
        /// The offending vertex id.
        vertex: u32,
        /// The worker whose slab triggered the conflict.
        worker: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig(m) => write!(f, "invalid engine config: {m}"),
            EngineError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            EngineError::Partition(e) => write!(f, "partition error: {e}"),
            EngineError::ShardRead { bucket, attempts } => {
                write!(
                    f,
                    "shard bucket {bucket} unreadable after {attempts} attempts"
                )
            }
            EngineError::DidNotConverge { max_supersteps } => {
                write!(f, "program did not halt within {max_supersteps} supersteps")
            }
            EngineError::SlabConflict { vertex, worker } => {
                write!(
                    f,
                    "worker {worker} slab conflicts on vertex {vertex}: duplicated or out of range"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<hourglass_partition::PartitionError> for EngineError {
    fn from(e: hourglass_partition::PartitionError) -> Self {
        EngineError::Partition(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
