//! The `hourglass` command-line tool. All logic lives in the library; this
//! binary only glues argv to [`hourglass_cli::dispatch`].

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hourglass_cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
