//! Implementation of the `hourglass` command-line tool.
//!
//! Subcommands:
//!
//! - `market generate` — create a synthetic spot-market trace file;
//! - `market stats` — summarize a market (discounts, spikes, MTTFs);
//! - `simulate` — run a provisioning strategy over a market and report
//!   cost/deadline statistics;
//! - `explain` — print a per-candidate expected-cost breakdown for one
//!   decision instant;
//! - `partition` — partition an edge-list file and report quality;
//! - `run` — execute a graph application on the BSP engine;
//! - `bench-diff` — compare two `bench_report` JSON files and fail on a
//!   performance regression (the CI perf gate).
//!
//! Parsing is hand-rolled (the workspace's dependency policy has no CLI
//! crate); every subcommand is a pure function from parsed options to
//! output so the logic is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hourglass_cloud::eviction::EvictionModel;
use hourglass_cloud::stats::market_stats;
use hourglass_cloud::tracegen::{generate_market, TraceGenConfig};
use hourglass_cloud::{InstanceType, Market};
use hourglass_core::expected_cost::EcParams;
use hourglass_core::explain::explain;
use hourglass_core::strategies::{
    DeadlineProtected, EagerStrategy, HourglassStrategy, OnDemandStrategy, ProteusStrategy,
};
use hourglass_core::{DecisionContext, Strategy};
use hourglass_engine::apps::{color_count, coloring_is_proper, GraphColoring, PageRank, Sssp, Wcc};
use hourglass_engine::{BspEngine, EngineConfig};
use hourglass_graph::Graph;
use hourglass_metrics as hm;
use hourglass_obs as obs;
use hourglass_partition::fennel::Fennel;
use hourglass_partition::hash::HashPartitioner;
use hourglass_partition::ldg::Ldg;
use hourglass_partition::multilevel::Multilevel;
use hourglass_partition::quality::{edge_cut_fraction, imbalance};
use hourglass_partition::{Balance, Partitioner};
use hourglass_sim::job::{PaperJob, ReloadMode};
use hourglass_sim::runner::{build_decision_candidates, derive_eviction_models, SimulationSetup};
use hourglass_sim::{EventAggregate, Experiment, FaultPlan, MetricsBridge, TeeSink, TraceBridge};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A CLI error: message plus exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError {
        message: msg.into(),
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CliError>;

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default, Clone)]
pub struct Options {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Flags that take no value (presence means `true`).
const BOOL_FLAGS: &[&str] = &["profile"];

impl Options {
    /// Parses raw arguments: `--key value` pairs, known boolean flags and
    /// bare positionals.
    pub fn parse(args: &[String]) -> Result<Options> {
        let mut out = Options::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    out.flags.insert(key.to_string(), "true".to_string());
                    i += 1;
                    continue;
                }
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| err(format!("--{key} needs a value")))?;
                out.flags.insert(key.to_string(), value.clone());
                i += 2;
            } else {
                out.positional.push(a.clone());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Whether a boolean flag is set.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// A parsed numeric/typed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
hourglass — deadline-aware transient-resource provisioning (EuroSys '19)

USAGE:
  hourglass market generate [--seed N] [--days D] --out FILE
  hourglass market stats [--market FILE | --seed N]
  hourglass simulate --job sssp|pagerank|gc [--slack PCT] [--strategy NAME]
                     [--runs N] [--seed N] [--trace FILE] [--metrics FILE]
                     [--profile-json FILE]
                     [--fault-plan io-flaky|torn-writes|bitflip]
                     (strategies: hourglass, spoton, proteus, spoton-dp,
                      proteus-dp, on-demand)
  hourglass explain --job sssp|pagerank|gc [--slack PCT] [--at HOURS]
                    [--work FRac] [--seed N]
  hourglass partition --input EDGELIST --parts K
                      [--algorithm multilevel|fennel|ldg|hash] [--seed N]
  hourglass run --input EDGELIST --app pagerank|sssp|coloring|wcc
                [--workers K] [--source V] [--iterations N]
                [--trace FILE] [--profile] [--profile-json FILE]
                [--json FILE] [--metrics FILE]
  hourglass bench-diff OLD NEW [--max-regression F] [--min-seconds F]

  --trace FILE writes a Chrome Trace Event JSON (open in Perfetto/chrome
  //tracing); --profile prints a per-phase time breakdown and
  --profile-json FILE exports it as JSON; `run --json` dumps
  per-superstep metrics (compute, delivery, barrier wait);
  --metrics FILE exports the cross-layer metrics registry snapshot
  (Prometheus text exposition, or deterministic JSON when FILE ends in
  .json); `simulate --fault-plan` injects a canned deterministic fault
  plan (seeded from --seed) into the simulated checkpoint/reload I/O
  paths and reports how many retries and degradations the runs absorbed;
  `bench-diff` compares two bench_report JSON files (schema
  hourglass-bench-report/v1, see results/README.md) and exits nonzero
  when any phase slowed past --max-regression (default 0.20 = +20%;
  phases under --min-seconds, default 0.01s, in both reports are noise
  and never flagged).
";

/// Dispatches a full command line (without argv[0]); returns the text to
/// print.
pub fn dispatch(args: &[String]) -> Result<String> {
    match args.first().map(|s| s.as_str()) {
        Some("market") => match args.get(1).map(|s| s.as_str()) {
            Some("generate") => cmd_market_generate(&Options::parse(&args[2..])?),
            Some("stats") => cmd_market_stats(&Options::parse(&args[2..])?),
            _ => Err(err("usage: hourglass market <generate|stats> ...")),
        },
        Some("simulate") => cmd_simulate(&Options::parse(&args[1..])?),
        Some("explain") => cmd_explain(&Options::parse(&args[1..])?),
        Some("partition") => cmd_partition(&Options::parse(&args[1..])?),
        Some("run") => cmd_run(&Options::parse(&args[1..])?),
        Some("bench-diff") => cmd_bench_diff(&Options::parse(&args[1..])?),
        Some("help") | Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

fn cmd_market_generate(opts: &Options) -> Result<String> {
    let seed: u64 = opts.get_or("seed", 42)?;
    let days: f64 = opts.get_or("days", 30.0)?;
    let out = opts
        .get("out")
        .ok_or_else(|| err("market generate: --out FILE is required"))?;
    let cfg = TraceGenConfig {
        seed,
        days,
        ..TraceGenConfig::default()
    };
    let market = generate_market(&cfg).map_err(|e| err(e.to_string()))?;
    market.save(out).map_err(|e| err(e.to_string()))?;
    Ok(format!(
        "wrote {days}-day market (seed {seed}, {} instance types) to {out}\n",
        InstanceType::ALL.len()
    ))
}

fn load_or_generate_market(opts: &Options) -> Result<Market> {
    match opts.get("market") {
        Some(path) => Market::load(path).map_err(|e| err(e.to_string())),
        None => {
            let seed: u64 = opts.get_or("seed", 42)?;
            generate_market(&TraceGenConfig {
                seed,
                ..TraceGenConfig::default()
            })
            .map_err(|e| err(e.to_string()))
        }
    }
}

fn cmd_market_stats(opts: &Options) -> Result<String> {
    let market = load_or_generate_market(opts)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>10} {:>8} {:>12} {:>12}",
        "type", "OD $/h", "mean spot", "avail %", "spikes", "mean out (m)", "MTTF (h)"
    );
    for ty in market.instance_types().collect::<Vec<_>>() {
        let trace = market.trace(ty).map_err(|e| err(e.to_string()))?;
        let bid = ty.on_demand_price();
        let s = market_stats(trace, bid).map_err(|e| err(e.to_string()))?;
        let model = EvictionModel::from_trace(trace, bid, 24.0 * 3600.0, 2000, 7)
            .map_err(|e| err(e.to_string()))?;
        let _ = writeln!(
            out,
            "{:<14} {:>10.3} {:>12.4} {:>10.1} {:>8} {:>12.1} {:>12.1}",
            ty.api_name(),
            bid,
            s.mean_price,
            100.0 * s.availability,
            s.spike_count,
            s.mean_spike_duration / 60.0,
            model.mttf() / 3600.0,
        );
    }
    Ok(out)
}

fn parse_job(opts: &Options) -> Result<PaperJob> {
    match opts.get("job") {
        Some("sssp") => Ok(PaperJob::Sssp),
        Some("pagerank") => Ok(PaperJob::PageRank),
        Some("gc") | Some("coloring") => Ok(PaperJob::GraphColoring),
        Some(other) => Err(err(format!("unknown job {other:?}"))),
        None => Err(err("--job sssp|pagerank|gc is required")),
    }
}

fn parse_strategy(name: &str) -> Result<Box<dyn Strategy>> {
    Ok(match name {
        "hourglass" => Box::new(HourglassStrategy::new()),
        "spoton" => Box::new(EagerStrategy),
        "proteus" => Box::new(ProteusStrategy),
        "spoton-dp" => Box::new(DeadlineProtected::new(EagerStrategy)),
        "proteus-dp" => Box::new(DeadlineProtected::new(ProteusStrategy)),
        "on-demand" => Box::new(OnDemandStrategy),
        other => return Err(err(format!("unknown strategy {other:?}"))),
    })
}

/// Exports a finished trace: Chrome JSON to `path` (if any), a text
/// profile appended to `out`, and/or the profile summary as JSON.
fn export_trace(
    trace: &obs::Trace,
    path: Option<&str>,
    profile: bool,
    profile_json: Option<&str>,
    out: &mut String,
) -> Result<()> {
    if let Some(path) = path {
        let json = obs::chrome::chrome_trace_json(trace);
        std::fs::write(path, json).map_err(|e| err(format!("write {path}: {e}")))?;
        let _ = writeln!(
            out,
            "trace written to {path} ({} records; open in Perfetto or chrome://tracing)",
            trace.spans.len()
        );
    }
    if profile {
        let _ = write!(out, "{}", obs::profile::profile_report(trace, 12));
    }
    if let Some(path) = profile_json {
        let json = obs::profile::ProfileSummary::from_trace(trace).to_json();
        std::fs::write(path, json).map_err(|e| err(format!("write {path}: {e}")))?;
        let _ = writeln!(out, "profile json written to {path}");
    }
    Ok(())
}

/// Exports a metrics snapshot: deterministic JSON when `path` ends in
/// `.json`, otherwise the Prometheus text exposition (validated by
/// parse-back before writing).
fn export_metrics(snapshot: &hm::Snapshot, path: &str, out: &mut String) -> Result<()> {
    let text = if path.ends_with(".json") {
        snapshot.to_json()
    } else {
        let text = snapshot.to_prom();
        hm::prom::validate(&text)
            .map_err(|e| err(format!("generated exposition failed validation: {e}")))?;
        text
    };
    std::fs::write(path, text).map_err(|e| err(format!("write {path}: {e}")))?;
    let _ = writeln!(
        out,
        "metrics written to {path} ({} series)",
        snapshot.series.len()
    );
    Ok(())
}

/// `bench-diff OLD NEW`: the perf-regression gate over two standardized
/// `bench_report` files. Returns `Err` (exit code 2) when a phase slowed
/// past the threshold, so CI can gate on the exit status.
fn cmd_bench_diff(opts: &Options) -> Result<String> {
    let [old_path, new_path] = opts.positional() else {
        return Err(err("usage: hourglass bench-diff OLD NEW"));
    };
    let cfg = hm::bench_report::DiffConfig {
        max_regression: opts.get_or("max-regression", 0.20)?,
        min_seconds: opts.get_or("min-seconds", 0.01)?,
    };
    if !cfg.max_regression.is_finite() || cfg.max_regression <= 0.0 {
        return Err(err("--max-regression must be positive"));
    }
    let read = |path: &str| -> Result<hm::bench_report::BenchReport> {
        let text = std::fs::read_to_string(path).map_err(|e| err(format!("read {path}: {e}")))?;
        hm::bench_report::BenchReport::parse(&text).map_err(|e| err(format!("{path}: {e}")))
    };
    let old = read(old_path)?;
    let new = read(new_path)?;
    if old.bin != new.bin {
        return Err(err(format!(
            "reports come from different binaries: {:?} vs {:?}",
            old.bin, new.bin
        )));
    }
    let diff = hm::bench_report::diff(&old, &new, cfg);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-diff {} vs {} ({}, threshold +{:.0}%, floor {}s)",
        old_path,
        new_path,
        old.bin,
        cfg.max_regression * 100.0,
        cfg.min_seconds
    );
    let _ = write!(out, "{}", diff.render());
    if diff.regressed() {
        return Err(err(format!("{out}\nperformance regression detected")));
    }
    let _ = writeln!(out, "no regression");
    Ok(out)
}

fn cmd_simulate(opts: &Options) -> Result<String> {
    let job_kind = parse_job(opts)?;
    let slack: f64 = opts.get_or("slack", 50.0)?;
    let runs: usize = opts.get_or("runs", 200)?;
    let seed: u64 = opts.get_or("seed", 42)?;
    let strategy = parse_strategy(opts.get("strategy").unwrap_or("hourglass"))?;

    let market = load_or_generate_market(opts)?;
    let history = generate_market(&TraceGenConfig {
        seed: seed ^ 0x0C70_BE55,
        ..TraceGenConfig::default()
    })
    .map_err(|e| err(e.to_string()))?;
    let models = derive_eviction_models(&history, 24.0 * 3600.0, 2000, seed)
        .map_err(|e| err(e.to_string()))?;
    let fault_plan = match opts.get("fault-plan") {
        Some(name) => Some(FaultPlan::by_name(name, seed).ok_or_else(|| {
            err(format!(
                "unknown fault plan {name:?} (known: io-flaky, torn-writes, bitflip)"
            ))
        })?),
        None => None,
    };
    let faulted = fault_plan.is_some();
    let mut setup = SimulationSetup::new(&market, &models);
    if let Some(plan) = fault_plan {
        setup = setup.with_fault_plan(plan);
    }
    let job = job_kind
        .description(slack, ReloadMode::Fast)
        .map_err(|e| err(e.to_string()))?;
    let trace_path = opts.get("trace");
    let profile = opts.has("profile");
    let profile_json = opts.get("profile-json");
    let metrics_path = opts.get("metrics");
    let session =
        (trace_path.is_some() || profile || profile_json.is_some()).then(obs::TraceSession::start);
    let metrics_session = metrics_path.is_some().then(hm::MetricsSession::start);
    let mut bridge = TraceBridge::new();
    let mut mbridge = MetricsBridge::new(strategy.name());
    let mut agg = EventAggregate::new();
    let mut inner = TeeSink {
        first: &mut agg,
        second: &mut bridge,
    };
    let mut tee = TeeSink {
        first: &mut inner,
        second: &mut mbridge,
    };
    let summary = Experiment::new(runs, seed)
        .run_observed(&setup, &job, strategy.as_ref(), &mut tee)
        .map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    if let Some(session) = session {
        export_trace(
            &session.finish(),
            trace_path,
            profile,
            profile_json,
            &mut out,
        )?;
    }
    if let (Some(session), Some(path)) = (metrics_session, metrics_path) {
        export_metrics(&session.finish(), path, &mut out)?;
    }
    let _ = writeln!(
        out,
        "{} | {} | slack {slack:.0}% | {runs} runs",
        summary.strategy, summary.job
    );
    let _ = writeln!(
        out,
        "  normalized cost : {:.3} (savings {:.1}%)",
        summary.normalized_cost,
        summary.savings_pct()
    );
    let _ = writeln!(out, "  missed deadlines: {:.1}%", summary.missed_pct);
    let _ = writeln!(
        out,
        "  cost            : ${:.2} mean, ${:.2} p95, ±${:.2} stddev",
        summary.mean_cost, summary.cost_p95, summary.cost_stddev
    );
    let _ = writeln!(
        out,
        "  evictions/run   : {:.2} | mean finish {:.0}s (deadline {:.0}s)",
        summary.mean_evictions, summary.mean_finish, job.deadline
    );
    if faulted {
        let _ = writeln!(
            out,
            "  fault injection : {} degradations ({} fallbacks), {} I/O retries absorbed",
            agg.degraded, agg.fallbacks, agg.retries
        );
    }
    Ok(out)
}

fn cmd_explain(opts: &Options) -> Result<String> {
    let job_kind = parse_job(opts)?;
    let slack: f64 = opts.get_or("slack", 50.0)?;
    let seed: u64 = opts.get_or("seed", 42)?;
    let at_hours: f64 = opts.get_or("at", 24.0)?;
    let work: f64 = opts.get_or("work", 1.0)?;
    if !(0.0..=1.0).contains(&work) {
        return Err(err("--work must be in [0,1]"));
    }
    let market = load_or_generate_market(opts)?;
    let history = generate_market(&TraceGenConfig {
        seed: seed ^ 0x0C70_BE55,
        ..TraceGenConfig::default()
    })
    .map_err(|e| err(e.to_string()))?;
    let models = derive_eviction_models(&history, 24.0 * 3600.0, 2000, seed)
        .map_err(|e| err(e.to_string()))?;
    let setup = SimulationSetup::new(&market, &models);
    let job = job_kind
        .description(slack, ReloadMode::Fast)
        .map_err(|e| err(e.to_string()))?;
    let candidates = build_decision_candidates(&setup, &job, at_hours * 3600.0, false)
        .map_err(|e| err(e.to_string()))?;
    let ctx = DecisionContext {
        now: 0.0,
        deadline: job.deadline,
        work_left: work,
        t_boot: job.t_boot,
        candidates: &candidates,
        current: None,
        save_retry_factor: 0.0,
    };
    let report = explain(&ctx, &EcParams::default()).map_err(|e| err(e.to_string()))?;
    Ok(report.to_string())
}

fn cmd_partition(opts: &Options) -> Result<String> {
    let input = opts
        .get("input")
        .ok_or_else(|| err("partition: --input EDGELIST is required"))?;
    let k: u32 = opts.get_or("parts", 0)?;
    if k == 0 {
        return Err(err("partition: --parts K is required"));
    }
    let seed: u64 = opts.get_or("seed", 42)?;
    let g = load_graph(input)?;
    let algorithm = opts.get("algorithm").unwrap_or("multilevel");
    let partitioner: Box<dyn Partitioner> = match algorithm {
        "multilevel" | "metis" => Box::new(Multilevel::with_seed(seed)),
        "fennel" => Box::new(Fennel::new()),
        "ldg" => Box::new(Ldg::new()),
        "hash" => Box::new(HashPartitioner),
        other => return Err(err(format!("unknown algorithm {other:?}"))),
    };
    let p = partitioner
        .partition(&g, k)
        .map_err(|e| err(e.to_string()))?;
    let loads = p.part_loads(&Balance::Edges.loads(&g));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} vertices, {} edges → {k} parts via {}",
        input,
        g.num_vertices(),
        g.num_edges(),
        partitioner.name()
    );
    let _ = writeln!(
        out,
        "  edge cut : {:.2}%",
        100.0 * edge_cut_fraction(&g, &p)
    );
    let _ = writeln!(out, "  imbalance: {:.3}", imbalance(&loads));
    if let Some(path) = opts.get("out") {
        let text: String = p
            .assignment()
            .iter()
            .enumerate()
            .map(|(v, part)| format!("{v} {part}\n"))
            .collect();
        std::fs::write(path, text).map_err(|e| err(format!("write {path}: {e}")))?;
        let _ = writeln!(out, "  assignment written to {path}");
    }
    Ok(out)
}

fn cmd_run(opts: &Options) -> Result<String> {
    let input = opts
        .get("input")
        .ok_or_else(|| err("run: --input EDGELIST is required"))?;
    let g = load_graph(input)?;
    let workers: u32 = opts.get_or("workers", 4)?;
    let p = HashPartitioner
        .partition(&g, workers)
        .map_err(|e| err(e.to_string()))?;
    let app = opts.get("app").unwrap_or("pagerank");
    let trace_path = opts.get("trace");
    let profile = opts.has("profile");
    let profile_json = opts.get("profile-json");
    let metrics_path = opts.get("metrics");
    let session =
        (trace_path.is_some() || profile || profile_json.is_some()).then(obs::TraceSession::start);
    let metrics_session = metrics_path.is_some().then(hm::MetricsSession::start);
    let mut out = String::new();
    let report = match app {
        "pagerank" => {
            let iterations: usize = opts.get_or("iterations", 30)?;
            let mut e = BspEngine::new(PageRank::fixed(iterations), &g, p, EngineConfig::default())
                .map_err(|e| err(e.to_string()))?;
            let r = e.run().map_err(|e| err(e.to_string()))?;
            let mut top: Vec<(usize, f64)> = e.values().iter().copied().enumerate().collect();
            top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ranks"));
            let _ = writeln!(out, "top-5 ranked vertices:");
            for (v, rank) in top.into_iter().take(5) {
                let _ = writeln!(out, "  vertex {v:>8}  rank {rank:.6}");
            }
            r
        }
        "sssp" => {
            let source: u32 = opts.get_or("source", 0)?;
            let mut e = BspEngine::new(Sssp { source }, &g, p, EngineConfig::default())
                .map_err(|e| err(e.to_string()))?;
            let r = e.run().map_err(|e| err(e.to_string()))?;
            let reached = e.values().iter().filter(|d| d.is_finite()).count();
            let _ = writeln!(
                out,
                "reached {reached}/{} vertices from source {source}",
                g.num_vertices()
            );
            r
        }
        "coloring" => {
            let mut e = BspEngine::new(GraphColoring::default(), &g, p, EngineConfig::default())
                .map_err(|e| err(e.to_string()))?;
            let r = e.run().map_err(|e| err(e.to_string()))?;
            let colors = e.values();
            let proper = coloring_is_proper(&g, &colors);
            let _ = writeln!(
                out,
                "colors used: {} (proper: {proper})",
                color_count(&colors)
            );
            r
        }
        "wcc" => {
            let mut e = BspEngine::new(Wcc, &g, p, EngineConfig::default())
                .map_err(|e| err(e.to_string()))?;
            let r = e.run().map_err(|e| err(e.to_string()))?;
            let mut labels: Vec<u32> = e.values();
            labels.sort_unstable();
            labels.dedup();
            let _ = writeln!(out, "connected components: {}", labels.len());
            r
        }
        other => return Err(err(format!("unknown app {other:?}"))),
    };
    if let Some(session) = session {
        export_trace(
            &session.finish(),
            trace_path,
            profile,
            profile_json,
            &mut out,
        )?;
    }
    if let (Some(session), Some(path)) = (metrics_session, metrics_path) {
        export_metrics(&session.finish(), path, &mut out)?;
    }
    let _ = writeln!(
        out,
        "{app} on {workers} workers: {} supersteps, {} messages ({:.0}% remote), {:.2}s",
        report.supersteps,
        report.total_messages,
        100.0 * report.remote_messages as f64 / report.total_messages.max(1) as f64,
        report.wall_seconds
    );
    // The compute critical path (slowest worker per superstep, summed) is
    // the measured quantity that calibrates t_exec in the provisioning
    // cost model (`hourglass-sim`'s `build_configs_with_scaling`).
    let _ = writeln!(
        out,
        "  t_exec calibration: {:.3}s compute critical path ({:.3}s aggregate worker CPU)",
        report.metrics.critical_path_seconds(),
        report.metrics.total_worker_seconds()
    );
    let _ = writeln!(
        out,
        "  phase split: {:.3}s delivery, {:.3}s barrier wait (summed over workers)",
        report.metrics.total_delivery_seconds(),
        report.metrics.total_barrier_wait_seconds()
    );
    if let Some(path) = opts.get("json") {
        let dump = serde_json::to_string_pretty(&report.metrics.steps().to_vec())
            .map_err(|e| err(format!("serialize metrics: {e}")))?;
        std::fs::write(path, dump).map_err(|e| err(format!("write {path}: {e}")))?;
        let _ = writeln!(out, "  per-superstep metrics written to {path}");
    }
    Ok(out)
}

fn load_graph(path: &str) -> Result<Graph> {
    if path.ends_with(".hgg") || path.ends_with(".bin") {
        let file = std::fs::File::open(path).map_err(|e| err(format!("open {path}: {e}")))?;
        hourglass_graph::io_binary::read_binary(std::io::BufReader::new(file))
            .map_err(|e| err(e.to_string()))
    } else {
        hourglass_graph::io::read_edge_list_file(path, false).map_err(|e| err(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn options_parse_flags_and_positionals() {
        let o = Options::parse(&args("--seed 7 pos1 --runs 10 pos2")).expect("parse");
        assert_eq!(o.get("seed"), Some("7"));
        assert_eq!(o.get_or::<usize>("runs", 0).expect("parse"), 10);
        assert_eq!(o.positional(), &["pos1", "pos2"]);
        assert_eq!(o.get_or::<u64>("missing", 5).expect("default"), 5);
        assert!(Options::parse(&args("--dangling")).is_err());
        let o = Options::parse(&args("--seed notanumber")).expect("parse");
        assert!(o.get_or::<u64>("seed", 0).is_err());
        // Boolean flags consume no value.
        let o = Options::parse(&args("--profile --seed 9")).expect("parse");
        assert!(o.has("profile"));
        assert!(!o.has("trace"));
        assert_eq!(o.get("seed"), Some("9"));
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&args("help")).expect("help").contains("USAGE"));
        assert!(dispatch(&[]).expect("no args").contains("USAGE"));
        assert!(dispatch(&args("frobnicate")).is_err());
        assert!(dispatch(&args("market frobnicate")).is_err());
    }

    #[test]
    fn market_roundtrip_and_stats() {
        let dir = std::env::temp_dir().join(format!("hourglass-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("market.json");
        let path_s = path.to_str().expect("utf8").to_string();
        let msg = dispatch(&[
            "market".into(),
            "generate".into(),
            "--seed".into(),
            "3".into(),
            "--days".into(),
            "2".into(),
            "--out".into(),
            path_s.clone(),
        ])
        .expect("generate");
        assert!(msg.contains("wrote"));
        let stats =
            dispatch(&["market".into(), "stats".into(), "--market".into(), path_s]).expect("stats");
        assert!(stats.contains("r4.8xlarge"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_smoke() {
        let out = dispatch(&args(
            "simulate --job pagerank --slack 60 --runs 3 --strategy hourglass --seed 5",
        ))
        .expect("simulate");
        assert!(out.contains("normalized cost"));
        assert!(out.contains("missed deadlines: 0.0%"));
        assert!(dispatch(&args("simulate --job nope")).is_err());
        assert!(dispatch(&args("simulate --job gc --strategy nope")).is_err());
    }

    #[test]
    fn simulate_with_fault_plan_reports_degradations() {
        let out = dispatch(&args(
            "simulate --job pagerank --slack 60 --runs 4 --strategy hourglass \
             --seed 5 --fault-plan io-flaky",
        ))
        .expect("faulted simulate");
        assert!(
            out.contains("fault injection"),
            "missing fault line:\n{out}"
        );
        assert!(out.contains("missed deadlines: 0.0%"));
        assert!(dispatch(&args("simulate --job gc --runs 1 --fault-plan nope")).is_err());
    }

    #[test]
    fn explain_smoke() {
        let out = dispatch(&args("explain --job gc --slack 50 --at 12 --seed 5")).expect("explain");
        assert!(out.contains("slack"));
        assert!(out.contains("r4.8xlarge"));
        assert!(dispatch(&args("explain --job gc --work 2.0")).is_err());
    }

    #[test]
    fn partition_and_run_smoke() {
        let dir = std::env::temp_dir().join(format!("hourglass-cli2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let edges = dir.join("g.txt");
        let g = hourglass_graph::generators::erdos_renyi(200, 600, 1).expect("gen");
        hourglass_graph::io::write_edge_list_file(&g, &edges).expect("write");
        let edges_s = edges.to_str().expect("utf8").to_string();
        let assign = dir.join("parts.txt").to_str().expect("utf8").to_string();

        let out = dispatch(&args(&format!(
            "partition --input {edges_s} --parts 4 --algorithm fennel --out {assign}"
        )))
        .expect("partition");
        assert!(out.contains("edge cut"));
        assert!(std::path::Path::new(&assign).exists());

        let out = dispatch(&args(&format!(
            "run --input {edges_s} --app wcc --workers 2"
        )))
        .expect("run");
        assert!(out.contains("connected components"));

        let out = dispatch(&args(&format!(
            "run --input {edges_s} --app pagerank --iterations 5"
        )))
        .expect("run");
        assert!(out.contains("top-5"));

        assert!(dispatch(&args("partition --input /nonexistent --parts 2")).is_err());
        assert!(dispatch(&args(&format!("run --input {edges_s} --app nope"))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_with_trace_profile_and_json() {
        let dir = std::env::temp_dir().join(format!("hourglass-cli3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let edges = dir.join("g.txt");
        let g = hourglass_graph::generators::erdos_renyi(150, 400, 2).expect("gen");
        hourglass_graph::io::write_edge_list_file(&g, &edges).expect("write");
        let edges_s = edges.to_str().expect("utf8").to_string();
        let trace = dir.join("trace.json").to_str().expect("utf8").to_string();
        let json = dir.join("steps.json").to_str().expect("utf8").to_string();

        let out = dispatch(&args(&format!(
            "run --input {edges_s} --app pagerank --iterations 3 --workers 2 \
             --trace {trace} --profile --json {json}"
        )))
        .expect("traced run");
        assert!(
            out.contains("trace written to"),
            "missing export note: {out}"
        );
        assert!(out.contains("phase split"), "missing phase report: {out}");
        assert!(out.contains("per-superstep metrics written"));

        // The exported file is a valid Chrome trace with engine spans.
        let text = std::fs::read_to_string(&trace).expect("trace file");
        let events = obs::chrome::parse_chrome_trace(&text).expect("valid chrome trace");
        assert!(events.iter().any(|e| e.name == "superstep"));
        assert!(events.iter().any(|e| e.name == "compute"));
        let steps = std::fs::read_to_string(&json).expect("json file");
        assert!(!steps.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_diff_gates_on_regressions() {
        let dir = std::env::temp_dir().join(format!("hourglass-cli5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let mut base = hm::bench_report::BenchReport::new("perf_e2e");
        base.config("seed", 42);
        base.phase("load", 2.0);
        base.phase("compute", 4.0);
        base.counter("supersteps", 10.0);
        let old = dir.join("old.json").to_str().expect("utf8").to_string();
        std::fs::write(&old, base.to_json()).expect("write old");

        // Identical reports: the gate passes.
        let out = dispatch(&args(&format!("bench-diff {old} {old}"))).expect("same-report diff");
        assert!(out.contains("no regression"), "unexpected output:\n{out}");

        // An injected 20%+ slowdown in one phase trips the default gate...
        let mut slow = base.clone();
        for (name, secs) in &mut slow.phases {
            if name == "compute" {
                *secs *= 1.25;
            }
        }
        let new = dir.join("new.json").to_str().expect("utf8").to_string();
        std::fs::write(&new, slow.to_json()).expect("write new");
        let e = dispatch(&args(&format!("bench-diff {old} {new}"))).expect_err("must regress");
        assert!(
            e.message.contains("REGRESSED") && e.message.contains("compute"),
            "gate did not name the regressed phase:\n{}",
            e.message
        );

        // ...and passes under an explicitly loosened threshold.
        let out = dispatch(&args(&format!(
            "bench-diff {old} {new} --max-regression 0.5"
        )))
        .expect("loose diff");
        assert!(out.contains("no regression"));

        // Malformed inputs and bad thresholds are rejected.
        assert!(dispatch(&args(&format!("bench-diff {old}"))).is_err());
        let junk = dir.join("junk.json").to_str().expect("utf8").to_string();
        std::fs::write(&junk, "{}").expect("write junk");
        assert!(dispatch(&args(&format!("bench-diff {old} {junk}"))).is_err());
        assert!(dispatch(&args(&format!("bench-diff {old} {new} --max-regression 0"))).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_exports_metrics_snapshot() {
        let dir = std::env::temp_dir().join(format!("hourglass-cli6-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let prom = dir.join("metrics.prom").to_str().expect("utf8").to_string();
        let out = dispatch(&args(&format!(
            "simulate --job pagerank --slack 60 --runs 3 --seed 5 --metrics {prom}"
        )))
        .expect("metered simulate");
        assert!(out.contains("metrics written to"), "missing note:\n{out}");
        let text = std::fs::read_to_string(&prom).expect("metrics file");
        hm::prom::validate(&text).expect("spec-compliant exposition");
        assert!(
            text.contains("hourglass_sim_runs_total{strategy=\"Hourglass\"} 3"),
            "runs series missing:\n{text}"
        );

        // The .json spelling produces the deterministic JSON export.
        let json = dir.join("metrics.json").to_str().expect("utf8").to_string();
        dispatch(&args(&format!(
            "simulate --job pagerank --slack 60 --runs 3 --seed 5 --metrics {json}"
        )))
        .expect("metered simulate (json)");
        let text = std::fs::read_to_string(&json).expect("json file");
        hm::json::parse(&text).expect("parses");
        hm::json::validate_snapshot(&text).expect("snapshot schema");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_exports_metrics_and_profile_json() {
        let dir = std::env::temp_dir().join(format!("hourglass-cli7-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let edges = dir.join("g.txt");
        let g = hourglass_graph::generators::erdos_renyi(120, 300, 3).expect("gen");
        hourglass_graph::io::write_edge_list_file(&g, &edges).expect("write");
        let edges_s = edges.to_str().expect("utf8").to_string();
        let prom = dir.join("run.prom").to_str().expect("utf8").to_string();
        let pjson = dir.join("profile.json").to_str().expect("utf8").to_string();
        let out = dispatch(&args(&format!(
            "run --input {edges_s} --app pagerank --iterations 3 --workers 2 \
             --metrics {prom} --profile-json {pjson}"
        )))
        .expect("metered run");
        assert!(out.contains("metrics written to"));
        assert!(out.contains("profile json written to"));
        let text = std::fs::read_to_string(&prom).expect("metrics file");
        hm::prom::validate(&text).expect("spec-compliant exposition");
        assert!(
            text.contains("hourglass_engine_supersteps_total"),
            "engine families missing:\n{text}"
        );
        let profile = std::fs::read_to_string(&pjson).expect("profile file");
        assert!(profile.starts_with("{\"schema\":\"hourglass-profile/v1\""));
        assert!(profile.contains("\"superstep\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_with_trace_exports_decision_timeline() {
        let dir = std::env::temp_dir().join(format!("hourglass-cli4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let trace = dir.join("sim.json").to_str().expect("utf8").to_string();
        let out = dispatch(&args(&format!(
            "simulate --job pagerank --slack 60 --runs 2 --seed 5 --trace {trace}"
        )))
        .expect("traced simulate");
        assert!(out.contains("trace written to"));
        let text = std::fs::read_to_string(&trace).expect("trace file");
        let events = obs::chrome::parse_chrome_trace(&text).expect("valid chrome trace");
        assert!(
            events.iter().any(|e| e.cat == "sim"),
            "no decision-loop events in trace"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
