//! Plain-text edge-list reading and writing.
//!
//! The on-disk format is the whitespace-separated edge list used by SNAP and
//! the paper's datasets: one `u v` pair per line, `#`-prefixed comment lines
//! ignored. Vertex ids must be dense (`0..n`); [`read_edge_list`] infers `n`
//! as `max id + 1`.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::{GraphError, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads an undirected graph from an edge-list reader.
pub fn read_edge_list<R: Read>(reader: R, directed: bool) -> Result<Graph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_id(it.next(), idx + 1)?;
        let v = parse_id(it.next(), idx + 1)?;
        max_id = max_id.max(u).max(v);
        if max_id > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: idx + 1,
                message: format!("vertex id {max_id} exceeds u32 range"),
            });
        }
        edges.push((u as VertexId, v as VertexId));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = if directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    };
    b.extend_edges(edges);
    b.build()
}

fn parse_id(tok: Option<&str>, line: usize) -> Result<u64> {
    let tok = tok.ok_or(GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    tok.parse::<u64>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad vertex id {tok:?}: {e}"),
    })
}

/// Reads an undirected graph from an edge-list file.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, directed: bool) -> Result<Graph> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, directed)
}

/// Writes a graph as an edge list (one logical edge per line).
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# hourglass edge list: {} vertices, {} edges, directed={}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.is_directed()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to an edge-list file.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let f = std::fs::File::create(path)?;
    write_edge_list(graph, f)
}

/// Serialized byte size of a graph in this format (used by the loader cost
/// models to compute "bytes read from the datastore").
pub fn edge_list_byte_size(graph: &Graph) -> u64 {
    // Average of ~14 bytes per "u v\n" line at the scales we use.
    graph.edges().map(|(u, v)| digits(u) + digits(v) + 2).sum()
}

fn digits(v: VertexId) -> u64 {
    let mut v = v;
    let mut d = 1;
    while v >= 10 {
        v /= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_undirected() {
        let g = generators::erdos_renyi(100, 400, 1).expect("gen");
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let g2 = read_edge_list(&buf[..], false).expect("read");
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# a comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(text.as_bytes(), false).expect("read");
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_errors_reported_with_line() {
        let err = read_edge_list("0 1\nx y\n".as_bytes(), false).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let err = read_edge_list("0\n".as_bytes(), false).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes(), false).expect("read");
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn byte_size_counts_digits() {
        let mut b = GraphBuilder::undirected(12);
        b.add_edge(0, 11);
        let g = b.build().expect("build");
        // "0 11\n" = 1 + 2 + 2.
        assert_eq!(edge_list_byte_size(&g), 5);
    }

    #[test]
    fn directed_roundtrip() {
        let text = "0 1\n1 0\n2 0\n";
        let g = read_edge_list(text.as_bytes(), true).expect("read");
        assert_eq!(g.num_edges(), 3);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).expect("write");
        let g2 = read_edge_list(&buf[..], true).expect("read");
        assert_eq!(g, g2);
    }
}
