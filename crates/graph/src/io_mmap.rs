//! Memory-mapped backing for the sharded arc store (`HGS2`/`HGS1`).
//!
//! [`MappedShards`] is the zero-copy sibling of
//! [`ShardedArcs`](crate::io_binary::ShardedArcs): instead of reading the
//! whole store into a heap slab, the file is mapped and `bucket_bytes`
//! returns a slice straight into the page cache. Opening costs one
//! metadata checksum over the header/counts/CRC sections (a few KB);
//! payload bytes are only faulted in when a loader actually decodes them,
//! so graphs larger than RAM stay loadable and a warm-cache reload runs at
//! memory bandwidth instead of copy bandwidth.
//!
//! Integrity semantics differ deliberately from the buffered reader:
//! `ShardedArcs::read_from` checksums every bucket up front (it touches
//! every byte anyway while copying); the mapped store verifies the
//! metadata eagerly and the bucket payloads lazily through
//! [`MappedShards::verify_bucket`] / [`MappedShards::verify_all`], so the
//! open stays O(header) and callers that need end-to-end payload
//! verification (fault-injection reload paths) opt in per bucket.
//!
//! The `mmap` cargo feature (default on) selects the real `memmap2`
//! mapping; without it the same API is served by a buffered read into an
//! owned buffer, so non-mmap targets and dependency-free builds keep
//! working. The offline verify harness supplies a vendored `memmap2` stub
//! implementing the mapping via raw syscalls, so measurements made under
//! the harness exercise the true page-cache path.

use crate::crc32c::{crc32c, crc32c_append};
use crate::io_binary::{ShardedArcs, ARC_BYTES};
use crate::{GraphError, Result};
use hourglass_obs as obs;
use std::path::Path;

const SHARD_MAGIC_V1: &[u8; 4] = b"HGS1";
const SHARD_MAGIC_V2: &[u8; 4] = b"HGS2";
const HEADER_BYTES: usize = 4 + 4 + 4 + 8;

#[cfg(feature = "mmap")]
mod backing {
    use std::fs::File;
    use std::io;

    /// Page-cache-backed bytes of an open store file.
    pub(super) struct Backing(memmap2::Mmap);

    /// Human-readable backing kind, surfaced in traces.
    pub(super) const KIND: &str = "mmap";

    impl Backing {
        pub(super) fn load(file: &File) -> io::Result<Self> {
            // SAFETY: the mapping is read-only and store files are
            // write-once: nothing in this workspace mutates an HGS file
            // after it is published. Concurrent external mutation is
            // outside the supported contract (the buffered reader has the
            // same torn-read caveat, just with a smaller window).
            #[allow(unsafe_code)]
            let map = unsafe { memmap2::Mmap::map(file)? };
            Ok(Backing(map))
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            &self.0
        }
    }
}

#[cfg(not(feature = "mmap"))]
mod backing {
    use std::fs::File;
    use std::io::{self, Read};

    /// Buffered fallback: the whole file read into an owned buffer. Same
    /// API as the mapped backing, minus the page-cache economics.
    pub(super) struct Backing(Vec<u8>);

    /// Human-readable backing kind, surfaced in traces.
    pub(super) const KIND: &str = "buffered";

    impl Backing {
        pub(super) fn load(file: &File) -> io::Result<Self> {
            let mut buf = Vec::new();
            let mut file = file;
            file.read_to_end(&mut buf)?;
            Ok(Backing(buf))
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            &self.0
        }
    }
}

/// A sharded arc store served directly from a mapped `HGS2`/`HGS1` file.
///
/// Mirrors the read-side API of [`ShardedArcs`]; `bucket_bytes` is a slice
/// of the mapping rather than of a heap slab.
pub struct MappedShards {
    data: backing::Backing,
    num_vertices: u32,
    /// Exclusive prefix ends, in arcs (same convention as `ShardedArcs`).
    arc_ends: Vec<u64>,
    /// Byte offset of the bucket-major payload within the file.
    payload_off: usize,
    /// Byte offset of the per-bucket CRC section (`None` for v1 files,
    /// which carry no trailer).
    crc_off: Option<usize>,
}

impl MappedShards {
    /// Opens and maps a sharded store file.
    ///
    /// The header, bucket counts and (for `HGS2`) the metadata checksum
    /// are validated eagerly; bucket payloads are not touched. The file
    /// length must match the layout exactly.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = std::fs::File::open(path.as_ref())?;
        let data = backing::Backing::load(&file)?;
        let _span = obs::span("shard_store_map", "io")
            .arg("bytes", data.as_slice().len() as u64)
            .arg("mapped", u64::from(backing::KIND == "mmap"));
        Self::parse(data)
    }

    fn parse(data: backing::Backing) -> Result<Self> {
        let bytes = data.as_slice();
        let fail = |message: String| GraphError::Parse { line: 0, message };
        if bytes.len() < HEADER_BYTES {
            return Err(fail(format!("file too short for header: {}", bytes.len())));
        }
        let checked = if &bytes[..4] == SHARD_MAGIC_V2 {
            true
        } else if &bytes[..4] == SHARD_MAGIC_V1 {
            false
        } else {
            return Err(fail(format!(
                "bad magic {:?}, expected {SHARD_MAGIC_V2:?} or {SHARD_MAGIC_V1:?}",
                &bytes[..4]
            )));
        };
        let num_vertices = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        let b = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let m = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload_off = HEADER_BYTES
            .checked_add(
                b.checked_mul(8)
                    .ok_or_else(|| fail("bucket count overflow".into()))?,
            )
            .ok_or_else(|| fail("bucket count overflow".into()))?;
        if bytes.len() < payload_off {
            return Err(fail(format!("file too short for {b} bucket counts")));
        }
        let mut arc_ends = Vec::with_capacity(b);
        let mut acc = 0u64;
        for count in bytes[HEADER_BYTES..payload_off].chunks_exact(8) {
            acc = acc
                .checked_add(u64::from_le_bytes(count.try_into().expect("8 bytes")))
                .ok_or_else(|| fail("bucket counts overflow".into()))?;
            arc_ends.push(acc);
        }
        if acc != m {
            return Err(fail(format!(
                "bucket counts sum to {acc}, header says {m} arcs"
            )));
        }
        let payload_len = (m as usize)
            .checked_mul(ARC_BYTES)
            .ok_or_else(|| fail(format!("arc count {m} overflows payload size")))?;
        let trailer_len = if checked { 4 * b + 4 } else { 0 };
        let want = payload_off
            .checked_add(payload_len)
            .and_then(|x| x.checked_add(trailer_len))
            .ok_or_else(|| fail(format!("arc count {m} overflows payload size")))?;
        if bytes.len() != want {
            return Err(fail(format!(
                "file is {} bytes, layout says {want} ({m} arcs, {b} buckets)",
                bytes.len()
            )));
        }
        let crc_off = checked.then_some(payload_off + payload_len);
        if let Some(crc_off) = crc_off {
            // Metadata checksum covers magic+header+counts+bucket-crcs —
            // the same byte stream the writer hashed, but streamed over
            // the mapping instead of reassembled.
            let got = crc32c_append(
                crc32c(&bytes[..payload_off]),
                &bytes[crc_off..crc_off + 4 * b],
            );
            let want = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
            if got != want {
                return Err(fail(format!(
                    "metadata checksum mismatch: stored {want:#010x}, computed {got:#010x}"
                )));
            }
        }
        Ok(MappedShards {
            data,
            num_vertices,
            arc_ends,
            payload_off,
            crc_off,
        })
    }

    /// Number of vertices the arc ids index into.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of buckets.
    #[inline]
    pub fn num_buckets(&self) -> u32 {
        self.arc_ends.len() as u32
    }

    /// Total number of arcs across all buckets.
    #[inline]
    pub fn num_arcs(&self) -> u64 {
        self.arc_ends.last().copied().unwrap_or(0)
    }

    /// Raw byte slice of bucket `b` — a window into the page cache (or the
    /// owned fallback buffer).
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn bucket_bytes(&self, b: u32) -> &[u8] {
        let start = if b == 0 {
            0
        } else {
            self.arc_ends[b as usize - 1] as usize * ARC_BYTES
        };
        let end = self.arc_ends[b as usize] as usize * ARC_BYTES;
        &self.data.as_slice()[self.payload_off + start..self.payload_off + end]
    }

    /// Number of arcs in bucket `b`.
    #[inline]
    pub fn bucket_len(&self, b: u32) -> u64 {
        let start = if b == 0 {
            0
        } else {
            self.arc_ends[b as usize - 1]
        };
        self.arc_ends[b as usize] - start
    }

    /// The whole bucket-major payload.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.data.as_slice()
            [self.payload_off..self.payload_off + self.num_arcs() as usize * ARC_BYTES]
    }

    /// Payload size in bytes (what the loaders account as "read").
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.num_arcs() as usize * ARC_BYTES
    }

    /// Verifies bucket `b`'s payload against its stored CRC32C.
    ///
    /// Faults the bucket in and checksums it — the lazy counterpart of the
    /// up-front verification `ShardedArcs::read_from` performs. Legacy v1
    /// files carry no trailer and verify vacuously, matching the buffered
    /// reader.
    pub fn verify_bucket(&self, b: u32) -> Result<()> {
        let Some(crc_off) = self.crc_off else {
            return Ok(());
        };
        let at = crc_off + b as usize * 4;
        let want = u32::from_le_bytes(
            self.data.as_slice()[at..at + 4]
                .try_into()
                .expect("4 bytes"),
        );
        let got = crc32c(self.bucket_bytes(b));
        if got != want {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "bucket {b} checksum mismatch: stored {want:#010x}, computed {got:#010x}"
                ),
            });
        }
        Ok(())
    }

    /// Verifies every bucket payload (full-file integrity check).
    pub fn verify_all(&self) -> Result<()> {
        for b in 0..self.num_buckets() {
            self.verify_bucket(b)?;
        }
        Ok(())
    }

    /// Copies the mapped store into an owned [`ShardedArcs`] (tools/tests).
    pub fn to_sharded(&self) -> Result<ShardedArcs> {
        let mut buf = Vec::with_capacity(self.payload_bytes() + 64);
        let owned = ShardedArcsView(self);
        owned.write_v2(&mut buf)?;
        ShardedArcs::read_from(&buf[..])
    }
}

/// Serialization shim so `to_sharded` reuses the canonical reader instead
/// of poking at `ShardedArcs` internals.
struct ShardedArcsView<'a>(&'a MappedShards);

impl ShardedArcsView<'_> {
    fn write_v2(&self, out: &mut Vec<u8>) -> Result<()> {
        let s = self.0;
        out.extend_from_slice(SHARD_MAGIC_V2);
        out.extend_from_slice(&s.num_vertices.to_le_bytes());
        out.extend_from_slice(&s.num_buckets().to_le_bytes());
        out.extend_from_slice(&s.num_arcs().to_le_bytes());
        let mut prev = 0u64;
        for &end in &s.arc_ends {
            out.extend_from_slice(&(end - prev).to_le_bytes());
            prev = end;
        }
        out.extend_from_slice(s.payload());
        let header_end = out.len() - s.payload_bytes();
        let mut crcs = Vec::with_capacity(4 * s.arc_ends.len());
        for b in 0..s.num_buckets() {
            crcs.extend_from_slice(&crc32c(s.bucket_bytes(b)).to_le_bytes());
        }
        out.extend_from_slice(&crcs);
        let meta = crc32c_append(crc32c(&out[..header_end]), &crcs);
        out.extend_from_slice(&meta.to_le_bytes());
        Ok(())
    }
}

impl std::fmt::Debug for MappedShards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedShards")
            .field("backing", &backing::KIND)
            .field("num_vertices", &self.num_vertices)
            .field("num_buckets", &self.num_buckets())
            .field("num_arcs", &self.num_arcs())
            .field("checked", &self.crc_off.is_some())
            .finish()
    }
}

impl PartialEq<ShardedArcs> for MappedShards {
    fn eq(&self, other: &ShardedArcs) -> bool {
        self.num_vertices == other.num_vertices()
            && self.num_buckets() == other.num_buckets()
            && (0..self.num_buckets()).all(|b| self.bucket_len(b) == other.bucket_len(b))
            && self.payload() == other.payload()
    }
}

impl PartialEq for MappedShards {
    fn eq(&self, other: &Self) -> bool {
        self.num_vertices == other.num_vertices
            && self.arc_ends == other.arc_ends
            && self.payload() == other.payload()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::io::Write;

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hourglass-io-mmap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        p
    }

    fn write_store(s: &ShardedArcs, tag: &str) -> std::path::PathBuf {
        let path = tmp_path(tag);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
        s.write_to(&mut f).expect("write");
        f.flush().expect("flush");
        path
    }

    #[test]
    fn mapped_matches_owned_store() {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 21).expect("gen");
        let buckets: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 5).collect();
        let s = ShardedArcs::from_graph_buckets(&g, &buckets, 5).expect("shard");
        let path = write_store(&s, "match");
        let m = MappedShards::open(&path).expect("open");
        assert_eq!(m.num_vertices(), s.num_vertices());
        assert_eq!(m.num_buckets(), s.num_buckets());
        assert_eq!(m.num_arcs(), s.num_arcs());
        assert_eq!(m.payload_bytes(), s.payload_bytes());
        for b in 0..s.num_buckets() {
            assert_eq!(m.bucket_bytes(b), s.bucket_bytes(b));
            assert_eq!(m.bucket_len(b), s.bucket_len(b));
        }
        assert!(m == s, "PartialEq<ShardedArcs>");
        m.verify_all().expect("payload checksums hold");
        assert_eq!(m.to_sharded().expect("roundtrip"), s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_reads_legacy_v1() {
        let g = generators::erdos_renyi(30, 60, 3).expect("gen");
        let s = ShardedArcs::flat_from_graph(&g);
        let path = tmp_path("v1");
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create"));
        s.write_to_v1(&mut f).expect("write v1");
        f.flush().expect("flush");
        let m = MappedShards::open(&path).expect("open v1");
        assert!(m == s);
        // v1 carries no trailer: verification is vacuous, like read_from.
        m.verify_all().expect("v1 verifies vacuously");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_metadata_corruption_eagerly() {
        let g = generators::erdos_renyi(20, 40, 7).expect("gen");
        let buckets: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let s = ShardedArcs::from_graph_buckets(&g, &buckets, 3).expect("shard");
        let path = write_store(&s, "meta");
        let good = std::fs::read(&path).expect("read back");
        // Flip a bucket-count byte: caught by the metadata CRC at open.
        let mut bad = good.clone();
        bad[HEADER_BYTES] ^= 1;
        std::fs::write(&path, &bad).expect("rewrite");
        assert!(MappedShards::open(&path).is_err(), "count corruption");
        // Truncate: caught by the exact-length check.
        std::fs::write(&path, &good[..good.len() - 1]).expect("rewrite");
        assert!(MappedShards::open(&path).is_err(), "truncation");
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).expect("rewrite");
        assert!(MappedShards::open(&path).is_err(), "bad magic");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn payload_corruption_is_caught_lazily() {
        let g = generators::erdos_renyi(25, 50, 9).expect("gen");
        let buckets: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 4).collect();
        let s = ShardedArcs::from_graph_buckets(&g, &buckets, 4).expect("shard");
        let path = write_store(&s, "payload");
        let mut bytes = std::fs::read(&path).expect("read back");
        // Find a non-empty bucket and flip one payload byte inside it.
        let b = (0..4)
            .find(|&b| s.bucket_len(b) > 0)
            .expect("non-empty bucket");
        let bucket_start = (0..b).map(|i| s.bucket_bytes(i).len()).sum::<usize>();
        let off = HEADER_BYTES + 8 * 4 + bucket_start;
        bytes[off] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");
        // Open succeeds: payload is outside the eager metadata check.
        let m = MappedShards::open(&path).expect("open");
        assert!(m.verify_bucket(b).is_err(), "corrupt bucket detected");
        assert!(m.verify_all().is_err());
        // Sibling buckets still verify.
        for other in (0..4).filter(|&o| o != b) {
            m.verify_bucket(other).expect("untouched bucket");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_maps() {
        let g = crate::GraphBuilder::undirected(3).build().expect("build");
        let s = ShardedArcs::flat_from_graph(&g);
        let path = write_store(&s, "empty");
        let m = MappedShards::open(&path).expect("open");
        assert_eq!(m.num_arcs(), 0);
        assert_eq!(m.bucket_bytes(0), &[] as &[u8]);
        assert!(m == s);
        std::fs::remove_file(&path).ok();
    }
}
