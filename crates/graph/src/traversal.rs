//! Graph traversals: BFS/DFS orders and distance maps.
//!
//! Used by the partitioners' region growing, by tests as reference
//! implementations for the BSP apps, and by the dataset tooling.

use crate::csr::{Graph, VertexId};
use std::collections::VecDeque;

/// Breadth-first search from `source`; returns the distance of every
/// vertex (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    if (source as usize) >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The vertices reachable from `source`, in BFS order (including the
/// source itself).
pub fn bfs_order(g: &Graph, source: VertexId) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    if (source as usize) >= n {
        return order;
    }
    let mut queue = VecDeque::new();
    seen[source as usize] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order
}

/// Iterative depth-first preorder from `source`.
pub fn dfs_order(g: &Graph, source: VertexId) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::new();
    if (source as usize) >= n {
        return order;
    }
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if seen[v as usize] {
            continue;
        }
        seen[v as usize] = true;
        order.push(v);
        // Push in reverse so the smallest neighbor is visited first.
        for &u in g.neighbors(v).iter().rev() {
            if !seen[u as usize] {
                stack.push(u);
            }
        }
    }
    order
}

/// Single-source shortest distances as `f64` (a reference implementation
/// for validating the BSP SSSP app on unit-weight graphs).
pub fn reference_sssp(g: &Graph, source: VertexId) -> Vec<f64> {
    bfs_distances(g, source)
        .into_iter()
        .map(|d| {
            if d == u32::MAX {
                f64::INFINITY
            } else {
                d as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> Graph {
        // 0-1-2 path plus isolated 3.
        let mut b = GraphBuilder::undirected(4);
        b.extend_edges([(0, 1), (1, 2)]);
        b.build().expect("build")
    }

    #[test]
    fn bfs_distances_basic() {
        let g = sample();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, u32::MAX]);
        assert_eq!(bfs_distances(&g, 1), vec![1, 0, 1, u32::MAX]);
    }

    #[test]
    fn bfs_order_visits_component_once() {
        let g = sample();
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2]);
        assert_eq!(bfs_order(&g, 3), vec![3]);
    }

    #[test]
    fn dfs_order_preorder() {
        let mut b = GraphBuilder::undirected(5);
        // Star around 0.
        b.extend_edges([(0, 1), (0, 2), (0, 3), (0, 4)]);
        let g = b.build().expect("build");
        let order = dfs_order(&g, 0);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
        assert_eq!(order[1], 1, "smallest neighbor first");
    }

    #[test]
    fn out_of_range_source_is_empty() {
        let g = sample();
        assert!(bfs_order(&g, 99).is_empty());
        assert!(dfs_order(&g, 99).is_empty());
        assert!(bfs_distances(&g, 99).iter().all(|&d| d == u32::MAX));
    }

    #[test]
    fn reference_sssp_matches_bfs() {
        let g = sample();
        let d = reference_sssp(&g, 0);
        assert_eq!(d[2], 2.0);
        assert!(d[3].is_infinite());
    }
}
