//! Immutable compressed-sparse-row graph representation.

use crate::{GraphError, Result};

/// Identifier of a vertex; graphs are limited to `u32::MAX` vertices.
pub type VertexId = u32;

/// An immutable graph in compressed-sparse-row (CSR) form.
///
/// For undirected graphs every edge `{u, v}` is stored twice (once in each
/// adjacency list); [`Graph::num_edges`] reports the logical (undirected)
/// edge count while [`Graph::num_directed_edges`] reports the number of
/// stored arcs.
///
/// Vertex and edge weights are optional; when absent every weight is `1`.
/// Weighted graphs arise from the micro-partition quotient graphs of the
/// fast-reload mechanism (§6 of the paper), where vertex weights carry the
/// size of each micro-partition and edge weights the number of crossing
/// edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) targets: Vec<VertexId>,
    pub(crate) edge_weights: Option<Vec<u64>>,
    pub(crate) vertex_weights: Option<Vec<u64>>,
    pub(crate) directed: bool,
}

impl Graph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// `offsets` must have length `n + 1`, start at `0`, be non-decreasing
    /// and end at `targets.len()`; every target must be `< n`. Weight
    /// vectors, when given, must match `targets.len()` / `n` respectively.
    pub fn from_csr(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        edge_weights: Option<Vec<u64>>,
        vertex_weights: Option<Vec<u64>>,
        directed: bool,
    ) -> Result<Self> {
        if offsets.is_empty() || offsets[0] != 0 {
            return Err(GraphError::InvalidParameter(
                "offsets must be non-empty and start at 0".into(),
            ));
        }
        if *offsets.last().expect("non-empty") != targets.len() {
            return Err(GraphError::InvalidParameter(
                "last offset must equal targets.len()".into(),
            ));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::InvalidParameter(
                "offsets must be non-decreasing".into(),
            ));
        }
        let n = offsets.len() - 1;
        if let Some(&bad) = targets.iter().find(|&&t| (t as usize) >= n) {
            return Err(GraphError::VertexOutOfRange {
                vertex: bad as u64,
                num_vertices: n as u64,
            });
        }
        if let Some(ref ew) = edge_weights {
            if ew.len() != targets.len() {
                return Err(GraphError::InvalidParameter(
                    "edge_weights length must equal targets length".into(),
                ));
            }
        }
        if let Some(ref vw) = vertex_weights {
            if vw.len() != n {
                return Err(GraphError::InvalidParameter(
                    "vertex_weights length must equal vertex count".into(),
                ));
            }
        }
        Ok(Graph {
            offsets,
            targets,
            edge_weights,
            vertex_weights,
            directed,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Logical number of edges (undirected edges counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.targets.len()
        } else {
            self.targets.len() / 2
        }
    }

    /// Number of stored arcs (adjacency entries).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbors of `v` (out-neighbors for directed graphs).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The weights of the edges leaving `v`, aligned with [`Graph::neighbors`].
    ///
    /// Returns `None` when the graph is unweighted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> Option<&[u64]> {
        let v = v as usize;
        self.edge_weights
            .as_ref()
            .map(|w| &w[self.offsets[v]..self.offsets[v + 1]])
    }

    /// Weight of vertex `v` (`1` when the graph carries no vertex weights).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn vertex_weight(&self, v: VertexId) -> u64 {
        match &self.vertex_weights {
            Some(w) => w[v as usize],
            None => 1,
        }
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        match &self.vertex_weights {
            Some(w) => w.iter().sum(),
            None => self.num_vertices() as u64,
        }
    }

    /// Sum of the weights of all stored arcs.
    pub fn total_arc_weight(&self) -> u64 {
        match &self.edge_weights {
            Some(w) => w.iter().sum(),
            None => self.num_directed_edges() as u64,
        }
    }

    /// Iterates over all stored arcs as `(source, target, weight)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId, u64)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            let start = self.offsets[u];
            let end = self.offsets[u + 1];
            (start..end).map(move |i| {
                let w = self.edge_weights.as_ref().map_or(1, |ws| ws[i]);
                (u as VertexId, self.targets[i], w)
            })
        })
    }

    /// Iterates over logical edges: for undirected graphs each `{u, v}` is
    /// yielded once with `u <= v`; for directed graphs this is the same as
    /// [`Graph::arcs`] without weights.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        let directed = self.directed;
        self.arcs()
            .filter(move |&(u, v, _)| directed || u <= v)
            .map(|(u, v, _)| (u, v))
    }

    /// True if the adjacency list of every vertex is sorted (useful for
    /// binary-search adjacency tests).
    pub fn is_sorted(&self) -> bool {
        (0..self.num_vertices()).all(|u| {
            self.neighbors(u as VertexId)
                .windows(2)
                .all(|w| w[0] <= w[1])
        })
    }

    /// Whether edge `(u, v)` exists; `O(log d(u))` when sorted, `O(d(u))`
    /// otherwise.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let nbrs = self.neighbors(u);
        if nbrs.len() > 16 && self.is_sorted_vertex(u) {
            nbrs.binary_search(&v).is_ok()
        } else {
            nbrs.contains(&v)
        }
    }

    fn is_sorted_vertex(&self, u: VertexId) -> bool {
        self.neighbors(u).windows(2).all(|w| w[0] <= w[1])
    }

    /// Approximate in-memory size in bytes (CSR arrays only).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.edge_weights.as_ref().map_or(0, |w| w.len() * 8)
            + self.vertex_weights.as_ref().map_or(0, |w| w.len() * 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        // Undirected triangle 0-1-2.
        Graph::from_csr(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1], None, None, false)
            .expect("valid csr")
    }

    #[test]
    fn triangle_counts() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn logical_edges_dedup_undirected() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn directed_edges_kept() {
        let g = Graph::from_csr(vec![0, 1, 2, 2], vec![1, 0], None, None, true).expect("valid");
        assert_eq!(g.num_edges(), 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(Graph::from_csr(vec![1, 2], vec![0], None, None, false).is_err());
        assert!(Graph::from_csr(vec![0, 2], vec![0], None, None, false).is_err());
        assert!(Graph::from_csr(vec![0, 2, 1], vec![0, 0], None, None, false).is_err());
    }

    #[test]
    fn rejects_out_of_range_target() {
        let err = Graph::from_csr(vec![0, 1], vec![5], None, None, true).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn rejects_mismatched_weights() {
        assert!(
            Graph::from_csr(vec![0, 1], vec![0], Some(vec![1, 2]), None, true).is_err(),
            "edge weight length mismatch must be rejected"
        );
        assert!(
            Graph::from_csr(vec![0, 1], vec![0], None, Some(vec![1, 2]), true).is_err(),
            "vertex weight length mismatch must be rejected"
        );
    }

    #[test]
    fn weights_default_to_one() {
        let g = triangle();
        assert_eq!(g.vertex_weight(0), 1);
        assert_eq!(g.total_vertex_weight(), 3);
        assert_eq!(g.total_arc_weight(), 6);
        assert!(g.neighbor_weights(0).is_none());
    }

    #[test]
    fn weighted_accessors() {
        let g = Graph::from_csr(
            vec![0, 1, 2],
            vec![1, 0],
            Some(vec![7, 7]),
            Some(vec![3, 4]),
            false,
        )
        .expect("valid");
        assert_eq!(g.vertex_weight(1), 4);
        assert_eq!(g.total_vertex_weight(), 7);
        assert_eq!(g.neighbor_weights(0), Some(&[7u64][..]));
        assert_eq!(g.total_arc_weight(), 14);
    }

    #[test]
    fn has_edge_small_and_sorted() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 0));
        // Large sorted adjacency exercises the binary-search path.
        let n = 64u32;
        let targets: Vec<u32> = (1..n).collect();
        let mut offsets = vec![0usize, (n - 1) as usize];
        offsets.extend(std::iter::repeat_n((n - 1) as usize, (n - 1) as usize));
        let g = Graph::from_csr(offsets, targets, None, None, true).expect("valid");
        assert!(g.has_edge(0, 33));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(triangle().memory_bytes() > 0);
    }
}
