//! CRC32C (Castagnoli) checksums and the checkpoint payload frame.
//!
//! Torn writes and bit flips on transient storage must be *detected*, not
//! silently decoded (see `DESIGN.md` §5, fault model). This module
//! provides the software CRC32C used by both defenses:
//!
//! - the `HGS2` sharded-store trailer ([`crate::io_binary`]), and
//! - the checkpoint payload frame ([`frame`]/[`unframe`]) wrapped around
//!   every `CheckpointStore` value:
//!
//! ```text
//! magic   "HGF1"                  (4 bytes)
//! len     u64 LE, payload length
//! payload len bytes
//! crc     u32 LE, CRC32C of payload
//! ```
//!
//! [`unframe`] verifies the magic, the exact total length and the
//! checksum, so *any* single-bit flip over a framed blob — header, body
//! or trailer — is rejected.

use crate::{GraphError, Result};

/// CRC32C polynomial (Castagnoli), reflected.
const POLY: u32 = 0x82F6_3B78;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32C of `data` (initial value 0, i.e. a fresh stream).
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Extends a running CRC32C with more bytes (streamed checksumming).
#[inline]
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Magic prefix of a framed checkpoint payload.
pub const FRAME_MAGIC: &[u8; 4] = b"HGF1";

/// Fixed framing overhead in bytes (magic + length prefix + checksum).
pub const FRAME_OVERHEAD: usize = 4 + 8 + 4;

/// Wraps `payload` in a checksummed, length-prefixed frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(FRAME_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out
}

/// Verifies a frame written by [`frame`] and returns the payload slice.
///
/// Rejects (with a [`GraphError::Parse`]) a wrong magic, a total length
/// that does not match the length prefix exactly, and any checksum
/// mismatch — every single-bit corruption of the blob lands in one of the
/// three.
pub fn unframe(blob: &[u8]) -> Result<&[u8]> {
    if blob.len() < FRAME_OVERHEAD {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("frame too short: {} bytes", blob.len()),
        });
    }
    if &blob[..4] != FRAME_MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad frame magic {:?}", &blob[..4]),
        });
    }
    let len = u64::from_le_bytes(blob[4..12].try_into().expect("8 bytes")) as usize;
    if blob.len() != FRAME_OVERHEAD + len {
        return Err(GraphError::Parse {
            line: 0,
            message: format!(
                "frame length mismatch: prefix says {len}, blob holds {}",
                blob.len() - FRAME_OVERHEAD
            ),
        });
    }
    let payload = &blob[12..12 + len];
    let want = u32::from_le_bytes(blob[12 + len..].try_into().expect("4 bytes"));
    let got = crc32c(payload);
    if got != want {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("frame checksum mismatch: stored {want:#010x}, computed {got:#010x}"),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 B.4 test vectors for CRC32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn append_matches_one_shot() {
        let data = b"hourglass checkpoint payload";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32c_append(crc32c(a), b), crc32c(data));
        }
    }

    #[test]
    fn frame_round_trips() {
        for payload in [&b""[..], b"x", b"some checkpoint bytes"] {
            let blob = frame(payload);
            assert_eq!(blob.len(), payload.len() + FRAME_OVERHEAD);
            assert_eq!(unframe(&blob).expect("unframe"), payload);
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let payload: Vec<u8> = (0u8..=63).collect();
        let blob = frame(&payload);
        for bit in 0..blob.len() * 8 {
            let mut bad = blob.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(unframe(&bad).is_err(), "bit flip at {bit} went undetected");
        }
    }

    #[test]
    fn truncation_and_extension_are_detected() {
        let blob = frame(b"payload");
        assert!(unframe(&blob[..blob.len() - 1]).is_err());
        assert!(unframe(&[]).is_err());
        let mut longer = blob.clone();
        longer.push(0);
        assert!(unframe(&longer).is_err());
    }
}
