//! Registry of the paper's datasets (Table 2) and their synthetic stand-ins.
//!
//! We do not have the original crawls (the Twitter graph alone is 1.6 G
//! edges), so each dataset is represented by (a) its *paper-scale* metadata,
//! used by the modeled loading-time experiments, and (b) a deterministic
//! generator producing a structurally similar graph ~100× smaller, used
//! whenever a graph must actually be processed. See `DESIGN.md` §6.

use crate::csr::Graph;
use crate::generators::{self, RmatParams};
use crate::Result;

/// One of the paper's benchmark datasets (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Human-Gene biological network: 22 K vertices, 12.3 M edges, dense.
    HumanGene,
    /// Hollywood collaboration network: 1.07 M vertices, 56.3 M edges.
    Hollywood,
    /// Orkut social network: 3.07 M vertices, 117 M edges.
    Orkut,
    /// Wiki web-page graph: 5.12 M vertices, 104 M edges.
    Wiki,
    /// Twitter social network: 52.6 M vertices, 1.61 G edges.
    Twitter,
    /// Synthetic RMAT-N: `2^N` vertices, `2^(N+4)` edges.
    Rmat(u32),
}

impl Dataset {
    /// Every dataset used in the paper's figures, in Table 2 order.
    pub const TABLE2: [Dataset; 8] = [
        Dataset::HumanGene,
        Dataset::Hollywood,
        Dataset::Orkut,
        Dataset::Wiki,
        Dataset::Twitter,
        Dataset::Rmat(24),
        Dataset::Rmat(25),
        Dataset::Rmat(26),
    ];

    /// The datasets used in the loading-time experiment (Figure 6), in the
    /// paper's left-to-right order (size doubles between neighbors).
    pub const FIGURE6: [Dataset; 5] = [
        Dataset::Orkut,
        Dataset::Rmat(24),
        Dataset::Rmat(25),
        Dataset::Rmat(26),
        Dataset::Twitter,
    ];

    /// The datasets used in the partition-quality experiment (Figure 8).
    pub const FIGURE8: [Dataset; 5] = [
        Dataset::Orkut,
        Dataset::HumanGene,
        Dataset::Wiki,
        Dataset::Hollywood,
        Dataset::Twitter,
    ];

    /// Human-readable name matching the paper.
    pub fn name(&self) -> String {
        match self {
            Dataset::HumanGene => "Human-Gene".into(),
            Dataset::Hollywood => "Hollywood".into(),
            Dataset::Orkut => "Orkut".into(),
            Dataset::Wiki => "Wiki".into(),
            Dataset::Twitter => "Twitter".into(),
            Dataset::Rmat(n) => format!("RMAT-{n}"),
        }
    }

    /// Network type column of Table 2.
    pub fn network_type(&self) -> &'static str {
        match self {
            Dataset::HumanGene => "Biological",
            Dataset::Hollywood => "Collaboration",
            Dataset::Orkut => "Social",
            Dataset::Wiki => "Web Pages",
            Dataset::Twitter => "Social",
            Dataset::Rmat(_) => "Synthetic",
        }
    }

    /// Vertex count reported by the paper.
    pub fn paper_vertices(&self) -> u64 {
        match self {
            Dataset::HumanGene => 22_283,
            Dataset::Hollywood => 1_069_126,
            Dataset::Orkut => 3_072_626,
            Dataset::Wiki => 5_115_915,
            Dataset::Twitter => 52_579_678,
            Dataset::Rmat(n) => 1u64 << n,
        }
    }

    /// Edge count reported by the paper.
    pub fn paper_edges(&self) -> u64 {
        match self {
            Dataset::HumanGene => 12_323_680,
            Dataset::Hollywood => 56_306_653,
            Dataset::Orkut => 117_185_083,
            Dataset::Wiki => 104_591_689,
            Dataset::Twitter => 1_614_106_187,
            Dataset::Rmat(n) => 1u64 << (n + 4),
        }
    }

    /// Generates the scaled synthetic stand-in (deterministic for a given
    /// seed).
    ///
    /// Structure classes per `DESIGN.md` §6: Human-Gene → dense community
    /// graph; Hollywood → preferential attachment; Orkut/Twitter → social
    /// R-MAT; Wiki → web R-MAT; RMAT-N → R-MAT at scale `N − 7`.
    pub fn generate(&self, seed: u64) -> Result<Graph> {
        match self {
            Dataset::HumanGene => generators::community(20, 1114, 0.095, 25_000, seed),
            Dataset::Hollywood => generators::barabasi_albert(106_912, 52, seed),
            Dataset::Orkut => generators::rmat(18, 23, RmatParams::SOCIAL, seed),
            Dataset::Wiki => generators::rmat(18, 20, RmatParams::WEB, seed),
            Dataset::Twitter => generators::rmat(20, 31, RmatParams::SOCIAL, seed),
            Dataset::Rmat(n) => {
                let scaled = n.saturating_sub(7).max(8);
                generators::rmat(scaled, 16, RmatParams::SOCIAL, seed)
            }
        }
    }

    /// Generates a medium variant (~1000× smaller than the paper's graph,
    /// ~10× larger than [`Dataset::generate_tiny`]) for measured loading
    /// experiments where parse times must rise above noise.
    pub fn generate_small(&self, seed: u64) -> Result<Graph> {
        match self {
            Dataset::HumanGene => generators::community(12, 512, 0.12, 4_000, seed),
            Dataset::Hollywood => generators::barabasi_albert(24_000, 16, seed),
            Dataset::Orkut => generators::rmat(15, 16, RmatParams::SOCIAL, seed),
            Dataset::Wiki => generators::rmat(15, 14, RmatParams::WEB, seed),
            Dataset::Twitter => generators::rmat(16, 20, RmatParams::SOCIAL, seed),
            Dataset::Rmat(_) => generators::rmat(15, 16, RmatParams::SOCIAL, seed),
        }
    }

    /// Generates an extra-small variant for unit tests and quick examples
    /// (~1000× smaller than the paper's graph).
    pub fn generate_tiny(&self, seed: u64) -> Result<Graph> {
        match self {
            Dataset::HumanGene => generators::community(8, 128, 0.2, 500, seed),
            Dataset::Hollywood => generators::barabasi_albert(4096, 8, seed),
            Dataset::Orkut => generators::rmat(12, 16, RmatParams::SOCIAL, seed),
            Dataset::Wiki => generators::rmat(12, 12, RmatParams::WEB, seed),
            Dataset::Twitter => generators::rmat(13, 16, RmatParams::SOCIAL, seed),
            Dataset::Rmat(_) => generators::rmat(12, 16, RmatParams::SOCIAL, seed),
        }
    }

    /// Serialized size of the paper-scale dataset in bytes, assuming the
    /// SNAP edge-list format (~15 bytes/edge at these id ranges). Drives
    /// the modeled loading-time experiment at paper scale.
    pub fn paper_bytes(&self) -> u64 {
        self.paper_edges() * 15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::stats;

    #[test]
    fn names_and_types() {
        assert_eq!(Dataset::Twitter.name(), "Twitter");
        assert_eq!(Dataset::Rmat(24).name(), "RMAT-24");
        assert_eq!(Dataset::HumanGene.network_type(), "Biological");
    }

    #[test]
    fn paper_sizes_match_table2() {
        assert_eq!(Dataset::Twitter.paper_edges(), 1_614_106_187);
        assert_eq!(Dataset::Rmat(24).paper_vertices(), 1 << 24);
        assert_eq!(Dataset::Rmat(24).paper_edges(), 1 << 28);
    }

    #[test]
    fn figure6_order_doubles_in_size() {
        // The paper notes "the size of the dataset doubles from left to
        // right"; verify monotonicity of paper edge counts.
        let sizes: Vec<u64> = Dataset::FIGURE6.iter().map(|d| d.paper_edges()).collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn tiny_generators_produce_connected_enough_graphs() {
        for d in Dataset::TABLE2 {
            let g = d.generate_tiny(7).expect("gen");
            let s = stats(&g);
            assert!(s.num_vertices > 100, "{}: {s:?}", d.name());
            assert!(s.num_edges > s.num_vertices, "{}: {s:?}", d.name());
        }
    }

    #[test]
    fn tiny_deterministic() {
        let a = Dataset::Orkut.generate_tiny(3).expect("gen");
        let b = Dataset::Orkut.generate_tiny(3).expect("gen");
        assert_eq!(a, b);
    }

    #[test]
    fn human_gene_is_densest_tiny() {
        let hg = stats(&Dataset::HumanGene.generate_tiny(1).expect("gen"));
        let tw = stats(&Dataset::Twitter.generate_tiny(1).expect("gen"));
        assert!(
            hg.avg_degree > tw.avg_degree,
            "Human-Gene must be denser: {} vs {}",
            hg.avg_degree,
            tw.avg_degree
        );
    }
}
