//! Mutable edge-list accumulator that finalizes into a CSR [`Graph`].

use crate::csr::{Graph, VertexId};
use crate::{GraphError, Result};

/// Accumulates edges and produces an immutable CSR [`Graph`].
///
/// The builder tolerates duplicate edge insertions and self-loops; both are
/// removed by default during [`GraphBuilder::build`] (matching the
/// preprocessing applied to the paper's datasets, which are simple graphs).
///
/// # Examples
///
/// ```
/// use hourglass_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::undirected(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(1, 2); // duplicate, removed on build
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    directed: bool,
    keep_self_loops: bool,
    keep_duplicates: bool,
}

impl GraphBuilder {
    /// Creates a builder for an undirected graph over `num_vertices` vertices.
    pub fn undirected(num_vertices: usize) -> Self {
        Self::new(num_vertices, false)
    }

    /// Creates a builder for a directed graph over `num_vertices` vertices.
    pub fn directed(num_vertices: usize) -> Self {
        Self::new(num_vertices, true)
    }

    fn new(num_vertices: usize, directed: bool) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
            directed,
            keep_self_loops: false,
            keep_duplicates: false,
        }
    }

    /// Keeps self-loops instead of dropping them at build time.
    pub fn with_self_loops(mut self) -> Self {
        self.keep_self_loops = true;
        self
    }

    /// Keeps parallel edges instead of deduplicating at build time.
    pub fn with_duplicates(mut self) -> Self {
        self.keep_duplicates = true;
        self
    }

    /// Number of vertices the final graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an edge. Ids are validated at [`GraphBuilder::build`] time.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }

    /// Reserves capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// Finalizes into a CSR [`Graph`].
    ///
    /// Validates vertex ids, optionally removes self-loops and duplicates,
    /// sorts adjacency lists, and for undirected graphs stores each edge in
    /// both directions.
    pub fn build(self) -> Result<Graph> {
        let n = self.num_vertices;
        if n > u32::MAX as usize {
            return Err(GraphError::InvalidParameter(format!(
                "too many vertices: {n} (max {})",
                u32::MAX
            )));
        }
        for &(u, v) in &self.edges {
            for id in [u, v] {
                if id as usize >= n {
                    return Err(GraphError::VertexOutOfRange {
                        vertex: id as u64,
                        num_vertices: n as u64,
                    });
                }
            }
        }

        // Normalize the edge set.
        let mut edges: Vec<(VertexId, VertexId)> = if self.directed {
            self.edges
        } else {
            self.edges
                .into_iter()
                .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
                .collect()
        };
        if !self.keep_self_loops {
            edges.retain(|&(u, v)| u != v);
        }
        if !self.keep_duplicates {
            edges.sort_unstable();
            edges.dedup();
        }

        // Degree counting pass (both directions for undirected graphs).
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            if !self.directed && u != v {
                degree[v as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; acc];
        for &(u, v) in &edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            if !self.directed && u != v {
                targets[cursor[v as usize]] = u;
                cursor[v as usize] += 1;
            }
        }
        // Sort each adjacency list for deterministic layout.
        for u in 0..n {
            targets[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, targets, None, None, self.directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::undirected(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // same undirected edge
        b.add_edge(2, 2); // self loop
        b.add_edge(2, 3);
        let g = b.build().expect("build");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = GraphBuilder::directed(2).with_self_loops();
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build().expect("build");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn keeps_duplicates_when_asked() {
        let mut b = GraphBuilder::directed(2).with_duplicates();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build().expect("build");
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::undirected(2);
        b.add_edge(0, 7);
        assert!(b.build().is_err());
    }

    #[test]
    fn undirected_symmetry() {
        let mut b = GraphBuilder::undirected(5);
        b.extend_edges([(0, 4), (4, 1), (2, 3)]);
        let g = b.build().expect("build");
        for u in 0..5u32 {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v).contains(&u), "missing reverse of ({u},{v})");
            }
        }
    }

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::undirected(6);
        b.extend_edges([(5, 0), (3, 0), (1, 0), (4, 0), (2, 0)]);
        let g = b.build().expect("build");
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
        assert!(g.is_sorted());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(3).build().expect("build");
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }
}
