//! Graph transformations: induced subgraphs, component extraction and
//! relabeling.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

use crate::{GraphError, Result};

/// Extracts the subgraph induced by `vertices`, relabeling them densely in
/// the given order. Returns the subgraph and the old→new id map for the
/// kept vertices.
pub fn induced_subgraph(
    g: &Graph,
    vertices: &[VertexId],
) -> Result<(Graph, Vec<(VertexId, VertexId)>)> {
    let mut new_id = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        if (v as usize) >= g.num_vertices() {
            return Err(GraphError::VertexOutOfRange {
                vertex: v as u64,
                num_vertices: g.num_vertices() as u64,
            });
        }
        if new_id[v as usize] != u32::MAX {
            return Err(GraphError::InvalidParameter(format!(
                "vertex {v} listed twice"
            )));
        }
        new_id[v as usize] = i as u32;
    }
    let mut b = if g.is_directed() {
        GraphBuilder::directed(vertices.len())
    } else {
        GraphBuilder::undirected(vertices.len())
    };
    for &v in vertices {
        let nv = new_id[v as usize];
        for &u in g.neighbors(v) {
            let nu = new_id[u as usize];
            if nu != u32::MAX && (g.is_directed() || nv <= nu) {
                b.add_edge(nv, nu);
            }
        }
    }
    let mapping = vertices.iter().map(|&v| (v, new_id[v as usize])).collect();
    Ok((b.build()?, mapping))
}

/// Extracts the largest connected component as a standalone graph
/// (plus the original ids of its vertices). Partitioning experiments on
/// real crawls conventionally run on the giant component.
pub fn largest_component(g: &Graph) -> Result<(Graph, Vec<VertexId>)> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok((GraphBuilder::undirected(0).build()?, Vec::new()));
    }
    // Union-find labeling.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for (u, v) in g.edges() {
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    let mut counts = vec![0usize; n];
    for v in 0..n as u32 {
        counts[find(&mut parent, v) as usize] += 1;
    }
    let best_root = (0..n).max_by_key(|&r| counts[r]).expect("n > 0") as u32;
    let members: Vec<VertexId> = (0..n as u32)
        .filter(|&v| find(&mut parent, v) == best_root)
        .collect();
    let (sub, _) = induced_subgraph(g, &members)?;
    Ok((sub, members))
}

/// Relabels vertices by descending degree (hub-first ordering, which
/// improves streaming-partitioner quality and cache behaviour).
pub fn degree_sorted(g: &Graph) -> Result<Graph> {
    let mut order: Vec<VertexId> = (0..g.num_vertices() as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let (sub, _) = induced_subgraph(g, &order)?;
    Ok(sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        let mut b = GraphBuilder::undirected(7);
        b.extend_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        // Vertex 6 isolated.
        b.build().expect("build")
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = two_triangles();
        let (sub, map) = induced_subgraph(&g, &[0, 1, 3]).expect("subgraph");
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1, "only 0-1 survives");
        assert_eq!(map[0], (0, 0));
        assert_eq!(map[2], (3, 2));
    }

    #[test]
    fn induced_validates() {
        let g = two_triangles();
        assert!(induced_subgraph(&g, &[0, 0]).is_err());
        assert!(induced_subgraph(&g, &[99]).is_err());
    }

    #[test]
    fn largest_component_of_two_triangles() {
        let mut b = GraphBuilder::undirected(6);
        // Triangle plus an edge: component sizes 3 and 2, plus isolated.
        b.extend_edges([(0, 1), (1, 2), (0, 2), (3, 4)]);
        let g = b.build().expect("build");
        let (sub, members) = largest_component(&g).expect("component");
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(members, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_empty_graph() {
        let g = GraphBuilder::undirected(0).build().expect("build");
        let (sub, members) = largest_component(&g).expect("component");
        assert_eq!(sub.num_vertices(), 0);
        assert!(members.is_empty());
    }

    #[test]
    fn degree_sorted_puts_hubs_first() {
        let mut b = GraphBuilder::undirected(5);
        // Star around 4.
        b.extend_edges([(4, 0), (4, 1), (4, 2), (4, 3)]);
        let g = b.build().expect("build");
        let sorted = degree_sorted(&g).expect("sorted");
        assert_eq!(sorted.degree(0), 4, "hub relabeled to vertex 0");
        assert_eq!(crate::stats::stats(&sorted).num_edges, 4);
    }
}
