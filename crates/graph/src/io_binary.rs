//! Compact binary edge-list format.
//!
//! Text edge lists (the SNAP format of [`crate::io`]) parse at tens of
//! MB/s; the loading-phase experiments want a faster at-rest layout too.
//! This format stores a small header plus little-endian `u32` arc pairs —
//! ~2× smaller than text at realistic (7+ digit) vertex-id widths and
//! parseable at memory bandwidth.
//!
//! Layout:
//!
//! ```text
//! magic   "HGG1"                  (4 bytes)
//! flags   u32 LE, bit 0 = directed
//! n       u32 LE, vertex count
//! m       u64 LE, arc count
//! arcs    m × (u32 LE, u32 LE)
//! ```

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::{GraphError, Result};
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"HGG1";

/// Serializes a graph in the binary format (every stored arc is written;
/// undirected graphs round-trip exactly).
pub fn write_binary<W: Write>(graph: &Graph, mut w: W) -> Result<()> {
    w.write_all(MAGIC)?;
    let flags: u32 = u32::from(graph.is_directed());
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(graph.num_vertices() as u32).to_le_bytes())?;
    let arcs: u64 = if graph.is_directed() {
        graph.num_directed_edges() as u64
    } else {
        graph.num_edges() as u64
    };
    w.write_all(&arcs.to_le_bytes())?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for (u, v) in graph.edges() {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= 8 * 1024 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Deserializes a graph written by [`write_binary`].
pub fn read_binary<R: Read>(mut r: R) -> Result<Graph> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad magic {magic:?}, expected {MAGIC:?}"),
        });
    }
    let flags = read_u32(&mut r)?;
    if flags > 1 {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unknown flags {flags:#x}"),
        });
    }
    let directed = flags & 1 == 1;
    let n = read_u32(&mut r)? as usize;
    let mut m_bytes = [0u8; 8];
    r.read_exact(&mut m_bytes)?;
    let m = u64::from_le_bytes(m_bytes);
    let mut b = if directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    };
    b.reserve(m as usize);
    let mut pair = [0u8; 8];
    for i in 0..m {
        r.read_exact(&mut pair).map_err(|e| GraphError::Parse {
            line: i as usize,
            message: format!("truncated arc {i} of {m}: {e}"),
        })?;
        let u = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
        let v = u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
        b.add_edge(u, v);
    }
    b.build()
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Size in bytes a graph occupies in this format.
pub fn binary_size(graph: &Graph) -> u64 {
    let arcs = if graph.is_directed() {
        graph.num_directed_edges() as u64
    } else {
        graph.num_edges() as u64
    };
    4 + 4 + 4 + 8 + 8 * arcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::io;

    #[test]
    fn roundtrip_undirected() {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 4).expect("gen");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        assert_eq!(buf.len() as u64, binary_size(&g));
        let g2 = read_binary(&buf[..]).expect("read");
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_directed() {
        let text = "0 1\n1 0\n2 0\n";
        let g = io::read_edge_list(text.as_bytes(), true).expect("read");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        let g2 = read_binary(&buf[..]).expect("read");
        assert_eq!(g, g2);
        assert!(g2.is_directed());
    }

    #[test]
    fn smaller_than_text_at_realistic_id_widths() {
        // Binary wins once ids reach the 7+ digit range of real crawls
        // (tiny graphs with 1-3 digit ids can be denser as text).
        let mut b = crate::GraphBuilder::undirected(2_000_000);
        for i in 0..500u32 {
            b.add_edge(1_000_000 + i, 1_000_001 + i);
        }
        let g = b.build().expect("build");
        let text_size = io::edge_list_byte_size(&g);
        assert!(
            binary_size(&g) < text_size,
            "binary {} should beat text {}",
            binary_size(&g),
            text_size
        );
    }

    #[test]
    fn rejects_corruption() {
        let g = generators::erdos_renyi(20, 40, 1).expect("gen");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_binary(&bad[..]).is_err());
        // Truncated arcs.
        let truncated = &buf[..buf.len() - 3];
        assert!(read_binary(truncated).is_err());
        // Unknown flags.
        let mut bad = buf.clone();
        bad[4] = 0xFF;
        assert!(read_binary(&bad[..]).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = crate::GraphBuilder::undirected(5).build().expect("build");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        let g2 = read_binary(&buf[..]).expect("read");
        assert_eq!(g2.num_vertices(), 5);
        assert_eq!(g2.num_edges(), 0);
    }
}
