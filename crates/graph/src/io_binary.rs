//! Compact binary edge-list formats (flat `HGG1` and sharded `HGS1`).
//!
//! Text edge lists (the SNAP format of [`crate::io`]) parse at tens of
//! MB/s; the loading-phase experiments want a faster at-rest layout too.
//! Both formats store a small header plus little-endian `u32` arc pairs —
//! ~2× smaller than text at realistic (7+ digit) vertex-id widths and
//! decodable at memory bandwidth.
//!
//! `HGG1` is a whole-graph snapshot (logical edges, rebuilt through the
//! [`GraphBuilder`]):
//!
//! ```text
//! magic   "HGG1"                  (4 bytes)
//! flags   u32 LE, bit 0 = directed
//! n       u32 LE, vertex count
//! m       u64 LE, arc count
//! arcs    m × (u32 LE, u32 LE)
//! ```
//!
//! `HGS2` ([`ShardedArcs`]) is the sharded *datastore* layout backing the
//! fast-reload loaders (§6.2): the arc list is grouped into buckets (one
//! per micro-partition; a single bucket is the flat layout) and each bucket
//! is one contiguous block of arc pairs, so a worker can read exactly its
//! buckets and decode them from raw byte slices with zero copies. Version 2
//! appends a CRC32C trailer (per-bucket payload checksums plus a metadata
//! checksum over everything else) so torn writes and bit flips are detected
//! at read time instead of silently decoded — any single-bit corruption of
//! an `HGS2` file is rejected:
//!
//! ```text
//! magic   "HGS2"                  (4 bytes)
//! n       u32 LE, vertex count
//! b       u32 LE, bucket count
//! m       u64 LE, total arc count
//! counts  b × u64 LE, arcs per bucket
//! arcs    m × (u32 LE, u32 LE), bucket-major
//! crcs    b × u32 LE, CRC32C per bucket payload
//! meta    u32 LE, CRC32C over magic+header+counts+crcs
//! ```
//!
//! The reader still accepts trailer-less version-1 (`HGS1`) files, which
//! are the same layout minus the two trailer sections.

use crate::builder::GraphBuilder;
use crate::crc32c::crc32c;
use crate::csr::{Graph, VertexId};
use crate::{GraphError, Result};
use hourglass_obs as obs;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"HGG1";
const SHARD_MAGIC_V1: &[u8; 4] = b"HGS1";
const SHARD_MAGIC_V2: &[u8; 4] = b"HGS2";

/// Bytes per serialized arc pair.
pub const ARC_BYTES: usize = 8;

/// Serializes a graph in the binary format (every stored arc is written;
/// undirected graphs round-trip exactly).
pub fn write_binary<W: Write>(graph: &Graph, mut w: W) -> Result<()> {
    let _span = obs::span("write_binary", "io").arg("vertices", graph.num_vertices() as u64);
    w.write_all(MAGIC)?;
    let flags: u32 = u32::from(graph.is_directed());
    w.write_all(&flags.to_le_bytes())?;
    w.write_all(&(graph.num_vertices() as u32).to_le_bytes())?;
    let arcs: u64 = if graph.is_directed() {
        graph.num_directed_edges() as u64
    } else {
        graph.num_edges() as u64
    };
    w.write_all(&arcs.to_le_bytes())?;
    let mut buf = Vec::with_capacity(8 * 1024);
    for (u, v) in graph.edges() {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() >= 8 * 1024 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Deserializes a graph written by [`write_binary`].
pub fn read_binary<R: Read>(mut r: R) -> Result<Graph> {
    let _span = obs::span("read_binary", "io");
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("bad magic {magic:?}, expected {MAGIC:?}"),
        });
    }
    let flags = read_u32(&mut r)?;
    if flags > 1 {
        return Err(GraphError::Parse {
            line: 0,
            message: format!("unknown flags {flags:#x}"),
        });
    }
    let directed = flags & 1 == 1;
    let n = read_u32(&mut r)? as usize;
    let mut m_bytes = [0u8; 8];
    r.read_exact(&mut m_bytes)?;
    let m = u64::from_le_bytes(m_bytes);
    let mut b = if directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    };
    b.reserve(m as usize);
    // Chunked decode: pull large blocks and split them into pairs, instead
    // of one 8-byte read_exact syscall-shaped call per arc.
    let mut remaining = (m as usize)
        .checked_mul(ARC_BYTES)
        .ok_or_else(|| GraphError::Parse {
            line: 0,
            message: format!("arc count {m} overflows payload size"),
        })?;
    let mut buf = vec![0u8; (64 * 1024).min(remaining.max(1))];
    let mut decoded = 0u64;
    while remaining > 0 {
        let want = buf.len().min(remaining);
        r.read_exact(&mut buf[..want])
            .map_err(|e| GraphError::Parse {
                line: decoded as usize,
                message: format!("truncated arc {decoded} of {m}: {e}"),
            })?;
        for pair in buf[..want].chunks_exact(ARC_BYTES) {
            let u = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
            let v = u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
            b.add_edge(u, v);
        }
        decoded += (want / ARC_BYTES) as u64;
        remaining -= want;
    }
    b.build()
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Decodes a bucket's raw byte slice into `(source, target)` arc pairs.
///
/// The slice must come from a [`ShardedArcs`] bucket (length a multiple of
/// [`ARC_BYTES`]); any trailing partial pair is ignored. This is the
/// zero-copy read path of the sharded datastore: no intermediate buffer,
/// just LE decoding straight off the mapped/owned bytes.
#[inline]
pub fn decode_arcs(bytes: &[u8]) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
    bytes.chunks_exact(ARC_BYTES).map(|pair| {
        (
            u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]),
            u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]),
        )
    })
}

/// Bulk-decodes a bucket's raw bytes, appending every `(source, target)`
/// pair to `out`.
///
/// This is the hot-path counterpart of [`decode_arcs`]: capacity is
/// reserved up front and the pairs are appended through a `chunks_exact`
/// exact-length extend, so the loop body carries no per-arc capacity or
/// bounds checks and autovectorizes. Trailing partial pairs are ignored,
/// matching the iterator.
#[inline]
pub fn decode_arcs_into(bytes: &[u8], out: &mut Vec<(VertexId, VertexId)>) {
    out.reserve(bytes.len() / ARC_BYTES);
    out.extend(bytes.chunks_exact(ARC_BYTES).map(|pair| {
        (
            u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]),
            u32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]),
        )
    }));
}

/// Largest vertex id appearing in an encoded arc slice (source or target),
/// or `None` for an empty slice.
///
/// A branch-free max-reduction over the raw `u32` words: loaders use it as
/// a cheap validity pre-scan so the common all-in-range case can take the
/// unfiltered [`decode_arcs_into`] bulk path instead of a per-pair range
/// check.
#[inline]
pub fn max_arc_id(bytes: &[u8]) -> Option<u32> {
    let words = &bytes[..bytes.len() / ARC_BYTES * ARC_BYTES];
    words
        .chunks_exact(4)
        .map(|w| u32::from_le_bytes([w[0], w[1], w[2], w[3]]))
        .reduce(u32::max)
}

/// A sharded binary arc store (`HGS1`): the at-rest layout of the
/// fast-reload datastore.
///
/// Arcs (both directions of every undirected edge, so adjacency can be
/// assembled locally) are grouped into `b` buckets; bucket `i` is the
/// contiguous byte range holding the arcs whose *source* vertex lives in
/// micro-partition `i`. A single bucket is the flat layout used by the
/// stream and hash loaders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedArcs {
    num_vertices: u32,
    /// Exclusive prefix ends, in arcs: bucket `i` spans
    /// `arc_ends[i-1]..arc_ends[i]` (with `arc_ends[-1] = 0`).
    arc_ends: Vec<u64>,
    /// Bucket-major LE arc pairs, `ARC_BYTES` each.
    payload: Vec<u8>,
}

impl ShardedArcs {
    /// Builds a sharded store from a graph and a per-vertex bucket
    /// assignment (`bucket_of[v] < num_buckets`); arcs land in their
    /// source's bucket. Two passes over the graph: a counting pass sizing
    /// every bucket exactly (per-vertex degree, `O(n)`), then a scatter
    /// pass writing each arc once — no intermediate per-arc allocation.
    pub fn from_graph_buckets(g: &Graph, bucket_of: &[u32], num_buckets: u32) -> Result<Self> {
        let _span = obs::span("shard_store_build", "io")
            .arg("vertices", g.num_vertices() as u64)
            .arg("buckets", num_buckets as u64);
        if bucket_of.len() != g.num_vertices() {
            return Err(GraphError::InvalidParameter(format!(
                "bucket assignment covers {} vertices, graph has {}",
                bucket_of.len(),
                g.num_vertices()
            )));
        }
        if num_buckets == 0 {
            return Err(GraphError::InvalidParameter(
                "need at least one bucket".into(),
            ));
        }
        if let Some(&bad) = bucket_of.iter().find(|&&b| b >= num_buckets) {
            return Err(GraphError::InvalidParameter(format!(
                "bucket {bad} out of range for {num_buckets} buckets"
            )));
        }
        // Counting pass: shard sizes from vertex degrees.
        let mut counts = vec![0u64; num_buckets as usize];
        for v in 0..g.num_vertices() {
            counts[bucket_of[v] as usize] += g.degree(v as VertexId) as u64;
        }
        let mut arc_ends = Vec::with_capacity(num_buckets as usize);
        let mut acc = 0u64;
        for &c in &counts {
            acc += c;
            arc_ends.push(acc);
        }
        // Scatter pass: per-bucket byte cursors into one payload slab.
        let mut payload = vec![0u8; acc as usize * ARC_BYTES];
        let mut cursor: Vec<usize> = std::iter::once(0)
            .chain(arc_ends.iter().map(|&e| e as usize * ARC_BYTES))
            .take(num_buckets as usize)
            .collect();
        for u in 0..g.num_vertices() {
            let c = &mut cursor[bucket_of[u] as usize];
            let ub = (u as u32).to_le_bytes();
            for &v in g.neighbors(u as VertexId) {
                payload[*c..*c + 4].copy_from_slice(&ub);
                payload[*c + 4..*c + 8].copy_from_slice(&v.to_le_bytes());
                *c += ARC_BYTES;
            }
        }
        Ok(ShardedArcs {
            num_vertices: g.num_vertices() as u32,
            arc_ends,
            payload,
        })
    }

    /// Builds the single-bucket (flat) layout.
    pub fn flat_from_graph(g: &Graph) -> Self {
        Self::from_graph_buckets(g, &vec![0; g.num_vertices()], 1)
            .expect("single-bucket construction cannot fail")
    }

    /// Number of vertices the arc ids index into.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of buckets.
    #[inline]
    pub fn num_buckets(&self) -> u32 {
        self.arc_ends.len() as u32
    }

    /// Total number of arcs across all buckets.
    #[inline]
    pub fn num_arcs(&self) -> u64 {
        self.arc_ends.last().copied().unwrap_or(0)
    }

    /// Raw byte slice of bucket `b` — the zero-copy read unit.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn bucket_bytes(&self, b: u32) -> &[u8] {
        let start = if b == 0 {
            0
        } else {
            self.arc_ends[b as usize - 1] as usize * ARC_BYTES
        };
        let end = self.arc_ends[b as usize] as usize * ARC_BYTES;
        &self.payload[start..end]
    }

    /// Number of arcs in bucket `b`.
    #[inline]
    pub fn bucket_len(&self, b: u32) -> u64 {
        let start = if b == 0 {
            0
        } else {
            self.arc_ends[b as usize - 1]
        };
        self.arc_ends[b as usize] - start
    }

    /// The whole bucket-major payload.
    #[inline]
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Payload size in bytes (what the loaders account as "read").
    #[inline]
    pub fn payload_bytes(&self) -> usize {
        self.payload.len()
    }

    /// On-disk size in bytes of the `HGS2` layout written by
    /// [`ShardedArcs::write_to`], header and checksum trailer included.
    pub fn serialized_size(&self) -> u64 {
        self.serialized_size_v1() + 4 * self.arc_ends.len() as u64 + 4
    }

    /// On-disk size in bytes of the legacy trailer-less `HGS1` layout.
    pub fn serialized_size_v1(&self) -> u64 {
        4 + 4 + 4 + 8 + 8 * self.arc_ends.len() as u64 + self.payload.len() as u64
    }

    /// The header + counts section, byte-identical between versions except
    /// for the magic.
    fn header_bytes(&self, magic: &[u8; 4]) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + 8 * self.arc_ends.len());
        out.extend_from_slice(magic);
        out.extend_from_slice(&self.num_vertices.to_le_bytes());
        out.extend_from_slice(&(self.arc_ends.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.num_arcs().to_le_bytes());
        let mut prev = 0u64;
        for &end in &self.arc_ends {
            out.extend_from_slice(&(end - prev).to_le_bytes());
            prev = end;
        }
        out
    }

    /// Serializes in the checksummed `HGS2` layout.
    pub fn write_to<W: Write>(&self, mut w: W) -> Result<()> {
        let _span = obs::span("shard_store_write", "io").arg("bytes", self.serialized_size());
        let header = self.header_bytes(SHARD_MAGIC_V2);
        w.write_all(&header)?;
        w.write_all(&self.payload)?;
        let mut meta = header;
        for b in 0..self.num_buckets() {
            let crc = crc32c(self.bucket_bytes(b)).to_le_bytes();
            w.write_all(&crc)?;
            meta.extend_from_slice(&crc);
        }
        w.write_all(&crc32c(&meta).to_le_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Serializes in the legacy trailer-less `HGS1` layout (kept for
    /// compatibility tests and downgrade paths).
    pub fn write_to_v1<W: Write>(&self, mut w: W) -> Result<()> {
        let _span = obs::span("shard_store_write", "io").arg("bytes", self.serialized_size_v1());
        w.write_all(&self.header_bytes(SHARD_MAGIC_V1))?;
        w.write_all(&self.payload)?;
        w.flush()?;
        Ok(())
    }

    /// Deserializes a sharded store. `HGS2` files are checksum-verified
    /// (any single-bit corruption is rejected); legacy `HGS1` files load
    /// unverified.
    pub fn read_from<R: Read>(mut r: R) -> Result<Self> {
        let _span = obs::span("shard_store_read", "io");
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        let checked = if &magic == SHARD_MAGIC_V2 {
            true
        } else if &magic == SHARD_MAGIC_V1 {
            false
        } else {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "bad magic {magic:?}, expected {SHARD_MAGIC_V2:?} or {SHARD_MAGIC_V1:?}"
                ),
            });
        };
        let num_vertices = read_u32(&mut r)?;
        let b = read_u32(&mut r)? as usize;
        let mut m_bytes = [0u8; 8];
        r.read_exact(&mut m_bytes)?;
        let m = u64::from_le_bytes(m_bytes);
        let mut arc_ends = Vec::with_capacity(b);
        let mut acc = 0u64;
        for _ in 0..b {
            r.read_exact(&mut m_bytes)?;
            acc = acc
                .checked_add(u64::from_le_bytes(m_bytes))
                .ok_or_else(|| GraphError::Parse {
                    line: 0,
                    message: "bucket counts overflow".into(),
                })?;
            arc_ends.push(acc);
        }
        if acc != m {
            return Err(GraphError::Parse {
                line: 0,
                message: format!("bucket counts sum to {acc}, header says {m} arcs"),
            });
        }
        let payload_len = (m as usize)
            .checked_mul(ARC_BYTES)
            .ok_or_else(|| GraphError::Parse {
                line: 0,
                message: format!("arc count {m} overflows payload size"),
            })?;
        let mut payload = vec![0u8; payload_len];
        r.read_exact(&mut payload).map_err(|e| GraphError::Parse {
            line: 0,
            message: format!("truncated payload ({m} arcs expected): {e}"),
        })?;
        let store = ShardedArcs {
            num_vertices,
            arc_ends,
            payload,
        };
        if checked {
            store.verify_trailer(&mut r)?;
        }
        Ok(store)
    }

    /// Reads and verifies the `HGS2` checksum trailer against the already
    /// parsed header, counts and payload.
    fn verify_trailer<R: Read>(&self, r: &mut R) -> Result<()> {
        let mut meta = self.header_bytes(SHARD_MAGIC_V2);
        let mut crc_bytes = [0u8; 4];
        for b in 0..self.num_buckets() {
            r.read_exact(&mut crc_bytes)
                .map_err(|e| GraphError::Parse {
                    line: 0,
                    message: format!("truncated bucket-checksum trailer: {e}"),
                })?;
            let want = u32::from_le_bytes(crc_bytes);
            let got = crc32c(self.bucket_bytes(b));
            if got != want {
                return Err(GraphError::Parse {
                    line: 0,
                    message: format!(
                        "bucket {b} checksum mismatch: stored {want:#010x}, computed {got:#010x}"
                    ),
                });
            }
            meta.extend_from_slice(&crc_bytes);
        }
        r.read_exact(&mut crc_bytes)
            .map_err(|e| GraphError::Parse {
                line: 0,
                message: format!("truncated metadata checksum: {e}"),
            })?;
        let want = u32::from_le_bytes(crc_bytes);
        let got = crc32c(&meta);
        if got != want {
            return Err(GraphError::Parse {
                line: 0,
                message: format!(
                    "metadata checksum mismatch: stored {want:#010x}, computed {got:#010x}"
                ),
            });
        }
        Ok(())
    }
}

/// Size in bytes a graph occupies in this format.
pub fn binary_size(graph: &Graph) -> u64 {
    let arcs = if graph.is_directed() {
        graph.num_directed_edges() as u64
    } else {
        graph.num_edges() as u64
    };
    4 + 4 + 4 + 8 + 8 * arcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::io;

    #[test]
    fn roundtrip_undirected() {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 4).expect("gen");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        assert_eq!(buf.len() as u64, binary_size(&g));
        let g2 = read_binary(&buf[..]).expect("read");
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_directed() {
        let text = "0 1\n1 0\n2 0\n";
        let g = io::read_edge_list(text.as_bytes(), true).expect("read");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        let g2 = read_binary(&buf[..]).expect("read");
        assert_eq!(g, g2);
        assert!(g2.is_directed());
    }

    #[test]
    fn smaller_than_text_at_realistic_id_widths() {
        // Binary wins once ids reach the 7+ digit range of real crawls
        // (tiny graphs with 1-3 digit ids can be denser as text).
        let mut b = crate::GraphBuilder::undirected(2_000_000);
        for i in 0..500u32 {
            b.add_edge(1_000_000 + i, 1_000_001 + i);
        }
        let g = b.build().expect("build");
        let text_size = io::edge_list_byte_size(&g);
        assert!(
            binary_size(&g) < text_size,
            "binary {} should beat text {}",
            binary_size(&g),
            text_size
        );
    }

    #[test]
    fn rejects_corruption() {
        let g = generators::erdos_renyi(20, 40, 1).expect("gen");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_binary(&bad[..]).is_err());
        // Truncated arcs.
        let truncated = &buf[..buf.len() - 3];
        assert!(read_binary(truncated).is_err());
        // Unknown flags.
        let mut bad = buf.clone();
        bad[4] = 0xFF;
        assert!(read_binary(&bad[..]).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = crate::GraphBuilder::undirected(5).build().expect("build");
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("write");
        let g2 = read_binary(&buf[..]).expect("read");
        assert_eq!(g2.num_vertices(), 5);
        assert_eq!(g2.num_edges(), 0);
    }

    #[test]
    fn sharded_buckets_cover_all_arcs_by_source() {
        let g = generators::rmat(8, 8, generators::RmatParams::SOCIAL, 2).expect("gen");
        let buckets: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 7).collect();
        let s = ShardedArcs::from_graph_buckets(&g, &buckets, 7).expect("shard");
        assert_eq!(s.num_buckets(), 7);
        assert_eq!(s.num_arcs(), g.num_directed_edges() as u64);
        assert_eq!(s.payload_bytes(), g.num_directed_edges() * ARC_BYTES);
        let mut total = 0u64;
        for b in 0..7 {
            for (u, v) in decode_arcs(s.bucket_bytes(b)) {
                assert_eq!(u % 7, b, "arc in wrong bucket");
                assert!(g.neighbors(u).contains(&v));
                total += 1;
            }
            assert_eq!(
                s.bucket_len(b),
                s.bucket_bytes(b).len() as u64 / ARC_BYTES as u64
            );
        }
        assert_eq!(total, s.num_arcs());
    }

    #[test]
    fn sharded_flat_is_single_bucket_in_arc_order() {
        let g = generators::erdos_renyi(30, 60, 3).expect("gen");
        let s = ShardedArcs::flat_from_graph(&g);
        assert_eq!(s.num_buckets(), 1);
        let decoded: Vec<_> = decode_arcs(s.bucket_bytes(0)).collect();
        let expected: Vec<_> = g.arcs().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn sharded_roundtrip() {
        let g = generators::rmat(8, 6, generators::RmatParams::WEB, 5).expect("gen");
        let buckets: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 4).collect();
        let s = ShardedArcs::from_graph_buckets(&g, &buckets, 4).expect("shard");
        let mut buf = Vec::new();
        s.write_to(&mut buf).expect("write");
        assert_eq!(buf.len() as u64, s.serialized_size());
        let s2 = ShardedArcs::read_from(&buf[..]).expect("read");
        assert_eq!(s, s2);
    }

    #[test]
    fn sharded_rejects_corruption() {
        let g = generators::erdos_renyi(20, 40, 1).expect("gen");
        let s = ShardedArcs::flat_from_graph(&g);
        let mut buf = Vec::new();
        s.write_to(&mut buf).expect("write");
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(ShardedArcs::read_from(&bad[..]).is_err(), "bad magic");
        let truncated = &buf[..buf.len() - 5];
        assert!(
            ShardedArcs::read_from(truncated).is_err(),
            "truncated payload"
        );
        // Bucket counts disagreeing with the total arc count.
        let mut bad = buf.clone();
        bad[20] ^= 1; // first bucket count LSB (after the 20-byte header)
        assert!(ShardedArcs::read_from(&bad[..]).is_err(), "count mismatch");
    }

    #[test]
    fn sharded_v1_files_still_load() {
        let g = generators::rmat(8, 6, generators::RmatParams::WEB, 5).expect("gen");
        let buckets: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 4).collect();
        let s = ShardedArcs::from_graph_buckets(&g, &buckets, 4).expect("shard");
        let mut v1 = Vec::new();
        s.write_to_v1(&mut v1).expect("write v1");
        assert_eq!(v1.len() as u64, s.serialized_size_v1());
        assert_eq!(&v1[..4], SHARD_MAGIC_V1);
        let s2 = ShardedArcs::read_from(&v1[..]).expect("read v1");
        assert_eq!(s, s2);
        // The v2 encoding is the v1 body plus the checksum trailer.
        let mut v2 = Vec::new();
        s.write_to(&mut v2).expect("write v2");
        assert_eq!(&v2[..4], SHARD_MAGIC_V2);
        assert_eq!(v2.len() as u64, s.serialized_size_v1() + 4 * 4 + 4);
        assert_eq!(&v1[4..], &v2[4..v1.len()]);
    }

    #[test]
    fn sharded_v2_every_single_bit_flip_is_detected() {
        let g = generators::erdos_renyi(12, 18, 7).expect("gen");
        let buckets: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v % 3).collect();
        let s = ShardedArcs::from_graph_buckets(&g, &buckets, 3).expect("shard");
        let mut buf = Vec::new();
        s.write_to(&mut buf).expect("write");
        for bit in 0..buf.len() * 8 {
            let mut bad = buf.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                ShardedArcs::read_from(&bad[..]).is_err(),
                "bit flip at {bit} (byte {}) went undetected",
                bit / 8
            );
        }
    }

    #[test]
    fn sharded_v2_rejects_truncated_trailer() {
        let g = generators::erdos_renyi(10, 15, 2).expect("gen");
        let s = ShardedArcs::flat_from_graph(&g);
        let mut buf = Vec::new();
        s.write_to(&mut buf).expect("write");
        // Cut inside the metadata checksum and inside the bucket checksums.
        assert!(ShardedArcs::read_from(&buf[..buf.len() - 2]).is_err());
        assert!(ShardedArcs::read_from(&buf[..buf.len() - 6]).is_err());
    }

    #[test]
    fn bulk_decode_matches_iterator() {
        let g = generators::rmat(9, 8, generators::RmatParams::SOCIAL, 11).expect("gen");
        let s = ShardedArcs::flat_from_graph(&g);
        let bytes = s.bucket_bytes(0);
        let via_iter: Vec<_> = decode_arcs(bytes).collect();
        let mut via_bulk = Vec::new();
        decode_arcs_into(bytes, &mut via_bulk);
        assert_eq!(via_iter, via_bulk);
        // Appends without clearing, and ignores a trailing partial pair.
        decode_arcs_into(&bytes[..bytes.len().min(8) + 3], &mut via_bulk);
        assert_eq!(via_bulk.len(), via_iter.len() + 1.min(via_iter.len()));
        let mut empty = Vec::new();
        decode_arcs_into(&[], &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn max_arc_id_scans_both_endpoints() {
        assert_eq!(max_arc_id(&[]), None);
        let mut buf = Vec::new();
        for (u, v) in [(3u32, 9u32), (7, 2), (5, 5)] {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(max_arc_id(&buf), Some(9));
        // A trailing partial pair is excluded from the scan, like decode.
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(max_arc_id(&buf), Some(9));
    }

    #[test]
    fn sharded_validates_inputs() {
        let g = generators::erdos_renyi(10, 20, 1).expect("gen");
        assert!(ShardedArcs::from_graph_buckets(&g, &[0; 5], 1).is_err());
        assert!(ShardedArcs::from_graph_buckets(&g, &[0; 10], 0).is_err());
        assert!(ShardedArcs::from_graph_buckets(&g, &[7; 10], 4).is_err());
    }

    #[test]
    fn sharded_empty_graph() {
        let g = crate::GraphBuilder::undirected(3).build().expect("build");
        let s = ShardedArcs::flat_from_graph(&g);
        assert_eq!(s.num_arcs(), 0);
        let mut buf = Vec::new();
        s.write_to(&mut buf).expect("write");
        let s2 = ShardedArcs::read_from(&buf[..]).expect("read");
        assert_eq!(s, s2);
    }
}
