//! Deterministic synthetic graph generators.
//!
//! All generators are seeded and fully deterministic so that experiments can
//! be reproduced exactly. They are used to stand in for the paper's real
//! datasets (Table 2) per the scaling plan in `DESIGN.md` §6, and to generate
//! the RMAT-N family exactly as the paper does (`2^N` vertices, `2^(N+4)`
//! edges, R-MAT recursive model [10]).

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::{GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the R-MAT recursive matrix model.
///
/// `a + b + c + d` must be `1.0` (within floating-point tolerance); `a` is
/// the probability of recursing into the top-left quadrant and controls the
/// degree skew (social networks use `a ≈ 0.57`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// The classic Graph500-style skewed parameters, a good model of social
    /// networks.
    pub const SOCIAL: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// A milder skew resembling web/hyperlink graphs.
    pub const WEB: RmatParams = RmatParams {
        a: 0.45,
        b: 0.25,
        c: 0.15,
        d: 0.15,
    };

    /// Uniform quadrants; degenerates to an Erdős–Rényi-like graph.
    pub const UNIFORM: RmatParams = RmatParams {
        a: 0.25,
        b: 0.25,
        c: 0.25,
        d: 0.25,
    };

    fn validate(&self) -> Result<()> {
        let sum = self.a + self.b + self.c + self.d;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(GraphError::InvalidParameter(format!(
                "R-MAT quadrant probabilities must sum to 1, got {sum}"
            )));
        }
        if [self.a, self.b, self.c, self.d].iter().any(|&p| p < 0.0) {
            return Err(GraphError::InvalidParameter(
                "R-MAT quadrant probabilities must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// approximately `edge_factor * 2^scale` distinct edges.
///
/// Duplicate edges and self-loops produced by the recursive process are
/// dropped, as in the paper's preprocessing, so the final edge count is
/// slightly below the nominal target.
///
/// # Examples
///
/// ```
/// use hourglass_graph::generators::{rmat, RmatParams};
///
/// let g = rmat(10, 8, RmatParams::SOCIAL, 42).unwrap();
/// assert_eq!(g.num_vertices(), 1024);
/// assert!(g.num_edges() > 4000);
/// ```
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Result<Graph> {
    params.validate()?;
    if scale == 0 || scale > 31 {
        return Err(GraphError::InvalidParameter(format!(
            "R-MAT scale must be in 1..=31, got {scale}"
        )));
    }
    let n = 1usize << scale;
    let m = n.saturating_mul(edge_factor);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    b.reserve(m);
    for _ in 0..m {
        let (u, v) = rmat_edge(scale, params, &mut rng);
        b.add_edge(u, v);
    }
    b.build()
}

/// Generates the paper's `RMAT-N` dataset (2^N vertices, 2^(N+4) edge
/// insertions) with the social skew.
pub fn rmat_n(n: u32, seed: u64) -> Result<Graph> {
    rmat(n, 16, RmatParams::SOCIAL, seed)
}

fn rmat_edge(scale: u32, p: RmatParams, rng: &mut StdRng) -> (VertexId, VertexId) {
    let mut u = 0u64;
    let mut v = 0u64;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.gen();
        if r < p.a {
            // Top-left: no bits set.
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as VertexId, v as VertexId)
}

/// Generates an Erdős–Rényi `G(n, m)` graph: `m` edge insertions chosen
/// uniformly at random (duplicates and self-loops removed).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter(
            "Erdős–Rényi needs at least 2 vertices".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    b.reserve(m);
    for _ in 0..m {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.add_edge(u, v);
    }
    b.build()
}

/// Generates a Barabási–Albert preferential-attachment graph: each new
/// vertex attaches to `k` existing vertices with probability proportional to
/// degree. Models collaboration networks such as Hollywood.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Result<Graph> {
    if k == 0 || n <= k {
        return Err(GraphError::InvalidParameter(format!(
            "Barabási–Albert needs n > k >= 1, got n={n} k={k}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    // Repeated-endpoints list: sampling a uniform element is sampling
    // proportional to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    // Seed clique over the first k+1 vertices.
    for u in 0..=k {
        for v in (u + 1)..=k {
            b.add_edge(u as VertexId, v as VertexId);
            endpoints.push(u as VertexId);
            endpoints.push(v as VertexId);
        }
    }
    for u in (k + 1)..n {
        let mut chosen = Vec::with_capacity(k);
        let mut guard = 0;
        while chosen.len() < k && guard < 100 * k {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u as VertexId && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(u as VertexId, t);
            endpoints.push(u as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Generates a Watts–Strogatz small-world graph: a ring lattice where each
/// vertex connects to its `k` nearest neighbors on each side, with each edge
/// rewired with probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<Graph> {
    if k == 0 || n <= 2 * k {
        return Err(GraphError::InvalidParameter(format!(
            "Watts–Strogatz needs n > 2k >= 2, got n={n} k={k}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter(format!(
            "rewiring probability must be in [0,1], got {beta}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniformly random endpoint.
                let w = rng.gen_range(0..n);
                b.add_edge(u as VertexId, w as VertexId);
            } else {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Generates a dense community graph: `communities` near-cliques of
/// `community_size` vertices with intra-community edge probability
/// `p_intra`, sparsely wired together with `inter_edges` random bridges.
///
/// Models dense biological networks such as the Human-Gene dataset, whose
/// average degree (~1100) is far above the social graphs'.
pub fn community(
    communities: usize,
    community_size: usize,
    p_intra: f64,
    inter_edges: usize,
    seed: u64,
) -> Result<Graph> {
    if communities == 0 || community_size < 2 {
        return Err(GraphError::InvalidParameter(
            "need at least one community of size >= 2".into(),
        ));
    }
    if !(0.0..=1.0).contains(&p_intra) {
        return Err(GraphError::InvalidParameter(format!(
            "intra probability must be in [0,1], got {p_intra}"
        )));
    }
    let n = communities * community_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    for c in 0..communities {
        let base = c * community_size;
        for i in 0..community_size {
            for j in (i + 1)..community_size {
                if rng.gen::<f64>() < p_intra {
                    b.add_edge((base + i) as VertexId, (base + j) as VertexId);
                }
            }
        }
    }
    for _ in 0..inter_edges {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_params_validate() {
        assert!(RmatParams::SOCIAL.validate().is_ok());
        assert!(RmatParams {
            a: 0.9,
            b: 0.2,
            c: 0.0,
            d: 0.0
        }
        .validate()
        .is_err());
        assert!(RmatParams {
            a: 1.2,
            b: -0.2,
            c: 0.0,
            d: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn rmat_deterministic() {
        let g1 = rmat(10, 8, RmatParams::SOCIAL, 42).expect("gen");
        let g2 = rmat(10, 8, RmatParams::SOCIAL, 42).expect("gen");
        assert_eq!(g1, g2);
        let g3 = rmat(10, 8, RmatParams::SOCIAL, 43).expect("gen");
        assert_ne!(g1, g3);
    }

    #[test]
    fn rmat_sizes() {
        let g = rmat(10, 8, RmatParams::SOCIAL, 1).expect("gen");
        assert_eq!(g.num_vertices(), 1024);
        // Dedup removes some edges but the bulk should remain.
        assert!(g.num_edges() > 4 * 1024, "got {}", g.num_edges());
        assert!(g.num_edges() <= 8 * 1024);
    }

    #[test]
    fn rmat_skew_is_visible() {
        let g = rmat(12, 16, RmatParams::SOCIAL, 7).expect("gen");
        let max_deg = (0..g.num_vertices())
            .map(|v| g.degree(v as u32))
            .max()
            .expect("non-empty");
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > 8.0 * avg,
            "social R-MAT should be skewed: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn rmat_rejects_bad_scale() {
        assert!(rmat(0, 8, RmatParams::SOCIAL, 1).is_err());
        assert!(rmat(32, 8, RmatParams::SOCIAL, 1).is_err());
    }

    #[test]
    fn erdos_renyi_basic() {
        let g = erdos_renyi(1000, 5000, 3).expect("gen");
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 4500 && g.num_edges() <= 5000);
        assert!(erdos_renyi(1, 1, 0).is_err());
    }

    #[test]
    fn barabasi_albert_basic() {
        let g = barabasi_albert(500, 4, 9).expect("gen");
        assert_eq!(g.num_vertices(), 500);
        // Roughly k edges per non-seed vertex.
        assert!(g.num_edges() >= 450 * 4 / 2, "got {}", g.num_edges());
        assert!(barabasi_albert(3, 3, 0).is_err());
        assert!(barabasi_albert(10, 0, 0).is_err());
    }

    #[test]
    fn barabasi_albert_hubs() {
        let g = barabasi_albert(2000, 3, 11).expect("gen");
        let max_deg = (0..g.num_vertices())
            .map(|v| g.degree(v as u32))
            .max()
            .expect("non-empty");
        assert!(max_deg > 40, "preferential attachment should grow hubs");
    }

    #[test]
    fn watts_strogatz_basic() {
        let g = watts_strogatz(100, 3, 0.1, 5).expect("gen");
        assert_eq!(g.num_vertices(), 100);
        // Near n*k edges modulo rewiring collisions.
        assert!(g.num_edges() > 250);
        assert!(watts_strogatz(5, 3, 0.1, 0).is_err());
        assert!(watts_strogatz(100, 3, 1.5, 0).is_err());
    }

    #[test]
    fn community_basic() {
        let g = community(4, 50, 0.8, 30, 2).expect("gen");
        assert_eq!(g.num_vertices(), 200);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 20.0, "communities should be dense, avg {avg}");
        assert!(community(0, 50, 0.5, 0, 0).is_err());
        assert!(community(2, 50, 1.5, 0, 0).is_err());
    }
}
