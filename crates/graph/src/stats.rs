//! Graph statistics used for dataset reporting (Table 2) and generator
//! validation.

use crate::csr::{Graph, VertexId};

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of logical edges.
    pub num_edges: usize,
    /// Average degree (arcs per vertex).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Degree skew: max degree divided by average degree.
    pub skew: f64,
}

/// Computes [`GraphStats`] in a single pass.
pub fn stats(g: &Graph) -> GraphStats {
    let n = g.num_vertices();
    let mut max_degree = 0;
    let mut isolated = 0;
    for v in 0..n {
        let d = g.degree(v as VertexId);
        max_degree = max_degree.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    let avg = if n == 0 {
        0.0
    } else {
        g.num_directed_edges() as f64 / n as f64
    };
    GraphStats {
        num_vertices: n,
        num_edges: g.num_edges(),
        avg_degree: avg,
        max_degree,
        isolated,
        skew: if avg > 0.0 {
            max_degree as f64 / avg
        } else {
            0.0
        },
    }
}

/// Degree histogram in logarithmic buckets: bucket `i` counts vertices with
/// degree in `[2^i, 2^(i+1))`; bucket 0 additionally holds degree-0 and
/// degree-1 vertices.
pub fn log_degree_histogram(g: &Graph) -> Vec<usize> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..g.num_vertices() {
        let d = g.degree(v as VertexId);
        let b = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

/// Counts connected components with an iterative union–find.
pub fn connected_components(g: &Graph) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }
    for (u, v) in g.edges() {
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    let mut roots = 0;
    for v in 0..n as u32 {
        if find(&mut parent, v) == v {
            roots += 1;
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_path() {
        let mut b = GraphBuilder::undirected(4);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        let g = b.build().expect("build");
        let s = stats(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn isolated_counted() {
        let b = GraphBuilder::undirected(5);
        let g = b.build().expect("build");
        assert_eq!(stats(&g).isolated, 5);
        assert_eq!(stats(&g).skew, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        // Star with center degree 8 and 8 leaves of degree 1.
        let mut b = GraphBuilder::undirected(9);
        for v in 1..9 {
            b.add_edge(0, v);
        }
        let g = b.build().expect("build");
        let h = log_degree_histogram(&g);
        assert_eq!(h[0], 8, "leaves in bucket 0");
        assert_eq!(*h.last().expect("non-empty"), 1, "center in top bucket");
        assert_eq!(h.len(), 4, "degree 8 lands in bucket 3");
    }

    #[test]
    fn components_of_disconnected() {
        let mut b = GraphBuilder::undirected(6);
        b.extend_edges([(0, 1), (2, 3)]);
        let g = b.build().expect("build");
        // {0,1}, {2,3}, {4}, {5}.
        assert_eq!(connected_components(&g), 4);
    }

    #[test]
    fn components_of_connected_generator() {
        let g = generators::watts_strogatz(200, 3, 0.0, 1).expect("gen");
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn empty_graph_components() {
        let g = GraphBuilder::undirected(0).build().expect("build");
        assert_eq!(connected_components(&g), 0);
    }
}
