//! Graph storage, generators, IO and statistics for the Hourglass reproduction.
//!
//! This crate provides the graph substrate used by the partitioners
//! (`hourglass-partition`), the BSP engine (`hourglass-engine`) and the
//! benchmark harness. Graphs are stored in an immutable compressed-sparse-row
//! ([`Graph`]) representation built through a mutable [`GraphBuilder`].
//!
//! The [`datasets`] module maps the datasets of Table 2 in the paper to
//! deterministic synthetic stand-ins (see `DESIGN.md` §6 for the scaling
//! rationale).

// `deny` rather than `forbid`: the one sanctioned exception is the
// read-only mmap call in `io_mmap`, which carries a scoped allow and a
// safety argument. Everything else in the crate stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod crc32c;
pub mod csr;
pub mod datasets;
pub mod generators;
pub mod io;
pub mod io_binary;
pub mod io_mmap;
pub mod stats;
pub mod transform;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{Graph, VertexId};

use std::fmt;

/// Errors produced while constructing, generating or parsing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex id referenced an out-of-range vertex.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: u64,
    },
    /// A generator or builder was given inconsistent parameters.
    InvalidParameter(String),
    /// An IO error while reading or writing a graph file.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what failed to parse.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex id {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
