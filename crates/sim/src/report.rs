//! Plain-text and JSON rendering of experiment results (the figure/table
//! output of the bench harness).

use crate::experiment::ExperimentSummary;
use std::fmt::Write as _;

/// Renders a group of summaries as the bar-chart-with-annotations layout
/// of Figures 1/5/7: one row per strategy with normalized cost and the
/// missed-deadline percentage.
pub fn render_bar_table(title: &str, rows: &[ExperimentSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<24} {:>18} {:>12} {:>12} {:>10}",
        "strategy", "norm. cost (vs OD)", "missed %", "evictions", "runs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>18.3} {:>12.1} {:>12.2} {:>10}",
            r.strategy, r.normalized_cost, r.missed_pct, r.mean_evictions, r.runs
        );
    }
    out
}

/// Renders a generic numeric series table (Figures 6, 8, 9): one labelled
/// row per series, one column per x value.
pub fn render_series_table(
    title: &str,
    x_label: &str,
    xs: &[String],
    series: &[(String, Vec<f64>)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let mut header = format!("{:<28}", x_label);
    for x in xs {
        let _ = write!(header, "{x:>12}");
    }
    let _ = writeln!(out, "{header}");
    for (name, values) in series {
        let mut row = format!("{name:<28}");
        for v in values {
            if v.is_finite() {
                let formatted = if *v >= 1000.0 {
                    format!("{v:>12.0}")
                } else {
                    format!("{v:>12.3}")
                };
                row.push_str(&formatted);
            } else {
                let _ = write!(row, "{:>12}", "DNF");
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Serializes summaries as a JSON array (machine-readable experiment
/// artifacts; EXPERIMENTS.md links to these).
pub fn to_json(rows: &[ExperimentSummary]) -> String {
    let items: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "strategy": r.strategy,
                "job": r.job,
                "mean_cost": r.mean_cost,
                "normalized_cost": r.normalized_cost,
                "missed_pct": r.missed_pct,
                "mean_evictions": r.mean_evictions,
                "mean_finish": r.mean_finish,
                "cost_stddev": r.cost_stddev,
                "cost_p95": r.cost_p95,
                "runs": r.runs,
            })
        })
        .collect();
    serde_json::to_string_pretty(&items).expect("json of plain numbers cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(name: &str) -> ExperimentSummary {
        ExperimentSummary {
            strategy: name.into(),
            job: "GC".into(),
            mean_cost: 12.5,
            normalized_cost: 0.37,
            missed_pct: 0.0,
            mean_evictions: 1.5,
            mean_finish: 18_000.0,
            cost_stddev: 2.0,
            cost_p95: 16.0,
            runs: 100,
        }
    }

    #[test]
    fn bar_table_contains_rows() {
        let rows = vec![summary("Hourglass"), summary("SpotOn")];
        let s = render_bar_table("Figure 1", &rows);
        assert!(s.contains("Figure 1"));
        assert!(s.contains("Hourglass"));
        assert!(s.contains("0.370"));
    }

    #[test]
    fn series_table_handles_dnf() {
        let s = render_series_table(
            "Figure 9",
            "slack %",
            &["10".into(), "20".into()],
            &[("optimal".into(), vec![1234.0, f64::INFINITY])],
        );
        assert!(s.contains("1234"));
        assert!(s.contains("DNF"));
    }

    #[test]
    fn json_roundtrips() {
        let rows = vec![summary("Hourglass")];
        let j = to_json(&rows);
        let parsed: serde_json::Value = serde_json::from_str(&j).expect("valid json");
        assert_eq!(parsed[0]["strategy"], "Hourglass");
        assert_eq!(parsed[0]["runs"], 100);
    }
}
