//! Typed decision-loop events and their sinks.
//!
//! The runner's event loop (§4: decide → (re)deploy → load → execute →
//! checkpoint) emits one [`SimEvent`] per state transition so experiments
//! can observe *why* a strategy's cost came out the way it did — which
//! decisions were forced, where slack was burned waiting out price spikes,
//! which evictions hit during setup versus compute — without re-running
//! the simulation under ad-hoc counters. Every event carries the absolute
//! trace time, the work left, the configuration involved and the dollars
//! billed so far; sinks either buffer them ([`VecSink`]), stream them as
//! JSONL ([`JsonlSink`]) or fold them into per-strategy histograms on the
//! fly ([`EventAggregate`]).

use crate::{Result, SimError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// Where in a deployment's lifecycle an eviction landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Evicted while booting or loading: the setup interval is billed but
    /// no progress was made.
    Setup,
    /// Evicted during a compute interval: progress since the last
    /// checkpoint is lost (unless the eviction-warning extension saved
    /// part of it).
    Compute,
    /// Evicted while held idle during a price-spike wait for a different
    /// configuration.
    Wait,
    /// Sacrificed by the fleet scheduler to make room for another
    /// tenant's deployment (always preceded by a [`SimEvent::Preempt`]).
    Preempted,
}

/// Event kind discriminator (the `kind` column of the JSONL schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A strategy decision.
    Decide,
    /// A spot request waiting out a market spike.
    SpikeWait,
    /// A deployment acquisition.
    Acquire,
    /// A delta migration from a still-held deployment.
    Migrate,
    /// An eviction.
    Evict,
    /// A checkpoint landed.
    Checkpoint,
    /// A billed interval.
    Bill,
    /// A fault-injected degradation (retried I/O or a recovery fallback).
    Degraded,
    /// End of the run.
    Complete,
    /// Fleet: a tenant job reached admission control.
    Admit,
    /// Fleet: the scheduler sacrificed a tenant's deployment.
    Preempt,
    /// Fleet: a job reused warm state from an earlier job of its tenant.
    ShareHit,
}

/// One typed event of a simulated run.
///
/// All variants carry `t` (absolute trace time, seconds), `work_left`
/// (fraction of the job remaining) and `billed` (online dollars billed so
/// far, including this event's own interval for [`SimEvent::Bill`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// The strategy (or the forced last-resort override) picked a
    /// configuration.
    Decide {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed so far.
        billed: f64,
        /// Configuration index picked.
        pick: usize,
        /// True when the pick continues the held deployment.
        continuation: bool,
        /// True when the pick was forced to the last-resort configuration
        /// instead of asking the strategy.
        forced: bool,
        /// Seconds left until the deadline (negative once missed).
        slack: f64,
    },
    /// A spot request found the market above the bid and is waiting.
    SpikeWait {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed so far.
        billed: f64,
        /// Configuration index being waited for.
        pick: usize,
        /// When the wait step ends (the next decision point).
        resume_at: f64,
        /// Configuration still held (idle, billed) through the wait, if
        /// any.
        held: Option<usize>,
    },
    /// A deployment was acquired and starts booting/loading.
    Acquire {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed so far.
        billed: f64,
        /// Configuration index acquired.
        pick: usize,
        /// Boot plus load seconds ahead of this deployment.
        setup_seconds: f64,
        /// True when this acquisition pays the first (full) load.
        first_load: bool,
        /// Configuration released to make room, if any.
        released: Option<usize>,
    },
    /// A voluntary switch reconfigured the job by delta migration: the
    /// released deployment was still alive, so only the rehomed
    /// micro-partitions were re-shipped instead of a full reload (§6.2).
    Migrate {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed so far.
        billed: f64,
        /// Configuration index migrated to.
        pick: usize,
        /// Configuration index migrated away from (the released one).
        from: usize,
        /// Fraction of micro-partitions rehomed by the switch.
        moved_fraction: f64,
        /// Load seconds actually paid (the delta reload).
        delta_seconds: f64,
        /// Load seconds a full reload would have cost.
        full_seconds: f64,
    },
    /// The market reclaimed the deployment.
    Evict {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed so far.
        billed: f64,
        /// Configuration index evicted.
        pick: usize,
        /// Lifecycle phase the eviction hit.
        phase: Phase,
    },
    /// A checkpoint landed at the end of a compute interval.
    Checkpoint {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining (after the interval's progress).
        work_left: f64,
        /// Online dollars billed so far.
        billed: f64,
        /// Configuration index that computed the interval.
        pick: usize,
        /// Compute seconds of the interval (excluding the checkpoint
        /// write).
        chunk_seconds: f64,
    },
    /// An interval was billed against the market.
    Bill {
        /// Interval start (absolute trace time).
        t: f64,
        /// Interval end.
        to: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed so far, including this interval.
        billed: f64,
        /// Configuration index billed.
        pick: usize,
        /// Dollars charged for this interval.
        cost: f64,
    },
    /// The injected fault plan degraded an operation: transient I/O
    /// failures were retried away (stretching the phase by their backoff)
    /// or a checkpoint/reload fell back to a slower recovery path.
    Degraded {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed so far.
        billed: f64,
        /// Configuration index affected.
        pick: usize,
        /// Transient faults retried away during the operation.
        retries: u32,
        /// True when the operation abandoned its fast path (checkpoint
        /// lost, or reload re-assembled from the text store).
        fallback: bool,
        /// Wall-clock seconds the degradation added (retry backoff, or
        /// the partial work thrown away by a fallback).
        wasted_seconds: f64,
    },
    /// The run ended (job finished or trace horizon hit).
    Complete {
        /// Absolute trace time.
        t: f64,
        /// Work fraction remaining (zero unless the horizon cut the run).
        work_left: f64,
        /// Online dollars billed.
        billed: f64,
        /// Completion time relative to job start.
        finish_seconds: f64,
        /// The job's deadline, for slack-consumption accounting.
        deadline: f64,
        /// Total dollars (online plus offline phase).
        cost: f64,
        /// Online dollars only.
        online_cost: f64,
        /// True when the deadline was missed.
        missed_deadline: bool,
        /// False when the trace horizon cut the run short.
        completed: bool,
        /// Evictions suffered.
        evictions: usize,
        /// Deployments acquired.
        deployments: usize,
    },
    /// A tenant job reached the fleet scheduler's admission control
    /// (fleet runs only).
    Admit {
        /// Absolute trace time (the job's arrival).
        t: f64,
        /// Work fraction remaining (always 1.0 at admission).
        work_left: f64,
        /// Online dollars billed to the tenant so far.
        billed: f64,
        /// Tenant the job belongs to.
        tenant: u32,
        /// Recurrence index of the job within the tenant's stream.
        seq: usize,
        /// True when the job was admitted; false when admission control
        /// rejected it (e.g. the deadline is shorter than the job's
        /// minimum makespan).
        accepted: bool,
        /// The job's deadline, relative to its arrival.
        deadline: f64,
    },
    /// The fleet scheduler sacrificed a tenant's deployment to make room
    /// for another tenant (fleet runs only; followed by a
    /// [`SimEvent::Evict`] with [`Phase::Preempted`]).
    Preempt {
        /// Absolute trace time (the victim's current clock).
        t: f64,
        /// Work fraction the victim had remaining.
        work_left: f64,
        /// Online dollars the victim's job had billed so far.
        billed: f64,
        /// Tenant whose deployment was sacrificed.
        victim: u32,
        /// Configuration index the victim held.
        pick: usize,
    },
    /// A job reused warm state left by an earlier job of the same tenant
    /// (fleet runs only): either a still-held warm instance or the
    /// tenant's clustered HGS2 shards cached in the datastore.
    ShareHit {
        /// Absolute trace time (the admitted job's arrival).
        t: f64,
        /// Work fraction remaining.
        work_left: f64,
        /// Online dollars billed to the tenant so far.
        billed: f64,
        /// Tenant reusing the warm state.
        tenant: u32,
        /// Configuration index the reuse is priced against (the warm
        /// deployment, or the last-resort configuration for a
        /// shard-cache-only hit).
        pick: usize,
        /// True when a still-warm instance was handed over (boot and load
        /// skipped entirely); false when only the cached shards were
        /// reused (the next load pays the reload path, not the first
        /// text-store ingest).
        warm: bool,
        /// Nominal setup seconds the reuse saves the admitted job.
        saved_seconds: f64,
    },
}

impl SimEvent {
    /// The event's kind discriminator.
    pub fn kind(&self) -> EventKind {
        match self {
            SimEvent::Decide { .. } => EventKind::Decide,
            SimEvent::SpikeWait { .. } => EventKind::SpikeWait,
            SimEvent::Acquire { .. } => EventKind::Acquire,
            SimEvent::Migrate { .. } => EventKind::Migrate,
            SimEvent::Evict { .. } => EventKind::Evict,
            SimEvent::Checkpoint { .. } => EventKind::Checkpoint,
            SimEvent::Bill { .. } => EventKind::Bill,
            SimEvent::Degraded { .. } => EventKind::Degraded,
            SimEvent::Complete { .. } => EventKind::Complete,
            SimEvent::Admit { .. } => EventKind::Admit,
            SimEvent::Preempt { .. } => EventKind::Preempt,
            SimEvent::ShareHit { .. } => EventKind::ShareHit,
        }
    }

    /// Absolute trace time of the event (interval start for bills).
    pub fn t(&self) -> f64 {
        match self {
            SimEvent::Decide { t, .. }
            | SimEvent::SpikeWait { t, .. }
            | SimEvent::Acquire { t, .. }
            | SimEvent::Migrate { t, .. }
            | SimEvent::Evict { t, .. }
            | SimEvent::Checkpoint { t, .. }
            | SimEvent::Bill { t, .. }
            | SimEvent::Degraded { t, .. }
            | SimEvent::Complete { t, .. }
            | SimEvent::Admit { t, .. }
            | SimEvent::Preempt { t, .. }
            | SimEvent::ShareHit { t, .. } => *t,
        }
    }

    /// Online dollars billed up to (and including) this event.
    pub fn billed(&self) -> f64 {
        match self {
            SimEvent::Decide { billed, .. }
            | SimEvent::SpikeWait { billed, .. }
            | SimEvent::Acquire { billed, .. }
            | SimEvent::Migrate { billed, .. }
            | SimEvent::Evict { billed, .. }
            | SimEvent::Checkpoint { billed, .. }
            | SimEvent::Bill { billed, .. }
            | SimEvent::Degraded { billed, .. }
            | SimEvent::Complete { billed, .. }
            | SimEvent::Admit { billed, .. }
            | SimEvent::Preempt { billed, .. }
            | SimEvent::ShareHit { billed, .. } => *billed,
        }
    }

    /// Work fraction remaining at the event.
    pub fn work_left(&self) -> f64 {
        match self {
            SimEvent::Decide { work_left, .. }
            | SimEvent::SpikeWait { work_left, .. }
            | SimEvent::Acquire { work_left, .. }
            | SimEvent::Migrate { work_left, .. }
            | SimEvent::Evict { work_left, .. }
            | SimEvent::Checkpoint { work_left, .. }
            | SimEvent::Bill { work_left, .. }
            | SimEvent::Degraded { work_left, .. }
            | SimEvent::Complete { work_left, .. }
            | SimEvent::Admit { work_left, .. }
            | SimEvent::Preempt { work_left, .. }
            | SimEvent::ShareHit { work_left, .. } => *work_left,
        }
    }

    /// Configuration index involved, when the event concerns one.
    pub fn pick(&self) -> Option<usize> {
        match self {
            SimEvent::Decide { pick, .. }
            | SimEvent::SpikeWait { pick, .. }
            | SimEvent::Acquire { pick, .. }
            | SimEvent::Migrate { pick, .. }
            | SimEvent::Evict { pick, .. }
            | SimEvent::Checkpoint { pick, .. }
            | SimEvent::Bill { pick, .. }
            | SimEvent::Degraded { pick, .. }
            | SimEvent::Preempt { pick, .. }
            | SimEvent::ShareHit { pick, .. } => Some(*pick),
            SimEvent::Complete { .. } | SimEvent::Admit { .. } => None,
        }
    }

    /// Tenant the event names in its payload (fleet lifecycle events
    /// only; stream-level attribution travels separately, see
    /// [`EventSink::record_tenant`]).
    pub fn tenant(&self) -> Option<u32> {
        match self {
            SimEvent::Admit { tenant, .. } | SimEvent::ShareHit { tenant, .. } => Some(*tenant),
            SimEvent::Preempt { victim, .. } => Some(*victim),
            _ => None,
        }
    }
}

/// Receiver of run events. The runner reports events in simulation order
/// per run; sweeps replay buffered per-run streams into the caller's sink
/// in ascending run order, so a sink observes the same stream whether the
/// sweep ran sequentially or in parallel.
pub trait EventSink {
    /// Records one event of run `run`.
    fn record(&mut self, run: u32, event: &SimEvent);

    /// Records one event of run `run` attributed to `tenant` (fleet
    /// streams tag every event with the tenant it bills to). The default
    /// forwards to [`EventSink::record`], dropping the tag, so
    /// single-job sinks keep working unchanged; tenant-aware sinks
    /// override it.
    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        let _ = tenant;
        self.record(run, event);
    }
}

/// Discards every event (the un-observed entry points use this).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _run: u32, _event: &SimEvent) {}
}

/// Buffers events in memory, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded `(run, event)` pairs.
    pub events: Vec<(u32, SimEvent)>,
}

impl VecSink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for VecSink {
    fn record(&mut self, run: u32, event: &SimEvent) {
        self.events.push((run, event.clone()));
    }
}

/// Buffers tenant-tagged events in arrival order — the fleet analogue of
/// [`VecSink`]. Plain [`EventSink::record`] calls are stored untagged.
#[derive(Debug, Clone, Default)]
pub struct TaggedVecSink {
    /// The recorded `(run, tenant, event)` triples.
    pub events: Vec<(u32, Option<u32>, SimEvent)>,
}

impl TaggedVecSink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays the buffer into another sink, preserving tenant tags.
    pub fn replay(&self, sink: &mut dyn EventSink) {
        for (run, tenant, event) in &self.events {
            match tenant {
                Some(tn) => sink.record_tenant(*run, *tn, event),
                None => sink.record(*run, event),
            }
        }
    }
}

impl EventSink for TaggedVecSink {
    fn record(&mut self, run: u32, event: &SimEvent) {
        self.events.push((run, None, event.clone()));
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        self.events.push((run, Some(tenant), event.clone()));
    }
}

/// Broadcasts every event to two sinks (e.g. a JSONL file and an
/// in-memory aggregate).
pub struct TeeSink<'a> {
    /// First receiver.
    pub first: &'a mut dyn EventSink,
    /// Second receiver.
    pub second: &'a mut dyn EventSink,
}

impl EventSink for TeeSink<'_> {
    fn record(&mut self, run: u32, event: &SimEvent) {
        self.first.record(run, event);
        self.second.record(run, event);
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        self.first.record_tenant(run, tenant, event);
        self.second.record_tenant(run, tenant, event);
    }
}

/// Flat serialization record: one JSONL line per event. Kind-specific
/// fields are `None` on the kinds they do not apply to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Run index within the sweep.
    pub run: u32,
    /// Event kind.
    pub kind: EventKind,
    /// Absolute trace time (interval start for bills).
    pub t: f64,
    /// Work fraction remaining.
    pub work_left: f64,
    /// Online dollars billed so far.
    pub billed: f64,
    /// Configuration index involved.
    pub pick: Option<usize>,
    /// Decide: pick continues the held deployment.
    pub continuation: Option<bool>,
    /// Decide: pick was forced to the last-resort configuration.
    pub forced: Option<bool>,
    /// Decide: seconds left until the deadline.
    pub slack: Option<f64>,
    /// SpikeWait: end of the wait step.
    pub resume_at: Option<f64>,
    /// SpikeWait: configuration held through the wait.
    pub held: Option<usize>,
    /// Acquire: boot plus load seconds.
    pub setup_seconds: Option<f64>,
    /// Acquire: pays the first (full) load.
    pub first_load: Option<bool>,
    /// Acquire: configuration released to make room.
    pub released: Option<usize>,
    /// Migrate: configuration migrated away from.
    pub from: Option<usize>,
    /// Migrate: fraction of micro-partitions rehomed.
    pub moved_fraction: Option<f64>,
    /// Migrate: load seconds actually paid (the delta reload).
    pub delta_seconds: Option<f64>,
    /// Migrate: load seconds a full reload would have cost.
    pub full_seconds: Option<f64>,
    /// Evict: lifecycle phase hit.
    pub phase: Option<Phase>,
    /// Checkpoint: compute seconds of the interval.
    pub chunk_seconds: Option<f64>,
    /// Bill: interval end.
    pub to: Option<f64>,
    /// Bill: dollars charged for the interval.
    pub cost: Option<f64>,
    /// Degraded: transient faults retried away.
    pub retries: Option<u32>,
    /// Degraded: the operation abandoned its fast path.
    pub fallback: Option<bool>,
    /// Degraded: seconds the degradation added.
    pub wasted_seconds: Option<f64>,
    /// Complete: completion time relative to job start.
    pub finish_seconds: Option<f64>,
    /// Complete: the job's deadline.
    pub deadline: Option<f64>,
    /// Complete: total dollars (online plus offline).
    pub total_cost: Option<f64>,
    /// Complete: online dollars only.
    pub online_cost: Option<f64>,
    /// Complete: deadline missed.
    pub missed_deadline: Option<bool>,
    /// Complete: run finished within the trace.
    pub completed: Option<bool>,
    /// Complete: evictions suffered.
    pub evictions: Option<usize>,
    /// Complete: deployments acquired.
    pub deployments: Option<usize>,
    /// Tenant the event is attributed to (fleet streams; also the
    /// admitted/sharing tenant for Admit/ShareHit).
    pub tenant: Option<u32>,
    /// Admit: recurrence index of the admitted job.
    pub seq: Option<usize>,
    /// Admit: the job passed admission control.
    pub accepted: Option<bool>,
    /// Preempt: tenant whose deployment was sacrificed.
    pub victim: Option<u32>,
    /// ShareHit: a still-warm instance was handed over (not just shards).
    pub warm: Option<bool>,
    /// ShareHit: nominal setup seconds the reuse saves.
    pub saved_seconds: Option<f64>,
}

impl EventRecord {
    fn empty(run: u32, kind: EventKind, t: f64, work_left: f64, billed: f64) -> Self {
        EventRecord {
            run,
            kind,
            t,
            work_left,
            billed,
            pick: None,
            continuation: None,
            forced: None,
            slack: None,
            resume_at: None,
            held: None,
            setup_seconds: None,
            first_load: None,
            released: None,
            from: None,
            moved_fraction: None,
            delta_seconds: None,
            full_seconds: None,
            phase: None,
            chunk_seconds: None,
            to: None,
            cost: None,
            retries: None,
            fallback: None,
            wasted_seconds: None,
            finish_seconds: None,
            deadline: None,
            total_cost: None,
            online_cost: None,
            missed_deadline: None,
            completed: None,
            evictions: None,
            deployments: None,
            tenant: None,
            seq: None,
            accepted: None,
            victim: None,
            warm: None,
            saved_seconds: None,
        }
    }

    /// Flattens a typed event into a record.
    pub fn from_event(run: u32, event: &SimEvent) -> Self {
        let mut r = Self::empty(
            run,
            event.kind(),
            event.t(),
            event.work_left(),
            event.billed(),
        );
        r.pick = event.pick();
        match *event {
            SimEvent::Decide {
                continuation,
                forced,
                slack,
                ..
            } => {
                r.continuation = Some(continuation);
                r.forced = Some(forced);
                r.slack = Some(slack);
            }
            SimEvent::SpikeWait {
                resume_at, held, ..
            } => {
                r.resume_at = Some(resume_at);
                r.held = held;
            }
            SimEvent::Acquire {
                setup_seconds,
                first_load,
                released,
                ..
            } => {
                r.setup_seconds = Some(setup_seconds);
                r.first_load = Some(first_load);
                r.released = released;
            }
            SimEvent::Migrate {
                from,
                moved_fraction,
                delta_seconds,
                full_seconds,
                ..
            } => {
                r.from = Some(from);
                r.moved_fraction = Some(moved_fraction);
                r.delta_seconds = Some(delta_seconds);
                r.full_seconds = Some(full_seconds);
            }
            SimEvent::Evict { phase, .. } => {
                r.phase = Some(phase);
            }
            SimEvent::Checkpoint { chunk_seconds, .. } => {
                r.chunk_seconds = Some(chunk_seconds);
            }
            SimEvent::Bill { to, cost, .. } => {
                r.to = Some(to);
                r.cost = Some(cost);
            }
            SimEvent::Degraded {
                retries,
                fallback,
                wasted_seconds,
                ..
            } => {
                r.retries = Some(retries);
                r.fallback = Some(fallback);
                r.wasted_seconds = Some(wasted_seconds);
            }
            SimEvent::Complete {
                finish_seconds,
                deadline,
                cost,
                online_cost,
                missed_deadline,
                completed,
                evictions,
                deployments,
                ..
            } => {
                r.finish_seconds = Some(finish_seconds);
                r.deadline = Some(deadline);
                r.total_cost = Some(cost);
                r.online_cost = Some(online_cost);
                r.missed_deadline = Some(missed_deadline);
                r.completed = Some(completed);
                r.evictions = Some(evictions);
                r.deployments = Some(deployments);
            }
            SimEvent::Admit {
                tenant,
                seq,
                accepted,
                deadline,
                ..
            } => {
                r.tenant = Some(tenant);
                r.seq = Some(seq);
                r.accepted = Some(accepted);
                r.deadline = Some(deadline);
            }
            SimEvent::Preempt { victim, .. } => {
                r.victim = Some(victim);
            }
            SimEvent::ShareHit {
                tenant,
                warm,
                saved_seconds,
                ..
            } => {
                r.tenant = Some(tenant);
                r.warm = Some(warm);
                r.saved_seconds = Some(saved_seconds);
            }
        }
        r
    }

    /// Flattens a typed event together with its stream-level tenant
    /// attribution (the [`EventSink::record_tenant`] tag). A tenant
    /// already named by the event payload wins; fleet streams tag
    /// consistently so the two always agree.
    pub fn from_event_tagged(run: u32, tenant: Option<u32>, event: &SimEvent) -> Self {
        let mut r = Self::from_event(run, event);
        // The stream tag only fills in for events whose payload names no
        // tenant (a `Preempt` carries its tenant as `victim`, not in the
        // record's `tenant` field).
        if event.tenant().is_none() {
            r.tenant = tenant;
        }
        r
    }

    /// Rebuilds the typed event; fails when a kind-specific field is
    /// missing.
    pub fn into_event(self) -> Result<(u32, SimEvent)> {
        fn need<T>(field: Option<T>, name: &str, kind: EventKind) -> Result<T> {
            field.ok_or_else(|| {
                SimError::InvalidParameter(format!("event record {kind:?} missing `{name}`"))
            })
        }
        let k = self.kind;
        let event = match k {
            EventKind::Decide => SimEvent::Decide {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                continuation: need(self.continuation, "continuation", k)?,
                forced: need(self.forced, "forced", k)?,
                slack: need(self.slack, "slack", k)?,
            },
            EventKind::SpikeWait => SimEvent::SpikeWait {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                resume_at: need(self.resume_at, "resume_at", k)?,
                held: self.held,
            },
            EventKind::Acquire => SimEvent::Acquire {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                setup_seconds: need(self.setup_seconds, "setup_seconds", k)?,
                first_load: need(self.first_load, "first_load", k)?,
                released: self.released,
            },
            EventKind::Migrate => SimEvent::Migrate {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                from: need(self.from, "from", k)?,
                moved_fraction: need(self.moved_fraction, "moved_fraction", k)?,
                delta_seconds: need(self.delta_seconds, "delta_seconds", k)?,
                full_seconds: need(self.full_seconds, "full_seconds", k)?,
            },
            EventKind::Evict => SimEvent::Evict {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                phase: need(self.phase, "phase", k)?,
            },
            EventKind::Checkpoint => SimEvent::Checkpoint {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                chunk_seconds: need(self.chunk_seconds, "chunk_seconds", k)?,
            },
            EventKind::Bill => SimEvent::Bill {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                to: need(self.to, "to", k)?,
                cost: need(self.cost, "cost", k)?,
            },
            EventKind::Degraded => SimEvent::Degraded {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                pick: need(self.pick, "pick", k)?,
                retries: need(self.retries, "retries", k)?,
                fallback: need(self.fallback, "fallback", k)?,
                wasted_seconds: need(self.wasted_seconds, "wasted_seconds", k)?,
            },
            EventKind::Complete => SimEvent::Complete {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                finish_seconds: need(self.finish_seconds, "finish_seconds", k)?,
                deadline: need(self.deadline, "deadline", k)?,
                cost: need(self.total_cost, "total_cost", k)?,
                online_cost: need(self.online_cost, "online_cost", k)?,
                missed_deadline: need(self.missed_deadline, "missed_deadline", k)?,
                completed: need(self.completed, "completed", k)?,
                evictions: need(self.evictions, "evictions", k)?,
                deployments: need(self.deployments, "deployments", k)?,
            },
            EventKind::Admit => SimEvent::Admit {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                tenant: need(self.tenant, "tenant", k)?,
                seq: need(self.seq, "seq", k)?,
                accepted: need(self.accepted, "accepted", k)?,
                deadline: need(self.deadline, "deadline", k)?,
            },
            EventKind::Preempt => SimEvent::Preempt {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                victim: need(self.victim, "victim", k)?,
                pick: need(self.pick, "pick", k)?,
            },
            EventKind::ShareHit => SimEvent::ShareHit {
                t: self.t,
                work_left: self.work_left,
                billed: self.billed,
                tenant: need(self.tenant, "tenant", k)?,
                pick: need(self.pick, "pick", k)?,
                warm: need(self.warm, "warm", k)?,
                saved_seconds: need(self.saved_seconds, "saved_seconds", k)?,
            },
        };
        Ok((self.run, event))
    }

    /// Rebuilds the typed event together with its stream-level tenant
    /// tag (see [`EventRecord::from_event_tagged`]).
    pub fn into_event_tagged(self) -> Result<(u32, Option<u32>, SimEvent)> {
        let tenant = self.tenant;
        let (run, event) = self.into_event()?;
        // Payload tenant wins (it is authoritative for `Preempt`, whose
        // record keeps it under `victim`).
        let tenant = event.tenant().or(tenant);
        Ok((run, tenant, event))
    }
}

/// Streams events as one serialized [`EventRecord`] per line.
///
/// Write errors are sticky: the first failure stops further output and is
/// reported by [`JsonlSink::finish`].
pub struct JsonlSink<W: Write> {
    out: W,
    lines: u64,
    failed: Option<String>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            failed: None,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first serialization/write
    /// error encountered.
    pub fn finish(mut self) -> Result<W> {
        if let Some(e) = self.failed {
            return Err(SimError::InvalidParameter(format!("event log sink: {e}")));
        }
        self.out
            .flush()
            .map_err(|e| SimError::InvalidParameter(format!("event log sink: {e}")))?;
        Ok(self.out)
    }
}

impl<W: Write> JsonlSink<W> {
    fn write_record(&mut self, record: &EventRecord) {
        if self.failed.is_some() {
            return;
        }
        match serde_json::to_string(record) {
            Ok(line) => match writeln!(self.out, "{line}") {
                Ok(()) => self.lines += 1,
                Err(e) => self.failed = Some(e.to_string()),
            },
            Err(e) => self.failed = Some(e.to_string()),
        }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn record(&mut self, run: u32, event: &SimEvent) {
        let record = EventRecord::from_event(run, event);
        self.write_record(&record);
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        let record = EventRecord::from_event_tagged(run, Some(tenant), event);
        self.write_record(&record);
    }
}

/// Parses a JSONL event log back into `(run, event)` pairs.
pub fn parse_jsonl<R: BufRead>(reader: R) -> Result<Vec<(u32, SimEvent)>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| SimError::InvalidParameter(format!("event log read: {e}")))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: EventRecord = serde_json::from_str(line)
            .map_err(|e| SimError::InvalidParameter(format!("event log parse: {e}")))?;
        out.push(record.into_event()?);
    }
    Ok(out)
}

/// Parses a JSONL event log back into `(run, tenant, event)` triples,
/// preserving the tenant attribution fleet streams write.
pub fn parse_jsonl_tagged<R: BufRead>(reader: R) -> Result<Vec<(u32, Option<u32>, SimEvent)>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| SimError::InvalidParameter(format!("event log read: {e}")))?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let record: EventRecord = serde_json::from_str(line)
            .map_err(|e| SimError::InvalidParameter(format!("event log parse: {e}")))?;
        out.push(record.into_event_tagged()?);
    }
    Ok(out)
}

/// Number of buckets in [`EventAggregate::slack_hist`].
pub const SLACK_BUCKETS: usize = 12;

/// Streaming aggregation of an event log: per-strategy counters and
/// histograms, computable either online (as an [`EventSink`]) or from a
/// replayed log, with identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct EventAggregate {
    /// Decisions taken.
    pub decides: u64,
    /// Decisions that continued the held deployment.
    pub continuations: u64,
    /// Decisions forced to the last-resort configuration.
    pub forced: u64,
    /// Spike-wait steps.
    pub spike_waits: u64,
    /// Deployments acquired.
    pub acquires: u64,
    /// Delta migrations (from [`SimEvent::Migrate`]).
    pub migrations: u64,
    /// Evictions (from [`SimEvent::Evict`]).
    pub evictions: u64,
    /// Evictions that hit an idle deployment during a spike wait.
    pub wait_evictions: u64,
    /// Checkpoints landed.
    pub checkpoints: u64,
    /// Degradation events (from [`SimEvent::Degraded`]).
    pub degraded: u64,
    /// Transient faults retried away across all degradations.
    pub retries: u64,
    /// Degradations that abandoned their fast path.
    pub fallbacks: u64,
    /// Runs completed (one [`SimEvent::Complete`] each).
    pub runs: u64,
    /// Runs that missed their deadline.
    pub missed_deadlines: u64,
    /// Runs cut short by the trace horizon.
    pub incomplete_runs: u64,
    /// Dollars across [`SimEvent::Bill`] events.
    pub billed_dollars: f64,
    /// Total dollars across [`SimEvent::Complete`] events.
    pub total_dollars: f64,
    /// Histogram over evictions-per-run (index = eviction count, last
    /// bucket collects the tail).
    pub eviction_hist: Vec<u64>,
    /// Histogram of slack consumption per run: `finish/deadline` in
    /// tenths; bucket 10 is exactly-missed-to-110%, bucket 11 the tail.
    pub slack_hist: [u64; SLACK_BUCKETS],
    /// Fleet: jobs accepted by admission control.
    pub admits: u64,
    /// Fleet: jobs rejected by admission control.
    pub rejects: u64,
    /// Fleet: deployments sacrificed to another tenant.
    pub preemptions: u64,
    /// Fleet: warm-state reuses across jobs of a tenant.
    pub share_hits: u64,
    /// Fleet: per-tenant cost/SLO rollups, populated only by
    /// tenant-tagged streams (see [`EventSink::record_tenant`]).
    pub tenants: BTreeMap<u32, TenantAggregate>,
}

/// Per-tenant cost and deadline-SLO rollup within an [`EventAggregate`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantAggregate {
    /// Jobs the tenant completed (one [`SimEvent::Complete`] each).
    pub runs: u64,
    /// Jobs that missed their deadline.
    pub missed_deadlines: u64,
    /// Jobs cut short by the trace horizon.
    pub incomplete_runs: u64,
    /// Dollars billed to the tenant across [`SimEvent::Bill`] events
    /// (including warm-hold idle bills).
    pub billed_dollars: f64,
    /// Total dollars across the tenant's [`SimEvent::Complete`] events.
    pub total_dollars: f64,
    /// Evictions the tenant suffered (market and preemption).
    pub evictions: u64,
    /// Jobs accepted at admission.
    pub admits: u64,
    /// Jobs rejected at admission.
    pub rejects: u64,
    /// Times the tenant's deployment was sacrificed.
    pub preemptions: u64,
    /// Warm-state reuses the tenant enjoyed.
    pub share_hits: u64,
}

impl TenantAggregate {
    /// Deadline-miss rate over the tenant's completed jobs, in percent.
    pub fn missed_pct(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.missed_deadlines as f64 / self.runs as f64 * 100.0
        }
    }

    fn merge(&mut self, other: &TenantAggregate) {
        self.runs += other.runs;
        self.missed_deadlines += other.missed_deadlines;
        self.incomplete_runs += other.incomplete_runs;
        self.billed_dollars += other.billed_dollars;
        self.total_dollars += other.total_dollars;
        self.evictions += other.evictions;
        self.admits += other.admits;
        self.rejects += other.rejects;
        self.preemptions += other.preemptions;
        self.share_hits += other.share_hits;
    }
}

impl Default for EventAggregate {
    fn default() -> Self {
        EventAggregate {
            decides: 0,
            continuations: 0,
            forced: 0,
            spike_waits: 0,
            acquires: 0,
            migrations: 0,
            evictions: 0,
            wait_evictions: 0,
            checkpoints: 0,
            degraded: 0,
            retries: 0,
            fallbacks: 0,
            runs: 0,
            missed_deadlines: 0,
            incomplete_runs: 0,
            billed_dollars: 0.0,
            total_dollars: 0.0,
            eviction_hist: vec![0; 9],
            slack_hist: [0; SLACK_BUCKETS],
            admits: 0,
            rejects: 0,
            preemptions: 0,
            share_hits: 0,
            tenants: BTreeMap::new(),
        }
    }
}

impl EventAggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a buffered event stream (the replay path; bit-identical to
    /// feeding the same stream through the [`EventSink`] impl).
    pub fn from_events(events: &[(u32, SimEvent)]) -> Self {
        let mut agg = Self::new();
        for (run, e) in events {
            agg.record(*run, e);
        }
        agg
    }

    /// Folds a buffered tenant-tagged stream (the fleet replay path;
    /// bit-identical to streaming through [`EventSink::record_tenant`]).
    pub fn from_tagged_events(events: &[(u32, Option<u32>, SimEvent)]) -> Self {
        let mut agg = Self::new();
        for (run, tenant, e) in events {
            match tenant {
                Some(tn) => agg.record_tenant(*run, *tn, e),
                None => agg.record(*run, e),
            }
        }
        agg
    }

    /// Folds another aggregate into this one (counters and histograms
    /// add; the eviction histogram grows to the longer of the two).
    pub fn merge(&mut self, other: &EventAggregate) {
        self.decides += other.decides;
        self.continuations += other.continuations;
        self.forced += other.forced;
        self.spike_waits += other.spike_waits;
        self.acquires += other.acquires;
        self.migrations += other.migrations;
        self.evictions += other.evictions;
        self.wait_evictions += other.wait_evictions;
        self.checkpoints += other.checkpoints;
        self.degraded += other.degraded;
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.runs += other.runs;
        self.missed_deadlines += other.missed_deadlines;
        self.incomplete_runs += other.incomplete_runs;
        self.billed_dollars += other.billed_dollars;
        self.total_dollars += other.total_dollars;
        if self.eviction_hist.len() < other.eviction_hist.len() {
            self.eviction_hist.resize(other.eviction_hist.len(), 0);
        }
        for (i, &n) in other.eviction_hist.iter().enumerate() {
            self.eviction_hist[i] += n;
        }
        for (a, b) in self.slack_hist.iter_mut().zip(&other.slack_hist) {
            *a += b;
        }
        self.admits += other.admits;
        self.rejects += other.rejects;
        self.preemptions += other.preemptions;
        self.share_hits += other.share_hits;
        for (tenant, stats) in &other.tenants {
            self.tenants.entry(*tenant).or_default().merge(stats);
        }
    }

    /// Mean evictions per run (zero when no runs completed).
    pub fn mean_evictions(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.evictions as f64 / self.runs as f64
        }
    }
}

impl EventSink for EventAggregate {
    fn record(&mut self, _run: u32, event: &SimEvent) {
        match *event {
            SimEvent::Decide {
                continuation,
                forced,
                ..
            } => {
                self.decides += 1;
                if continuation {
                    self.continuations += 1;
                }
                if forced {
                    self.forced += 1;
                }
            }
            SimEvent::SpikeWait { .. } => self.spike_waits += 1,
            SimEvent::Acquire { .. } => self.acquires += 1,
            SimEvent::Migrate { .. } => self.migrations += 1,
            SimEvent::Evict { phase, .. } => {
                self.evictions += 1;
                if phase == Phase::Wait {
                    self.wait_evictions += 1;
                }
            }
            SimEvent::Checkpoint { .. } => self.checkpoints += 1,
            SimEvent::Bill { cost, .. } => self.billed_dollars += cost,
            SimEvent::Degraded {
                retries, fallback, ..
            } => {
                self.degraded += 1;
                self.retries += retries as u64;
                if fallback {
                    self.fallbacks += 1;
                }
            }
            SimEvent::Complete {
                finish_seconds,
                deadline,
                cost,
                missed_deadline,
                completed,
                evictions,
                ..
            } => {
                self.runs += 1;
                if missed_deadline {
                    self.missed_deadlines += 1;
                }
                if !completed {
                    self.incomplete_runs += 1;
                }
                self.total_dollars += cost;
                let bucket = evictions.min(self.eviction_hist.len() - 1);
                self.eviction_hist[bucket] += 1;
                let frac = if deadline > 0.0 {
                    finish_seconds / deadline
                } else {
                    f64::INFINITY
                };
                let slot = if frac.is_finite() && frac >= 0.0 {
                    ((frac * 10.0) as usize).min(SLACK_BUCKETS - 1)
                } else {
                    SLACK_BUCKETS - 1
                };
                self.slack_hist[slot] += 1;
            }
            SimEvent::Admit { accepted, .. } => {
                if accepted {
                    self.admits += 1;
                } else {
                    self.rejects += 1;
                }
            }
            SimEvent::Preempt { .. } => self.preemptions += 1,
            SimEvent::ShareHit { .. } => self.share_hits += 1,
        }
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        self.record(run, event);
        let t = self.tenants.entry(tenant).or_default();
        match *event {
            SimEvent::Bill { cost, .. } => t.billed_dollars += cost,
            SimEvent::Evict { .. } => t.evictions += 1,
            SimEvent::Complete {
                cost,
                missed_deadline,
                completed,
                ..
            } => {
                t.runs += 1;
                if missed_deadline {
                    t.missed_deadlines += 1;
                }
                if !completed {
                    t.incomplete_runs += 1;
                }
                t.total_dollars += cost;
            }
            SimEvent::Admit { accepted, .. } => {
                if accepted {
                    t.admits += 1;
                } else {
                    t.rejects += 1;
                }
            }
            SimEvent::Preempt { .. } => t.preemptions += 1,
            SimEvent::ShareHit { .. } => t.share_hits += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(u32, SimEvent)> {
        vec![
            (
                0,
                SimEvent::Decide {
                    t: 0.0,
                    work_left: 1.0,
                    billed: 0.0,
                    pick: 3,
                    continuation: false,
                    forced: false,
                    slack: 7200.0,
                },
            ),
            (
                0,
                SimEvent::Acquire {
                    t: 0.0,
                    work_left: 1.0,
                    billed: 0.0,
                    pick: 3,
                    setup_seconds: 160.0,
                    first_load: true,
                    released: None,
                },
            ),
            (
                0,
                SimEvent::Bill {
                    t: 0.0,
                    to: 160.0,
                    work_left: 1.0,
                    billed: 0.25,
                    pick: 3,
                    cost: 0.25,
                },
            ),
            (
                0,
                SimEvent::SpikeWait {
                    t: 160.0,
                    work_left: 1.0,
                    billed: 0.25,
                    pick: 5,
                    resume_at: 460.0,
                    held: Some(3),
                },
            ),
            (
                0,
                SimEvent::Migrate {
                    t: 200.0,
                    work_left: 1.0,
                    billed: 0.3,
                    pick: 5,
                    from: 3,
                    moved_fraction: 0.5,
                    delta_seconds: 45.0,
                    full_seconds: 90.0,
                },
            ),
            (
                0,
                SimEvent::Evict {
                    t: 300.0,
                    work_left: 1.0,
                    billed: 0.5,
                    pick: 3,
                    phase: Phase::Wait,
                },
            ),
            (
                0,
                SimEvent::Checkpoint {
                    t: 900.0,
                    work_left: 0.5,
                    billed: 1.0,
                    pick: 5,
                    chunk_seconds: 400.0,
                },
            ),
            (
                0,
                SimEvent::Degraded {
                    t: 1000.0,
                    work_left: 0.5,
                    billed: 1.25,
                    pick: 5,
                    retries: 2,
                    fallback: true,
                    wasted_seconds: 35.0,
                },
            ),
            (
                0,
                SimEvent::Complete {
                    t: 1500.0,
                    work_left: 0.0,
                    billed: 2.0,
                    finish_seconds: 1500.0,
                    deadline: 7200.0,
                    cost: 2.5,
                    online_cost: 2.0,
                    missed_deadline: false,
                    completed: true,
                    evictions: 1,
                    deployments: 2,
                },
            ),
            (
                1,
                SimEvent::Admit {
                    t: 1600.0,
                    work_left: 1.0,
                    billed: 0.0,
                    tenant: 7,
                    seq: 0,
                    accepted: true,
                    deadline: 7200.0,
                },
            ),
            (
                1,
                SimEvent::Admit {
                    t: 1600.0,
                    work_left: 1.0,
                    billed: 0.0,
                    tenant: 8,
                    seq: 0,
                    accepted: false,
                    deadline: 10.0,
                },
            ),
            (
                1,
                SimEvent::ShareHit {
                    t: 1600.0,
                    work_left: 1.0,
                    billed: 0.0,
                    tenant: 7,
                    pick: 3,
                    warm: true,
                    saved_seconds: 220.0,
                },
            ),
            (
                1,
                SimEvent::Preempt {
                    t: 1700.0,
                    work_left: 0.4,
                    billed: 0.8,
                    victim: 7,
                    pick: 3,
                },
            ),
        ]
    }

    #[test]
    fn record_round_trips_every_kind() {
        for (run, e) in sample_events() {
            let rec = EventRecord::from_event(run, &e);
            let (r2, e2) = rec.into_event().expect("round trip");
            assert_eq!(r2, run);
            assert_eq!(e2, e);
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = sample_events();
        for (run, e) in &events {
            sink.record(*run, e);
        }
        assert_eq!(sink.lines(), events.len() as u64);
        let buf = sink.finish().expect("finish");
        let parsed = parse_jsonl(&buf[..]).expect("parse");
        assert_eq!(parsed, events);
    }

    #[test]
    fn malformed_record_is_rejected() {
        let rec = EventRecord::empty(0, EventKind::Decide, 0.0, 1.0, 0.0);
        assert!(rec.into_event().is_err());
    }

    #[test]
    fn aggregate_counts_and_histograms() {
        let agg = EventAggregate::from_events(&sample_events());
        assert_eq!(agg.decides, 1);
        assert_eq!(agg.spike_waits, 1);
        assert_eq!(agg.acquires, 1);
        assert_eq!(agg.migrations, 1);
        assert_eq!(agg.evictions, 1);
        assert_eq!(agg.wait_evictions, 1);
        assert_eq!(agg.checkpoints, 1);
        assert_eq!(agg.degraded, 1);
        assert_eq!(agg.retries, 2);
        assert_eq!(agg.fallbacks, 1);
        assert_eq!(agg.runs, 1);
        assert_eq!(agg.missed_deadlines, 0);
        assert!((agg.billed_dollars - 0.25).abs() < 1e-12);
        assert!((agg.total_dollars - 2.5).abs() < 1e-12);
        assert_eq!(agg.eviction_hist[1], 1);
        // finish/deadline ≈ 0.208 → bucket 2.
        assert_eq!(agg.slack_hist[2], 1);
        assert!((agg.mean_evictions() - 1.0).abs() < 1e-12);
        assert_eq!(agg.admits, 1);
        assert_eq!(agg.rejects, 1);
        assert_eq!(agg.preemptions, 1);
        assert_eq!(agg.share_hits, 1);
        // Untagged replay leaves the per-tenant rollups empty.
        assert!(agg.tenants.is_empty());
    }

    #[test]
    fn tagged_jsonl_round_trips_tenant_field() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = sample_events();
        for (i, (run, e)) in events.iter().enumerate() {
            // Alternate tagged/untagged records to cover both paths.
            if i % 2 == 0 {
                sink.record_tenant(*run, 42, e);
            } else {
                sink.record(*run, e);
            }
        }
        let buf = sink.finish().expect("finish");
        let parsed = parse_jsonl_tagged(&buf[..]).expect("parse");
        assert_eq!(parsed.len(), events.len());
        for (i, ((run, tenant, e), (run0, e0))) in parsed.iter().zip(&events).enumerate() {
            assert_eq!(run, run0);
            assert_eq!(e, e0);
            // Fleet lifecycle events name a tenant in their payload; the
            // payload tenant wins over the stream tag.
            let expect = if let Some(tn) = e0.tenant() {
                Some(tn)
            } else if i % 2 == 0 {
                Some(42)
            } else {
                None
            };
            assert_eq!(*tenant, expect);
        }
        // The untagged parser still accepts the same log.
        let plain = parse_jsonl(&buf[..]).expect("parse untagged");
        assert_eq!(plain, events);
    }

    #[test]
    fn tenant_rollups_follow_tags() {
        let tagged: Vec<(u32, Option<u32>, SimEvent)> = sample_events()
            .into_iter()
            .map(|(run, e)| {
                let tenant = e.tenant().or(Some(7));
                (run, tenant, e)
            })
            .collect();
        let agg = EventAggregate::from_tagged_events(&tagged);
        let t7 = agg.tenants.get(&7).expect("tenant 7");
        assert_eq!(t7.runs, 1);
        assert_eq!(t7.evictions, 1);
        assert_eq!(t7.admits, 1);
        assert_eq!(t7.preemptions, 1);
        assert_eq!(t7.share_hits, 1);
        assert!((t7.billed_dollars - 0.25).abs() < 1e-12);
        assert!((t7.total_dollars - 2.5).abs() < 1e-12);
        assert_eq!(t7.missed_pct(), 0.0);
        let t8 = agg.tenants.get(&8).expect("tenant 8");
        assert_eq!(t8.rejects, 1);
        assert_eq!(t8.runs, 0);
        // Online tagged aggregation matches the replay fold.
        let mut online = EventAggregate::new();
        for (run, tenant, e) in &tagged {
            match tenant {
                Some(tn) => online.record_tenant(*run, *tn, e),
                None => online.record(*run, e),
            }
        }
        assert_eq!(online, agg);
    }

    #[test]
    fn online_and_replay_aggregation_agree() {
        let events = sample_events();
        let mut online = EventAggregate::new();
        for (run, e) in &events {
            online.record(*run, e);
        }
        assert_eq!(online, EventAggregate::from_events(&events));
    }

    #[test]
    fn merge_matches_joint_aggregation() {
        let events = sample_events();
        let (a, b) = events.split_at(3);
        let mut merged = EventAggregate::from_events(a);
        merged.merge(&EventAggregate::from_events(b));
        assert_eq!(merged, EventAggregate::from_events(&events));
    }
}
