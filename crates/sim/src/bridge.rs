//! Re-emits decision-loop events onto the cross-layer tracing timeline.
//!
//! The simulator reports typed [`SimEvent`]s through an [`EventSink`];
//! [`TraceBridge`] is a sink that forwards them to `hourglass-obs` as
//! spans, instants and counters on the *simulated-time* tracks
//! ([`hourglass_obs::sim_track`], one per Monte-Carlo run). A single
//! Chrome trace can then show the provisioner's decision loop (simulated
//! seconds) next to the engine, loader and partitioner phases (wall-clock
//! nanoseconds) — the two timelines live under separate trace processes
//! so Perfetto never conflates their clocks.
//!
//! The bridge derives every timestamp from the event's simulated time, so
//! the records it emits are a pure function of the event stream: tracing
//! a sweep cannot perturb outcomes, and the emitted records are identical
//! whether the sweep ran sequentially or in parallel.

use crate::events::{EventSink, Phase, SimEvent};
use hourglass_obs as obs;
use hourglass_obs::{Args, RecordKind, SpanRecord};

/// Converts an absolute simulated time (seconds) to trace nanoseconds.
fn sim_ns(t: f64) -> u64 {
    if t <= 0.0 || !t.is_finite() {
        0
    } else {
        (t * 1e9) as u64
    }
}

/// Dollars → microdollars, saturating at zero (counter args are `u64`).
fn microdollars(d: f64) -> u64 {
    if d <= 0.0 || !d.is_finite() {
        0
    } else {
        (d * 1e6) as u64
    }
}

fn phase_code(phase: Phase) -> u64 {
    match phase {
        Phase::Setup => 0,
        Phase::Compute => 1,
        Phase::Wait => 2,
        Phase::Preempted => 3,
    }
}

/// An [`EventSink`] that mirrors every decision event onto the trace.
///
/// Records nothing (and allocates nothing) when no
/// [`hourglass_obs::TraceSession`] is active, so it is safe to wire
/// unconditionally and gate only on the `--trace` flag at export time.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceBridge;

impl TraceBridge {
    /// Creates a bridge.
    pub fn new() -> Self {
        TraceBridge
    }

    fn emit(
        &self,
        track: u32,
        name: &'static str,
        kind: RecordKind,
        start: f64,
        end: f64,
        args: Args,
    ) {
        let start_ns = sim_ns(start);
        obs::record(SpanRecord {
            name,
            cat: "sim",
            track,
            start_ns,
            // Chrome "X" events need a non-negative duration even when a
            // wait resumes "immediately" in simulated time.
            end_ns: sim_ns(end).max(start_ns),
            kind,
            args,
        });
    }
}

impl EventSink for TraceBridge {
    fn record(&mut self, run: u32, event: &SimEvent) {
        if !obs::enabled() {
            return;
        }
        let track = obs::sim_track(run);
        match *event {
            SimEvent::Decide {
                t,
                pick,
                continuation,
                forced,
                ..
            } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                args.push("continuation", continuation as u64);
                args.push("forced", forced as u64);
                self.emit(track, "decide", RecordKind::Instant, t, t, args);
            }
            SimEvent::SpikeWait {
                t,
                pick,
                resume_at,
                held,
                ..
            } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                if let Some(h) = held {
                    args.push("held", h as u64);
                }
                self.emit(track, "spike_wait", RecordKind::Span, t, resume_at, args);
            }
            SimEvent::Acquire {
                t,
                pick,
                setup_seconds,
                first_load,
                ..
            } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                args.push("first_load", first_load as u64);
                self.emit(track, "setup", RecordKind::Span, t, t + setup_seconds, args);
            }
            SimEvent::Migrate {
                t,
                pick,
                from,
                moved_fraction,
                delta_seconds,
                full_seconds,
                ..
            } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                args.push("from", from as u64);
                args.push("moved_permille", (moved_fraction * 1e3) as u64);
                args.push("delta_ms", (delta_seconds * 1e3) as u64);
                args.push("full_ms", (full_seconds * 1e3) as u64);
                self.emit(track, "migrate", RecordKind::Instant, t, t, args);
            }
            SimEvent::Evict { t, pick, phase, .. } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                args.push("phase", phase_code(phase));
                self.emit(track, "evict", RecordKind::Instant, t, t, args);
            }
            SimEvent::Checkpoint {
                t,
                pick,
                chunk_seconds,
                ..
            } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                args.push("chunk_ms", (chunk_seconds * 1e3) as u64);
                self.emit(track, "checkpoint", RecordKind::Instant, t, t, args);
            }
            SimEvent::Bill {
                t,
                to,
                pick,
                cost,
                billed,
                ..
            } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                args.push("cost_microdollars", microdollars(cost));
                self.emit(track, "bill", RecordKind::Span, t, to, args);
                let mut cargs = Args::new();
                cargs.push("microdollars", microdollars(billed));
                self.emit(track, "billed_total", RecordKind::Counter, to, to, cargs);
            }
            SimEvent::Degraded {
                t,
                pick,
                retries,
                fallback,
                wasted_seconds,
                ..
            } => {
                let mut args = Args::new();
                args.push("pick", pick as u64);
                args.push("retries", retries as u64);
                args.push("fallback", fallback as u64);
                args.push("wasted_ms", (wasted_seconds * 1e3) as u64);
                self.emit(track, "degraded", RecordKind::Instant, t, t, args);
            }
            SimEvent::Complete {
                t,
                missed_deadline,
                evictions,
                deployments,
                ..
            } => {
                let mut args = Args::new();
                args.push("missed_deadline", missed_deadline as u64);
                args.push("evictions", evictions as u64);
                args.push("deployments", deployments as u64);
                self.emit(track, "complete", RecordKind::Instant, t, t, args);
            }
            SimEvent::Admit {
                t,
                tenant,
                seq,
                accepted,
                ..
            } => {
                let mut args = Args::new();
                args.push("tenant", tenant as u64);
                args.push("seq", seq as u64);
                args.push("accepted", accepted as u64);
                self.emit(track, "admit", RecordKind::Instant, t, t, args);
            }
            SimEvent::Preempt {
                t, victim, pick, ..
            } => {
                let mut args = Args::new();
                args.push("victim", victim as u64);
                args.push("pick", pick as u64);
                self.emit(track, "preempt", RecordKind::Instant, t, t, args);
            }
            SimEvent::ShareHit {
                t,
                tenant,
                pick,
                warm,
                saved_seconds,
                ..
            } => {
                let mut args = Args::new();
                args.push("tenant", tenant as u64);
                args.push("pick", pick as u64);
                args.push("warm", warm as u64);
                args.push("saved_ms", (saved_seconds * 1e3) as u64);
                self.emit(track, "share_hit", RecordKind::Instant, t, t, args);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{NullSink, TeeSink, VecSink};
    use crate::job::{PaperJob, ReloadMode};
    use crate::runner::derive_eviction_models;
    use crate::runner::SimulationSetup;
    use crate::sweep::sweep_jobs;
    use hourglass_cloud::tracegen;
    use hourglass_core::strategies::HourglassStrategy;

    /// Tracing a sweep changes neither the outcomes nor the event stream:
    /// the traced run's outcomes are bit-identical to the untraced run's,
    /// and the decision events seen through the tee match exactly.
    #[test]
    fn traced_sweep_is_bit_identical_to_untraced() {
        let market = tracegen::simulation_market(41).expect("market");
        let history = tracegen::history_market(41).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::PageRank
            .description(60.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let starts: Vec<f64> = (0..8).map(|i| i as f64 * 120_000.0).collect();

        let mut plain_sink = VecSink::new();
        let plain =
            sweep_jobs(&setup, &job, &strategy, &starts, true, &mut plain_sink).expect("plain");

        let session = obs::TraceSession::start();
        let mut bridge = TraceBridge::new();
        let mut traced_sink = VecSink::new();
        let mut tee = TeeSink {
            first: &mut traced_sink,
            second: &mut bridge,
        };
        let traced = sweep_jobs(&setup, &job, &strategy, &starts, true, &mut tee).expect("traced");
        let trace = session.finish();

        assert_eq!(plain.len(), traced.len());
        for (a, b) in plain.iter().zip(&traced) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.online_cost.to_bits(), b.online_cost.to_bits());
            assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
            assert_eq!(a.evictions, b.evictions);
            assert_eq!(a.deployments, b.deployments);
            assert_eq!(a.missed_deadline, b.missed_deadline);
            assert_eq!(a.completed, b.completed);
        }
        assert_eq!(plain_sink.events, traced_sink.events);

        // The trace carries the decision loop on simulated-time tracks.
        let sim_records: Vec<_> = trace.in_category("sim").collect();
        assert!(!sim_records.is_empty(), "bridge emitted nothing");
        assert!(sim_records.iter().all(|r| obs::is_sim_track(r.track)));
        let completes = sim_records.iter().filter(|r| r.name == "complete").count();
        assert_eq!(completes, traced.len(), "one complete instant per run");
    }

    /// The bridge is a pure function of the event stream: two sessions
    /// over the same sweep collect identical record sets.
    #[test]
    fn bridge_is_deterministic_across_sessions() {
        let market = tracegen::simulation_market(42).expect("market");
        let history = tracegen::history_market(42).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let starts = [0.0, 250_000.0, 700_000.0];

        let mut traces = Vec::new();
        for parallel in [false, true] {
            let session = obs::TraceSession::start();
            let mut bridge = TraceBridge::new();
            sweep_jobs(&setup, &job, &strategy, &starts, parallel, &mut bridge).expect("sweep");
            let trace = session.finish();
            traces.push(
                trace
                    .in_category("sim")
                    .copied()
                    .collect::<Vec<SpanRecord>>(),
            );
        }
        assert_eq!(traces[0], traces[1]);
        assert!(!traces[0].is_empty());
    }

    /// Without an active session the bridge records nothing.
    #[test]
    fn bridge_is_inert_without_session() {
        obs::with_tracing_disabled(|| {
            let mut bridge = TraceBridge::new();
            bridge.record(
                0,
                &SimEvent::Evict {
                    t: 10.0,
                    work_left: 0.5,
                    billed: 1.0,
                    pick: 2,
                    phase: Phase::Compute,
                },
            );
        });
        let session = obs::TraceSession::start();
        let trace = session.finish();
        assert!(trace.spans.is_empty());
        // NullSink still satisfies the sink contract alongside the bridge.
        let mut null = NullSink;
        null.record(
            0,
            &SimEvent::Evict {
                t: 10.0,
                work_left: 0.5,
                billed: 1.0,
                pick: 2,
                phase: Phase::Setup,
            },
        );
    }

    #[test]
    fn sim_time_conversion_clamps_and_scales() {
        assert_eq!(sim_ns(-5.0), 0);
        assert_eq!(sim_ns(0.0), 0);
        assert_eq!(sim_ns(1.5), 1_500_000_000);
        assert_eq!(sim_ns(f64::NAN), 0);
        assert_eq!(microdollars(-1.0), 0);
        assert_eq!(microdollars(2.5), 2_500_000);
        assert_eq!(microdollars(f64::INFINITY), 0);
    }
}
