//! Replicated execution: SpotOn's alternative to checkpointing [38].
//!
//! Instead of periodically checkpointing one transient deployment, the
//! job runs simultaneously on `R` deployments in *different* markets and
//! proceeds at the pace of the fastest live replica; work is lost only
//! when every replica is evicted at once. The paper argues (§3.1) that
//! over-provisioning "limits the potential cost reductions in the cases
//! where (a few) evictions may be tolerated" — this module lets the
//! benchmarks quantify exactly that trade-off against checkpointing.

use crate::job::JobDescription;
use crate::runner::{JobOutcome, SimulationSetup};
use crate::{Result, SimError};
use hourglass_cloud::billing::CostLedger;
use hourglass_cloud::InstanceType;

/// A replica: one transient deployment index from the job's config set.
#[derive(Debug, Clone, Copy)]
struct Replica {
    config_idx: usize,
    /// Alive and computing since this absolute time (None = down).
    up_since: Option<f64>,
}

/// Runs the job on `replica_configs` (indices into `job.configs`, all
/// transient, in distinct instance-type markets) simultaneously with **no
/// checkpointing**: progress advances at the fastest live replica's pace
/// and resets to zero if every replica is down at once before finishing.
///
/// Replicas are (re)acquired as soon as their market price returns to the
/// bid. The run ends when the work completes or the trace runs out.
pub fn run_job_replicated(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    replica_configs: &[usize],
    start: f64,
) -> Result<JobOutcome> {
    if replica_configs.is_empty() {
        return Err(SimError::InvalidParameter(
            "need at least one replica".into(),
        ));
    }
    let mut seen_types: Vec<InstanceType> = Vec::new();
    for &i in replica_configs {
        let cfg = job
            .configs
            .get(i)
            .ok_or_else(|| SimError::InvalidParameter(format!("config index {i} out of range")))?;
        if !cfg.config.is_transient() {
            return Err(SimError::InvalidParameter(
                "replicas must be transient deployments".into(),
            ));
        }
        if seen_types.contains(&cfg.config.instance_type) {
            return Err(SimError::InvalidParameter(
                "replicas must live in distinct markets".into(),
            ));
        }
        seen_types.push(cfg.config.instance_type);
    }
    let horizon = setup.market.horizon();
    if start < 0.0 || start >= horizon {
        return Err(SimError::InvalidParameter(format!(
            "start {start} outside market horizon"
        )));
    }

    // Event-driven at one-minute steps (the trace resolution): fine
    // enough for month-long traces, simple enough to audit.
    let step = 60.0;
    let mut t = start;
    let mut w = 1.0f64;
    let mut ledger = CostLedger::new();
    let mut evictions = 0usize;
    let mut deployments = 0usize;
    let mut replicas: Vec<Replica> = replica_configs
        .iter()
        .map(|&i| Replica {
            config_idx: i,
            up_since: None,
        })
        .collect();

    while w > 1e-9 && t < horizon {
        // Acquire / evict replicas based on the market.
        for r in replicas.iter_mut() {
            let perf = &job.configs[r.config_idx];
            let trace = setup.market.trace(perf.config.instance_type)?;
            let bid = perf.config.instance_type.on_demand_price();
            let price = trace.price_at(t.min(trace.horizon() - 1.0))?;
            match r.up_since {
                Some(since) => {
                    if price > bid {
                        // Evicted: bill the lease.
                        ledger.bill(setup.market, &perf.config, since, t)?;
                        evictions += 1;
                        r.up_since = None;
                    }
                }
                None => {
                    if price <= bid {
                        r.up_since = Some(t);
                        deployments += 1;
                    }
                }
            }
        }
        // Progress at the fastest live replica that has finished booting
        // and loading.
        let best_rate: Option<f64> = replicas
            .iter()
            .filter_map(|r| {
                let since = r.up_since?;
                let perf = &job.configs[r.config_idx];
                let ready_at = since + job.t_boot + perf.t_load_first;
                (t >= ready_at).then_some(1.0 / perf.t_exec)
            })
            .max_by(|a, b| a.partial_cmp(b).expect("finite rates"));
        if let Some(rate) = best_rate {
            w -= rate * step;
        } else if replicas.iter().all(|r| r.up_since.is_none()) {
            // Total blackout: without checkpoints all progress is lost.
            if w < 1.0 {
                w = 1.0;
            }
        }
        t += step;
    }
    // Close out leases.
    for r in &replicas {
        if let Some(since) = r.up_since {
            let perf = &job.configs[r.config_idx];
            ledger.bill(setup.market, &perf.config, since, t.min(horizon))?;
        }
    }
    let finish_time = t - start;
    Ok(JobOutcome {
        cost: ledger.total() + job.offline_cost,
        online_cost: ledger.total(),
        finish_time,
        missed_deadline: w > 1e-9 || finish_time > job.deadline + 1e-6,
        evictions,
        deployments,
        completed: w <= 1e-9,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{PaperJob, ReloadMode};
    use crate::runner::{derive_eviction_models, run_job};
    use hourglass_cloud::tracegen;
    use hourglass_core::strategies::EagerStrategy;

    fn fixture(
        seed: u64,
    ) -> (
        hourglass_cloud::Market,
        Vec<(InstanceType, hourglass_cloud::DynEviction)>,
    ) {
        let market = tracegen::simulation_market(seed).expect("market");
        let history = tracegen::history_market(seed).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, seed).expect("models");
        (market, models)
    }

    /// Indices of the 16-worker transient configs of each instance type.
    fn replica_indices(job: &crate::job::JobDescription) -> Vec<usize> {
        let mut seen = Vec::new();
        let mut out = Vec::new();
        for (i, c) in job.configs.iter().enumerate() {
            if c.config.is_transient()
                && c.config.num_workers == 16
                && !seen.contains(&c.config.instance_type)
            {
                seen.push(c.config.instance_type);
                out.push(i);
            }
        }
        out
    }

    #[test]
    fn replicated_run_completes() {
        let (market, models) = fixture(31);
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::PageRank
            .description(100.0, ReloadMode::Fast)
            .expect("job");
        let replicas = replica_indices(&job);
        assert!(replicas.len() >= 2);
        let out = run_job_replicated(&setup, &job, &replicas[..2], 86_400.0).expect("run");
        assert!(out.completed);
        assert!(out.online_cost > 0.0);
        assert!(out.deployments >= 2);
    }

    #[test]
    fn replication_costs_more_than_checkpointing() {
        // The paper's §3.1 claim, quantified: running 2 replicas costs
        // roughly twice the single checkpointed deployment on average.
        let (market, models) = fixture(32);
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::GraphColoring
            .description(100.0, ReloadMode::Fast)
            .expect("job");
        let replicas = replica_indices(&job);
        let mut repl_cost = 0.0;
        let mut ckpt_cost = 0.0;
        for i in 0..6 {
            let start = 86_400.0 + i as f64 * 3.1 * 86_400.0;
            repl_cost += run_job_replicated(&setup, &job, &replicas[..2], start)
                .expect("run")
                .online_cost;
            ckpt_cost += run_job(&setup, &job, &EagerStrategy, start)
                .expect("run")
                .online_cost;
        }
        assert!(
            repl_cost > 1.4 * ckpt_cost,
            "replication {repl_cost:.2} should clearly exceed checkpointing {ckpt_cost:.2}"
        );
    }

    #[test]
    fn validates_replica_sets() {
        let (market, models) = fixture(33);
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        assert!(run_job_replicated(&setup, &job, &[], 0.0).is_err());
        assert!(run_job_replicated(&setup, &job, &[999], 0.0).is_err());
        // Two replicas in the same market are pointless (correlated).
        let same_market: Vec<usize> = job
            .configs
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.config.is_transient() && c.config.instance_type == InstanceType::R42xlarge
            })
            .map(|(i, _)| i)
            .take(2)
            .collect();
        assert!(run_job_replicated(&setup, &job, &same_market, 0.0).is_err());
        // On-demand configs are not replicas.
        let od = job
            .configs
            .iter()
            .position(|c| !c.config.is_transient())
            .expect("has on-demand");
        assert!(run_job_replicated(&setup, &job, &[od], 0.0).is_err());
    }
}
