//! Multi-tenant spot-fleet scheduling over the replayed market.
//!
//! The single-job runner provisions one deadline job at a time; the
//! ROADMAP north-star is a service where many recurring tenant jobs
//! compete for one shared pool of transient instances. This module
//! rehosts the runner's decision loop (now [`crate::runner::JobActor`],
//! one legacy loop iteration per `step`) under a discrete-event fleet
//! scheduler that
//!
//! - **admits** a stream of tenant jobs (arrival time, deadline, graph,
//!   recurrence), rejecting at admission any job whose minimum makespan
//!   already exceeds its deadline (never-satisfiable work is refused,
//!   not starved);
//! - **shares** warm state across jobs of the same tenant: once a
//!   tenant's clustered HGS2 shards are in the datastore, later jobs pay
//!   the mapped reload instead of the text ingest
//!   ([`crate::job::build_configs_cached`] prices the gap), and a
//!   still-live deployment left over from a completed job is handed to
//!   the tenant's next job when the idle gap costs less than a fresh
//!   boot + reload (the fleet bills the gap to the tenant);
//! - **arbitrates** capacity: an optional fleet-wide cap on concurrently
//!   held transient workers, enforced through the actor's
//!   [`crate::runner::CapacityControl`] seam against a *simulated-time*
//!   tenure ledger (so machines are never double-booked at any sim
//!   instant, even across actor-clock skew). A denied acquire waits in
//!   bounded steps exactly like a price spike, and the scheduler picks a
//!   victim deployment to sacrifice per the configured
//!   [`SacrificePolicy`].
//!
//! **Determinism.** The scheduler always processes the earliest pending
//! event: the next arrival, or the active actor with the smallest clock
//! (ties broken by `(tenant, seq)`, arrivals before steps). Actors only
//! move their clocks forward at step boundaries and bill strictly behind
//! their clocks, so interleaving many actors never rolls one back, and a
//! fleet run is a pure function of `(setup, workload, strategy, config)`.
//! With sharing and the cap disabled, a fleet run *is* the independent
//! composition of legacy [`crate::runner::run_job`] runs, event for
//! event — the golden-trace tests pin this.

use crate::events::{EventSink, NullSink, SimEvent};
use crate::job::{build_configs_cached, JobDescription, DEFAULT_BOOT_SECONDS};
use crate::runner::{CapacityControl, Held, JobActor, JobOutcome, SimulationSetup};
use crate::{Result, SimError};
use hourglass_core::Strategy;
use hourglass_graph::datasets::Dataset;
use std::collections::BTreeMap;

/// Which tenant's deployment the fleet sacrifices when a capacity-denied
/// acquire needs machines freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SacrificePolicy {
    /// Sacrifice the deployment with the least expected remaining cost
    /// (work left × execution time × hourly rate): the cheapest
    /// deployment to redo.
    EcWeighted,
    /// Sacrifice the deployment whose job has the most deadline slack
    /// left: it can best absorb a re-setup.
    DeadlineSlack,
    /// Sacrifice the highest tenant id: lower ids are strictly more
    /// important.
    StrictPriority,
}

impl SacrificePolicy {
    /// Every policy, in CLI order.
    pub const ALL: [SacrificePolicy; 3] = [
        SacrificePolicy::EcWeighted,
        SacrificePolicy::DeadlineSlack,
        SacrificePolicy::StrictPriority,
    ];

    /// The policy's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SacrificePolicy::EcWeighted => "ec-weighted",
            SacrificePolicy::DeadlineSlack => "deadline-slack",
            SacrificePolicy::StrictPriority => "strict-priority",
        }
    }

    /// Parses a CLI name back into a policy.
    pub fn parse(s: &str) -> Option<SacrificePolicy> {
        SacrificePolicy::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Fleet-level scheduling knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Victim-selection policy for capacity-denied acquires.
    pub policy: SacrificePolicy,
    /// Fleet-wide cap on concurrently held transient workers
    /// (`None` = unbounded, the legacy behaviour).
    pub capacity: Option<usize>,
    /// Share warm instances and cached shards across jobs of a tenant.
    /// Disabled, a fleet run is the exact independent composition of
    /// single-job runs.
    pub share: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            policy: SacrificePolicy::EcWeighted,
            capacity: None,
            share: true,
        }
    }
}

/// One job arrival in a fleet workload.
#[derive(Debug, Clone, Copy)]
pub struct FleetJob {
    /// The tenant submitting the job.
    pub tenant: u32,
    /// Absolute trace time the job arrives (and may start).
    pub arrival: f64,
    /// Index into [`FleetWorkload::catalog`].
    pub job: usize,
}

/// A stream of tenant jobs over a shared job-shape catalog.
#[derive(Debug, Clone)]
pub struct FleetWorkload {
    /// The distinct job shapes tenants submit (deadline is relative to
    /// each arrival).
    pub catalog: Vec<JobDescription>,
    /// Every arrival; order is irrelevant (the scheduler sorts by
    /// `(arrival, tenant, submission index)`).
    pub arrivals: Vec<FleetJob>,
}

impl FleetWorkload {
    /// A canned recurring workload: `tenants` tenants, each submitting
    /// `recurrences` PageRank-scale jobs over cached HGS2 shards, with
    /// arrivals staggered across tenants and recurring at three deadline
    /// windows. This is the workload the `fig_fleet` binary prices
    /// sharing against independent provisioning on.
    pub fn canned_recurring(tenants: usize, recurrences: usize) -> Result<FleetWorkload> {
        if tenants == 0 || recurrences == 0 {
            return Err(SimError::InvalidParameter(
                "need at least one tenant and one recurrence".into(),
            ));
        }
        let configs = build_configs_cached(1200.0, Dataset::Twitter, 0.25)?;
        let mut job = JobDescription {
            name: "FleetPageRank".into(),
            deadline: 0.0,
            t_boot: DEFAULT_BOOT_SECONDS,
            configs,
            offline_cost: 0.0,
        };
        job.deadline = job.min_makespan()? + 0.6 * 1200.0;
        let period = 3.0 * job.deadline;
        let stagger = 997.0;
        let mut arrivals = Vec::with_capacity(tenants * recurrences);
        for t in 0..tenants {
            for i in 0..recurrences {
                arrivals.push(FleetJob {
                    tenant: t as u32,
                    arrival: t as f64 * stagger + i as f64 * period,
                    job: 0,
                });
            }
        }
        Ok(FleetWorkload {
            catalog: vec![job],
            arrivals,
        })
    }
}

/// Per-tenant rollup of a fleet run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant.
    pub tenant: u32,
    /// Outcomes of the tenant's admitted jobs, in completion order.
    pub jobs: Vec<JobOutcome>,
    /// Jobs refused at admission.
    pub rejected: usize,
    /// Online dollars billed to this tenant, folded from `Bill` events
    /// in fleet processing order.
    pub billed: f64,
    /// Total dollars (online + offline) across the tenant's jobs.
    pub total_cost: f64,
    /// Jobs that missed their deadline.
    pub missed: usize,
    /// Warm-state reuses (cached shards or a handed-over instance).
    pub share_hits: usize,
    /// Times one of this tenant's deployments was sacrificed.
    pub preemptions: usize,
}

impl TenantOutcome {
    fn new(tenant: u32) -> TenantOutcome {
        TenantOutcome {
            tenant,
            jobs: Vec::new(),
            rejected: 0,
            billed: 0.0,
            total_cost: 0.0,
            missed: 0,
            share_hits: 0,
            preemptions: 0,
        }
    }

    /// Fraction of admitted jobs that missed their deadline, in percent.
    pub fn missed_pct(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            100.0 * self.missed as f64 / self.jobs.len() as f64
        }
    }
}

/// Outcome of a whole fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Per-tenant rollups, in tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// The fleet's online ledger: per-tenant billed dollars folded in
    /// tenant order. Bit-exactly the sum of [`TenantOutcome::billed`] by
    /// construction — the invariant the fleet proptests pin.
    pub ledger_total: f64,
    /// Total dollars (online + offline) across every job.
    pub total_cost: f64,
    /// Admitted jobs completed or cut off at the horizon.
    pub runs: usize,
    /// Jobs that missed their deadline.
    pub missed: usize,
    /// Jobs refused at admission.
    pub rejected: usize,
    /// Deployments sacrificed by the scheduler.
    pub preemptions: usize,
    /// Warm-state reuses granted at admission.
    pub share_hits: usize,
}

impl FleetOutcome {
    /// Fraction of admitted jobs that missed their deadline, in percent.
    pub fn missed_pct(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            100.0 * self.missed as f64 / self.runs as f64
        }
    }
}

/// Re-tags an actor's untagged events with its tenant id, so every event
/// reaches the caller's sink through `record_tenant`.
struct TagTenant<'s> {
    tenant: u32,
    inner: &'s mut dyn EventSink,
}

impl EventSink for TagTenant<'_> {
    fn record(&mut self, run: u32, event: &SimEvent) {
        self.inner.record_tenant(run, self.tenant, event);
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        self.inner.record_tenant(run, tenant, event);
    }
}

/// Accumulates per-tenant billed dollars (in processing order) on the way
/// to the caller's sink.
struct FleetTap<'s> {
    inner: &'s mut dyn EventSink,
    billed: BTreeMap<u32, f64>,
}

impl EventSink for FleetTap<'_> {
    fn record(&mut self, run: u32, event: &SimEvent) {
        self.inner.record(run, event);
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        if let SimEvent::Bill { cost, .. } = *event {
            *self.billed.entry(tenant).or_insert(0.0) += cost;
        }
        self.inner.record_tenant(run, tenant, event);
    }
}

/// The fleet-wide transient-capacity ledger an actor's acquire consults.
///
/// Tenures are accounted in *simulated* time, not scheduler-boundary
/// state: one actor's step can span an interval (acquire at `t`, evict at
/// `t + L`) that another actor — whose clock lags behind — later acquires
/// inside. Counting only what is held at step boundaries would
/// double-book machines across such skew, so the ledger keeps every
/// tenure's simulated `[start, end)` interval, reconstructed from the
/// actor's own `Acquire`/`Evict` events (see [`CapObserver`]). A request
/// at time `t` counts every tenure still alive at `t`: the open ones plus
/// the closed ones whose simulated end lies beyond `t`. Granting under
/// that count keeps the concurrent-transient-workers total at or under
/// the cap at *every* sim instant — the invariant the fleet proptests
/// sweep — because any tenure overlapping an instant is, at the moment
/// the last of them was granted, either still open or closed with an end
/// past the grant time, and therefore counted.
struct FleetCapacity {
    cap: Option<usize>,
    denied: bool,
    /// Open tenures: transient workers → tenure count.
    open: BTreeMap<usize, usize>,
    /// Closed tenures: (simulated end, transient workers).
    closed: Vec<(f64, usize)>,
}

impl FleetCapacity {
    fn new(cap: Option<usize>) -> FleetCapacity {
        FleetCapacity {
            cap,
            denied: false,
            open: BTreeMap::new(),
            closed: Vec::new(),
        }
    }

    /// Uncapped fleets never track tenures (the legacy fast path).
    fn enabled(&self) -> bool {
        self.cap.is_some()
    }

    fn open_tenure(&mut self, workers: usize) {
        if self.enabled() {
            *self.open.entry(workers).or_insert(0) += 1;
        }
    }

    fn close_tenure(&mut self, end: f64, workers: usize) {
        if !self.enabled() {
            return;
        }
        match self.open.get_mut(&workers) {
            Some(c) if *c > 0 => {
                *c -= 1;
                self.closed.push((end, workers));
            }
            _ => debug_assert!(false, "closing a tenure that was never opened"),
        }
    }

    fn apply(&mut self, ops: Vec<CapOp>) {
        for op in ops {
            match op {
                CapOp::Open(w) => self.open_tenure(w),
                CapOp::Close(t, w) => self.close_tenure(t, w),
            }
        }
    }

    /// Transient workers committed at sim instant `t`.
    fn alive_at(&self, t: f64) -> usize {
        self.open.iter().map(|(w, c)| w * c).sum::<usize>()
            + self
                .closed
                .iter()
                .filter(|(end, _)| *end > t)
                .map(|(_, w)| w)
                .sum::<usize>()
    }
}

impl CapacityControl for FleetCapacity {
    fn request_transient(&mut self, t: f64, workers: usize, releasing: usize) -> Option<f64> {
        let cap = self.cap?;
        // `releasing` workers belong to the requester's own open tenure,
        // which ends at `t` if this request is granted.
        let others = self.alive_at(t).saturating_sub(releasing);
        if others + workers <= cap {
            None
        } else {
            // Denied: wait a bounded step, like a price spike. The
            // scheduler sacrifices a victim right after this step, so the
            // retry usually succeeds; on-demand picks never consult, which
            // keeps an undersized cap from livelocking deadline-aware
            // strategies (they bail to the last resort as slack burns).
            self.denied = true;
            Some(t + 60.0)
        }
    }
}

/// One deployment-tenure transition harvested from an actor's events.
enum CapOp {
    /// A transient deployment of this many workers came up.
    Open(usize),
    /// A transient deployment of this many workers went away at the given
    /// simulated time.
    Close(f64, usize),
}

/// Sink wrapper mirroring an actor's transient deployment transitions
/// into capacity-ledger ops while forwarding every event unchanged. The
/// scheduler drains the ops into [`FleetCapacity`] right after the step —
/// no other actor consults the ledger in between, so the ledger is always
/// current at consult time. With `configs` unset (uncapped fleet) it is a
/// pure pass-through.
struct CapObserver<'s, 'c> {
    inner: &'s mut dyn EventSink,
    configs: Option<&'c [crate::job::ConfigPerf]>,
    ops: Vec<CapOp>,
}

impl CapObserver<'_, '_> {
    fn observe(&mut self, event: &SimEvent) {
        let Some(configs) = self.configs else { return };
        let workers = |idx: usize| {
            let c = &configs[idx].config;
            c.is_transient().then_some(c.num_workers as usize)
        };
        match *event {
            // A switch releases the old deployment at the acquire instant.
            SimEvent::Acquire {
                t, pick, released, ..
            } => {
                if let Some(w) = released.and_then(workers) {
                    self.ops.push(CapOp::Close(t, w));
                }
                if let Some(w) = workers(pick) {
                    self.ops.push(CapOp::Open(w));
                }
            }
            SimEvent::Evict { t, pick, .. } => {
                if let Some(w) = workers(pick) {
                    self.ops.push(CapOp::Close(t, w));
                }
            }
            _ => {}
        }
    }
}

impl EventSink for CapObserver<'_, '_> {
    fn record(&mut self, run: u32, event: &SimEvent) {
        self.observe(event);
        self.inner.record(run, event);
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        self.observe(event);
        self.inner.record_tenant(run, tenant, event);
    }
}

/// Warm state a tenant's completed jobs leave behind.
#[derive(Default)]
struct WarmState {
    /// Clustered shards persist in the datastore: later jobs reload
    /// instead of re-ingesting.
    shards_cached: bool,
    /// A still-live deployment handed over from the last completed job:
    /// `(deployment, completion time, catalog index)`.
    handoff: Option<(Held, f64, usize)>,
}

/// One admitted, unfinished job.
struct Active<'a> {
    tenant: u32,
    seq: usize,
    job_idx: usize,
    deadline_abs: f64,
    actor: JobActor<'a>,
}

fn actor_key(a: &Active<'_>) -> (f64, u32, usize) {
    (a.actor.now(), a.tenant, a.seq)
}

fn cmp_actor(a: &Active<'_>, b: &Active<'_>) -> std::cmp::Ordering {
    let (ta, xa, sa) = actor_key(a);
    let (tb, xb, sb) = actor_key(b);
    ta.partial_cmp(&tb)
        .expect("finite clocks")
        .then(xa.cmp(&xb))
        .then(sa.cmp(&sb))
}

/// Picks the victim deployment for a capacity-denied acquire: an active
/// actor other than `requester` holding a transient deployment, chosen by
/// `policy` with deterministic tie-breaks. `None` when nobody else holds
/// transient machines.
fn select_victim(
    active: &[Active<'_>],
    requester: usize,
    policy: SacrificePolicy,
    workload: &FleetWorkload,
    lrc_of: &[usize],
) -> Option<usize> {
    let mut best: Option<(f64, u32, usize, usize)> = None;
    for (i, a) in active.iter().enumerate() {
        if i == requester {
            continue;
        }
        let Some(h) = a.actor.held() else { continue };
        let job = &workload.catalog[a.job_idx];
        let perf = &job.configs[h.idx];
        if !perf.config.is_transient() {
            continue;
        }
        // Smaller key = sacrificed first; ties break toward the higher
        // (tenant, seq), so the latest job of the least-important tenant
        // falls first under every policy.
        let key = match policy {
            SacrificePolicy::EcWeighted => {
                a.actor.work_left() * perf.t_exec * perf.config.on_demand_rate() / 3600.0
            }
            SacrificePolicy::DeadlineSlack => {
                let lrc = &job.configs[lrc_of[a.job_idx]];
                -(a.deadline_abs - a.actor.now() - a.actor.work_left() * lrc.t_exec)
            }
            SacrificePolicy::StrictPriority => -(a.tenant as f64),
        };
        let cand = (key, a.tenant, a.seq, i);
        best = Some(match best {
            None => cand,
            Some(b) => {
                let better = cand.0 < b.0 || (cand.0 == b.0 && (cand.1, cand.2) > (b.1, b.2));
                if better {
                    cand
                } else {
                    b
                }
            }
        });
    }
    best.map(|(_, _, _, i)| i)
}

/// Runs a fleet workload to completion, discarding events.
pub fn run_fleet(
    setup: &SimulationSetup<'_>,
    workload: &FleetWorkload,
    strategy: &dyn Strategy,
    config: &FleetConfig,
) -> Result<FleetOutcome> {
    run_fleet_observed(setup, workload, strategy, config, 0, &mut NullSink)
}

/// [`run_fleet`] with every event reported to `sink` through
/// `record_tenant`, stamped with run index `run` (fleet sweeps use it to
/// keep per-seed fleets apart) and the emitting job's tenant id.
pub fn run_fleet_observed(
    setup: &SimulationSetup<'_>,
    workload: &FleetWorkload,
    strategy: &dyn Strategy,
    config: &FleetConfig,
    run: u32,
    sink: &mut dyn EventSink,
) -> Result<FleetOutcome> {
    for a in &workload.arrivals {
        if a.job >= workload.catalog.len() {
            return Err(SimError::InvalidParameter(format!(
                "arrival references catalog entry {} of {}",
                a.job,
                workload.catalog.len()
            )));
        }
        if !a.arrival.is_finite() || a.arrival < 0.0 {
            return Err(SimError::InvalidParameter(format!(
                "arrival time {} invalid",
                a.arrival
            )));
        }
    }
    let horizon = setup.market.horizon();
    // Admission order: (arrival, tenant, submission index). Each
    // tenant's jobs get consecutive sequence numbers in this order.
    let mut order: Vec<usize> = (0..workload.arrivals.len()).collect();
    order.sort_by(|&x, &y| {
        let (a, b) = (&workload.arrivals[x], &workload.arrivals[y]);
        a.arrival
            .partial_cmp(&b.arrival)
            .expect("finite arrivals")
            .then(a.tenant.cmp(&b.tenant))
            .then(x.cmp(&y))
    });
    let mut seq_counter: BTreeMap<u32, usize> = BTreeMap::new();
    struct Arrival {
        tenant: u32,
        seq: usize,
        t: f64,
        job_idx: usize,
    }
    let queue: Vec<Arrival> = order
        .into_iter()
        .map(|i| {
            let a = &workload.arrivals[i];
            let seq = seq_counter.entry(a.tenant).or_insert(0);
            let s = *seq;
            *seq += 1;
            Arrival {
                tenant: a.tenant,
                seq: s,
                t: a.arrival,
                job_idx: a.job,
            }
        })
        .collect();
    let mut lrc_of = Vec::with_capacity(workload.catalog.len());
    let mut makespan_of = Vec::with_capacity(workload.catalog.len());
    for job in &workload.catalog {
        lrc_of.push(job.lrc()?);
        makespan_of.push(job.min_makespan()?);
    }

    let mut tap = FleetTap {
        inner: sink,
        billed: BTreeMap::new(),
    };
    let mut warm: BTreeMap<u32, WarmState> = BTreeMap::new();
    let mut tenants: BTreeMap<u32, TenantOutcome> = BTreeMap::new();
    let mut active: Vec<Active<'_>> = Vec::new();
    let mut cap = FleetCapacity::new(config.capacity);
    let mut next = 0usize;
    let mut preemptions = 0usize;
    let mut share_hits = 0usize;

    loop {
        let min_idx = (0..active.len()).min_by(|&x, &y| cmp_actor(&active[x], &active[y]));
        let admit_now = match (queue.get(next), min_idx) {
            (Some(q), Some(i)) => q.t <= active[i].actor.now(),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if admit_now {
            let q = &queue[next];
            next += 1;
            let tout = tenants
                .entry(q.tenant)
                .or_insert_with(|| TenantOutcome::new(q.tenant));
            let job = &workload.catalog[q.job_idx];
            let accepted = q.t < horizon && makespan_of[q.job_idx] <= job.deadline + 1e-9;
            let mut tag = TagTenant {
                tenant: q.tenant,
                inner: &mut tap,
            };
            tag.record(
                run,
                &SimEvent::Admit {
                    t: q.t,
                    work_left: 1.0,
                    billed: 0.0,
                    tenant: q.tenant,
                    seq: q.seq,
                    accepted,
                    deadline: job.deadline,
                },
            );
            if !accepted {
                tout.rejected += 1;
                continue;
            }
            // Warm-state reuse: a handed-over instance (when the idle gap
            // undercuts a fresh boot + reload and the shape matches), else
            // the shard cache alone.
            let mut warm_held: Option<Held> = None;
            let mut handoff_since: Option<f64> = None;
            let mut cached = false;
            if config.share {
                let ws = warm.entry(q.tenant).or_default();
                cached = ws.shards_cached;
                if let Some((held, since, idx)) = ws.handoff.take() {
                    let keep = job.t_boot + job.configs[held.idx].t_load_reload;
                    // Adopt only when the idle gap costs less *in dollars*
                    // than the fresh setup it replaces, priced on the same
                    // config's trace. A time-gap rule is not enough: the
                    // gap bills at whatever the market did while idling,
                    // while a fresh acquire buys the setup window at the
                    // (possibly deeply rebated) price ruling now. The held
                    // instance is evicted the instant its market crosses
                    // the bid, so `q.t` is never mid-spike and the fresh
                    // window is priced fairly.
                    let adopt = idx == q.job_idx && q.t - since <= keep + 1e-9 && {
                        let perf = &job.configs[held.idx];
                        let trace = setup.market.trace(perf.config.instance_type)?;
                        let gap_cost = trace.cost_between(since, q.t.min(horizon))?;
                        let fresh_cost =
                            trace.cost_between(q.t.min(horizon), (q.t + keep).min(horizon))?;
                        gap_cost <= fresh_cost + 1e-9
                    };
                    if adopt {
                        warm_held = Some(held);
                        handoff_since = Some(since);
                    } else {
                        // Discarded: the fleet lets the idle instance go
                        // now (or its lifetime already ended mid-gap).
                        let perf = &workload.catalog[idx].configs[held.idx];
                        cap.close_tenure(held.dies_at.min(q.t), perf.config.num_workers as usize);
                    }
                }
            }
            if warm_held.is_some() || cached {
                let saved = match warm_held {
                    Some(h) => job.t_boot + job.configs[h.idx].t_load_reload,
                    None => {
                        let lrc = &job.configs[lrc_of[q.job_idx]];
                        lrc.t_load_first - lrc.t_load_reload
                    }
                };
                tag.record(
                    run,
                    &SimEvent::ShareHit {
                        t: q.t,
                        work_left: 1.0,
                        billed: 0.0,
                        tenant: q.tenant,
                        pick: warm_held.map(|h| h.idx).unwrap_or(lrc_of[q.job_idx]),
                        warm: warm_held.is_some(),
                        saved_seconds: saved,
                    },
                );
                tout.share_hits += 1;
                share_hits += 1;
            }
            let mut actor = JobActor::new(setup, job, strategy, q.t, run)?
                .with_lifetime_salt((q.tenant as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
                .with_warm_state(warm_held, cached);
            if let Some(since) = handoff_since {
                // The fleet kept the instance up through the gap: the
                // tenant pays for the idle time (and eats a mid-gap
                // eviction, losing the warmth but not the shard cache).
                // The tenure stays open across the handoff; a mid-gap
                // eviction closes it through the observer.
                let mut obs = CapObserver {
                    inner: &mut tag,
                    configs: cap.enabled().then_some(&job.configs[..]),
                    ops: Vec::new(),
                };
                actor.bill_idle_handoff(since, &mut obs)?;
                let ops = obs.ops;
                cap.apply(ops);
            }
            active.push(Active {
                tenant: q.tenant,
                seq: q.seq,
                job_idx: q.job_idx,
                deadline_abs: q.t + job.deadline,
                actor,
            });
            continue;
        }
        let Some(idx) = min_idx else { break };
        cap.denied = false;
        let tenant = active[idx].tenant;
        let step_configs = cap
            .enabled()
            .then(|| &workload.catalog[active[idx].job_idx].configs[..]);
        let (done, ops) = {
            let mut tag = TagTenant {
                tenant,
                inner: &mut tap,
            };
            let mut obs = CapObserver {
                inner: &mut tag,
                configs: step_configs,
                ops: Vec::new(),
            };
            let done = active[idx].actor.step(&mut obs, &mut cap)?;
            (done, obs.ops)
        };
        cap.apply(ops);
        if done {
            let a = active.swap_remove(idx);
            let held = a.actor.held();
            let finish_t = a.actor.now();
            let outcome = a.actor.into_outcome();
            let ws = warm.entry(tenant).or_default();
            ws.shards_cached = true;
            let mut stashed = false;
            if config.share && outcome.completed {
                if let Some(h) = held {
                    let perf = &workload.catalog[a.job_idx].configs[h.idx];
                    if perf.config.is_transient() && h.dies_at > finish_t {
                        // The instance stays up (its tenure stays open)
                        // awaiting the tenant's next job; a replaced
                        // earlier handoff is let go now.
                        if let Some((old, _, oidx)) = ws.handoff.replace((h, finish_t, a.job_idx)) {
                            let operf = &workload.catalog[oidx].configs[old.idx];
                            cap.close_tenure(
                                old.dies_at.min(finish_t),
                                operf.config.num_workers as usize,
                            );
                        }
                        stashed = true;
                    }
                }
            }
            if !stashed {
                if let Some(h) = held {
                    let perf = &workload.catalog[a.job_idx].configs[h.idx];
                    if perf.config.is_transient() {
                        cap.close_tenure(finish_t, perf.config.num_workers as usize);
                    }
                }
            }
            let tout = tenants
                .entry(tenant)
                .or_insert_with(|| TenantOutcome::new(tenant));
            tout.total_cost += outcome.cost;
            if outcome.missed_deadline {
                tout.missed += 1;
            }
            tout.jobs.push(outcome);
        } else if cap.denied {
            if let Some(v) = select_victim(&active, idx, config.policy, workload, &lrc_of) {
                let vt = active[v].tenant;
                let victim_configs = cap
                    .enabled()
                    .then(|| &workload.catalog[active[v].job_idx].configs[..]);
                let ops = {
                    let mut tag = TagTenant {
                        tenant: vt,
                        inner: &mut tap,
                    };
                    let mut obs = CapObserver {
                        inner: &mut tag,
                        configs: victim_configs,
                        ops: Vec::new(),
                    };
                    active[v].actor.revoke(vt, &mut obs);
                    obs.ops
                };
                cap.apply(ops);
                tenants
                    .entry(vt)
                    .or_insert_with(|| TenantOutcome::new(vt))
                    .preemptions += 1;
                preemptions += 1;
            }
        }
    }

    for (t, b) in &tap.billed {
        if let Some(tout) = tenants.get_mut(t) {
            tout.billed = *b;
        }
    }
    let tenants: Vec<TenantOutcome> = tenants.into_values().collect();
    let ledger_total = tenants.iter().map(|t| t.billed).sum();
    let total_cost = tenants.iter().map(|t| t.total_cost).sum();
    let runs = tenants.iter().map(|t| t.jobs.len()).sum();
    let missed = tenants.iter().map(|t| t.missed).sum();
    let rejected = tenants.iter().map(|t| t.rejected).sum();
    Ok(FleetOutcome {
        tenants,
        ledger_total,
        total_cost,
        runs,
        missed,
        rejected,
        preemptions,
        share_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::VecSink;
    use crate::events::{EventKind, TaggedVecSink};
    use crate::job::{PaperJob, ReloadMode};
    use crate::runner::{derive_eviction_models, run_job_observed};
    use hourglass_cloud::tracegen;
    use hourglass_core::strategies::HourglassStrategy;

    fn fixture(
        seed: u64,
    ) -> (
        hourglass_cloud::Market,
        Vec<(hourglass_cloud::InstanceType, hourglass_cloud::DynEviction)>,
    ) {
        let market = tracegen::simulation_market(seed).expect("market");
        let history = tracegen::history_market(seed).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
        (market, models)
    }

    fn unshared() -> FleetConfig {
        FleetConfig {
            share: false,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for p in SacrificePolicy::ALL {
            assert_eq!(SacrificePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(SacrificePolicy::parse("nope"), None);
    }

    #[test]
    fn one_tenant_fleet_matches_legacy_runner_event_for_event() {
        let (market, models) = fixture(61);
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::PageRank
            .description(60.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let start = 120_000.0;

        let mut legacy_sink = VecSink::new();
        let legacy =
            run_job_observed(&setup, &job, &strategy, start, 0, &mut legacy_sink).expect("legacy");

        let workload = FleetWorkload {
            catalog: vec![job.clone()],
            arrivals: vec![FleetJob {
                tenant: 0,
                arrival: start,
                job: 0,
            }],
        };
        let mut fleet_sink = TaggedVecSink::new();
        let fleet = run_fleet_observed(
            &setup,
            &workload,
            &strategy,
            &unshared(),
            0,
            &mut fleet_sink,
        )
        .expect("fleet");

        assert_eq!(fleet.runs, 1);
        let out = &fleet.tenants[0].jobs[0];
        assert_eq!(out.cost.to_bits(), legacy.cost.to_bits());
        assert_eq!(out.online_cost.to_bits(), legacy.online_cost.to_bits());
        assert_eq!(out.finish_time.to_bits(), legacy.finish_time.to_bits());
        assert_eq!(out.evictions, legacy.evictions);
        assert_eq!(out.deployments, legacy.deployments);
        // The fleet stream, restricted to legacy event kinds, is the
        // legacy stream exactly; the only extra is the Admit.
        let legacy_kinds: Vec<(u32, SimEvent)> = fleet_sink
            .events
            .iter()
            .filter(|(_, _, e)| {
                !matches!(
                    e.kind(),
                    EventKind::Admit | EventKind::Preempt | EventKind::ShareHit
                )
            })
            .map(|(run, _, e)| (*run, e.clone()))
            .collect();
        assert_eq!(legacy_kinds, legacy_sink.events);
        let admits = fleet_sink
            .events
            .iter()
            .filter(|(_, _, e)| e.kind() == EventKind::Admit)
            .count();
        assert_eq!(admits, 1);
        // Billed ledger reconciles with the job outcome.
        assert!((fleet.ledger_total - legacy.online_cost).abs() < 1e-9);
    }

    #[test]
    fn unsatisfiable_job_is_rejected_not_starved() {
        let (market, models) = fixture(62);
        let setup = SimulationSetup::new(&market, &models);
        let mut job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        job.deadline = 1.0; // below min makespan: never satisfiable
        let workload = FleetWorkload {
            catalog: vec![job],
            arrivals: vec![FleetJob {
                tenant: 3,
                arrival: 0.0,
                job: 0,
            }],
        };
        let strategy = HourglassStrategy::new();
        let mut sink = TaggedVecSink::new();
        let fleet = run_fleet_observed(&setup, &workload, &strategy, &unshared(), 0, &mut sink)
            .expect("fleet");
        assert_eq!(fleet.rejected, 1);
        assert_eq!(fleet.runs, 0);
        assert_eq!(fleet.tenants[0].rejected, 1);
        let admit = sink
            .events
            .iter()
            .find(|(_, _, e)| e.kind() == EventKind::Admit)
            .expect("admit event");
        assert!(matches!(
            admit.2,
            SimEvent::Admit {
                accepted: false,
                tenant: 3,
                ..
            }
        ));
    }

    #[test]
    fn sharing_undercuts_independent_runs_for_a_recurring_tenant() {
        let (market, models) = fixture(63);
        let setup = SimulationSetup::new(&market, &models);
        let workload = FleetWorkload::canned_recurring(1, 4).expect("workload");
        let strategy = HourglassStrategy::new();
        let base = run_fleet(&setup, &workload, &strategy, &unshared()).expect("base");
        let shared =
            run_fleet(&setup, &workload, &strategy, &FleetConfig::default()).expect("shared");
        assert_eq!(base.runs, 4);
        assert_eq!(shared.runs, 4);
        assert!(shared.share_hits >= 3, "later jobs must reuse warm state");
        assert!(
            shared.total_cost < base.total_cost,
            "sharing {} must undercut independent {}",
            shared.total_cost,
            base.total_cost
        );
        assert!(shared.missed <= base.missed);
    }

    #[test]
    fn capacity_cap_forces_deterministic_preemptions() {
        let (market, models) = fixture(64);
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::PageRank
            .description(80.0, ReloadMode::Fast)
            .expect("job");
        // Cap below two concurrent transient deployments' workers: with
        // several tenants overlapping, somebody must be sacrificed.
        let max_workers = job
            .configs
            .iter()
            .filter(|c| c.config.is_transient())
            .map(|c| c.config.num_workers as usize)
            .max()
            .expect("transient configs");
        let workload = FleetWorkload {
            catalog: vec![job],
            arrivals: (0..4)
                .map(|t| FleetJob {
                    tenant: t,
                    arrival: 100_000.0 + t as f64 * 10.0,
                    job: 0,
                })
                .collect(),
        };
        let strategy = HourglassStrategy::new();
        let config = FleetConfig {
            capacity: Some(max_workers),
            share: false,
            ..FleetConfig::default()
        };
        let mut sink_a = TaggedVecSink::new();
        let a = run_fleet_observed(&setup, &workload, &strategy, &config, 0, &mut sink_a)
            .expect("fleet a");
        let mut sink_b = TaggedVecSink::new();
        let b = run_fleet_observed(&setup, &workload, &strategy, &config, 0, &mut sink_b)
            .expect("fleet b");
        assert_eq!(a.runs, 4);
        assert_eq!(sink_a.events, sink_b.events, "fleet runs are replayable");
        assert_eq!(a.preemptions, b.preemptions);
        // Every Preempt names a victim that held a deployment: the stream
        // shows an Acquire for that tenant before the Preempt, unresolved
        // by any intervening eviction.
        let mut deployed: std::collections::BTreeMap<u32, bool> = Default::default();
        let mut preempts = 0;
        for (_, tenant, e) in &sink_a.events {
            let t = tenant.expect("fleet events are tenant-tagged");
            match e.kind() {
                EventKind::Acquire => {
                    deployed.insert(t, true);
                }
                EventKind::Evict => {
                    deployed.insert(t, false);
                }
                EventKind::Preempt => {
                    preempts += 1;
                    assert_eq!(deployed.get(&t), Some(&true), "victim {t} not deployed");
                }
                _ => {}
            }
        }
        assert_eq!(preempts, a.preemptions);
    }

    #[test]
    fn simultaneous_arrivals_and_zero_slack_admit_deterministically() {
        let (market, models) = fixture(65);
        let setup = SimulationSetup::new(&market, &models);
        let mut job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        // Zero slack: deadline exactly the minimum makespan — admitted.
        job.deadline = job.min_makespan().expect("makespan");
        let workload = FleetWorkload {
            catalog: vec![job],
            arrivals: (0..3)
                .map(|t| FleetJob {
                    tenant: 2 - t, // reversed submission order
                    arrival: 50_000.0,
                    job: 0,
                })
                .collect(),
        };
        let strategy = HourglassStrategy::new();
        let mut sink = TaggedVecSink::new();
        let fleet = run_fleet_observed(&setup, &workload, &strategy, &unshared(), 0, &mut sink)
            .expect("fleet");
        assert_eq!(fleet.rejected, 0, "zero slack is admitted");
        assert_eq!(fleet.runs, 3);
        // Admits come out in tenant order despite reversed submission.
        let admit_tenants: Vec<u32> = sink
            .events
            .iter()
            .filter(|(_, _, e)| e.kind() == EventKind::Admit)
            .map(|(_, t, _)| t.expect("tagged"))
            .collect();
        assert_eq!(admit_tenants, vec![0, 1, 2]);
    }

    #[test]
    fn workload_validation_rejects_bad_input() {
        let (market, models) = fixture(66);
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let bad_idx = FleetWorkload {
            catalog: vec![job.clone()],
            arrivals: vec![FleetJob {
                tenant: 0,
                arrival: 0.0,
                job: 1,
            }],
        };
        assert!(run_fleet(&setup, &bad_idx, &strategy, &unshared()).is_err());
        let bad_arrival = FleetWorkload {
            catalog: vec![job],
            arrivals: vec![FleetJob {
                tenant: 0,
                arrival: -1.0,
                job: 0,
            }],
        };
        assert!(run_fleet(&setup, &bad_arrival, &strategy, &unshared()).is_err());
        assert!(FleetWorkload::canned_recurring(0, 1).is_err());
    }
}
