//! The market-scenario matrix for preemption-model sweeps.
//!
//! Each scenario pairs an eviction *model* (what strategies believe about
//! transient lifetimes) with a ground-truth *world* (what the runner
//! actually enforces). The baseline `crossing` cell is the paper's setup;
//! the other cells probe how strategy rankings shift when transients are
//! lifetime-capped, bathtub-distributed, or hit by correlated capacity
//! crunches the model never saw.

use crate::runner::{
    derive_eviction_models_with, EvictionModelKind, LifetimeGroundTruth, SimulationSetup,
};
use crate::Result;
use hourglass_cloud::tracegen::{self, TraceGenConfig};
use hourglass_cloud::{DynEviction, InstanceType, Market};

/// Lifetime cap for the `capped` scenario: 24 h, GCE-preemptible style.
pub const DEFAULT_CAP_SECONDS: f64 = 24.0 * 3600.0;
/// Capacity crunches per day in the `crunch` scenario.
pub const CRUNCH_PER_DAY: f64 = 0.35;
/// Mean crunch duration in seconds in the `crunch` scenario.
pub const CRUNCH_DURATION_MEAN: f64 = 5400.0;
/// Default eviction-model sampling window (the paper's 24 h horizon).
pub const DEFAULT_WINDOW: f64 = 24.0 * 3600.0;
/// Default Monte-Carlo samples per instance type when fitting models.
pub const DEFAULT_SAMPLES: usize = 2000;

/// One cell of the scenario matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Paper baseline: empirical price-crossing model over the plain
    /// market; evictions come from price crossings only.
    Crossing,
    /// Transients are revoked at a hard 24 h cap; strategies see the
    /// crossing model composed with the same cap.
    Capped,
    /// Per-deployment lifetimes are drawn from a bathtub hazard fitted to
    /// the historical samples; strategies see the fitted bathtub model.
    Bathtub,
    /// Correlated capacity crunches push *every* market above on-demand
    /// at once. Strategies still see the plain crossing model fitted on a
    /// crunch-bearing history — the crunches themselves are unmodeled
    /// cross-pool shocks.
    Crunch,
}

impl ScenarioKind {
    /// Every scenario, in matrix order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Crossing,
        ScenarioKind::Capped,
        ScenarioKind::Bathtub,
        ScenarioKind::Crunch,
    ];

    /// The scenario's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Crossing => "crossing",
            ScenarioKind::Capped => "capped",
            ScenarioKind::Bathtub => "bathtub",
            ScenarioKind::Crunch => "crunch",
        }
    }

    /// Parses a CLI name back into a scenario.
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A fully materialized scenario: markets, per-type eviction processes,
/// and the ground-truth lifetime process the runner enforces.
pub struct Scenario {
    /// Which cell of the matrix this is.
    pub kind: ScenarioKind,
    /// The replayed "November" market.
    pub market: Market,
    /// The historical "October" market the models were derived from.
    pub history: Market,
    /// The per-instance-type eviction processes strategies see.
    pub models: Vec<(InstanceType, DynEviction)>,
    /// The ground-truth lifetime overlay (`None` = crossings only).
    pub lifetime: Option<LifetimeGroundTruth>,
}

impl Scenario {
    /// Builds the scenario with the default window and sample count.
    pub fn build_default(kind: ScenarioKind, seed: u64) -> Result<Scenario> {
        Scenario::build(kind, seed, DEFAULT_WINDOW, DEFAULT_SAMPLES)
    }

    /// Builds the scenario's markets, derives its eviction models
    /// (`window`-second horizon, `samples` Monte-Carlo starts per type)
    /// and selects its ground truth. The same `seed` produces the same
    /// simulation/history market *pair* in every non-crunch scenario, so
    /// cross-scenario comparisons replay identical price streams.
    pub fn build(kind: ScenarioKind, seed: u64, window: f64, samples: usize) -> Result<Scenario> {
        let (market, history) = match kind {
            ScenarioKind::Crunch => {
                let sim_cfg = TraceGenConfig {
                    seed,
                    crunch_per_day: CRUNCH_PER_DAY,
                    crunch_duration_mean: CRUNCH_DURATION_MEAN,
                    ..TraceGenConfig::default()
                };
                // Mirror `history_market`'s seed offset so the history is
                // the usual October trace, with crunches of its own.
                let hist_cfg = TraceGenConfig {
                    seed: seed.wrapping_add(0x0C70_BE55),
                    ..sim_cfg
                };
                (
                    tracegen::generate_market(&sim_cfg)?,
                    tracegen::generate_market(&hist_cfg)?,
                )
            }
            _ => (
                tracegen::simulation_market(seed)?,
                tracegen::history_market(seed)?,
            ),
        };
        let model_seed = seed ^ 0xE7;
        let model_kind = match kind {
            ScenarioKind::Crossing | ScenarioKind::Crunch => EvictionModelKind::Crossing,
            ScenarioKind::Capped => EvictionModelKind::Capped {
                cap: DEFAULT_CAP_SECONDS,
            },
            ScenarioKind::Bathtub => EvictionModelKind::Bathtub,
        };
        let models =
            derive_eviction_models_with(&history, window, samples, model_seed, model_kind)?;
        let lifetime = match kind {
            ScenarioKind::Crossing | ScenarioKind::Crunch => None,
            ScenarioKind::Capped => Some(LifetimeGroundTruth::Cap {
                seconds: DEFAULT_CAP_SECONDS,
            }),
            ScenarioKind::Bathtub => Some(LifetimeGroundTruth::Sampled {
                seed: seed ^ 0xB47B_47B4,
            }),
        };
        Ok(Scenario {
            kind,
            market,
            history,
            models,
            lifetime,
        })
    }

    /// A [`SimulationSetup`] over this scenario's market and models with
    /// its ground-truth lifetime applied.
    pub fn setup(&self) -> SimulationSetup<'_> {
        let mut setup = SimulationSetup::new(&self.market, &self.models);
        if let Some(lifetime) = self.lifetime {
            setup = setup.with_lifetime(lifetime);
        }
        setup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    #[test]
    fn every_scenario_builds_with_unbiased_models() {
        for kind in ScenarioKind::ALL {
            let s = Scenario::build(kind, 7, 24.0 * 3600.0, 300).expect("scenario");
            assert_eq!(s.kind, kind);
            for (ty, model) in &s.models {
                // The acquisition-bias fix in effect: no mass atom at
                // uptime 0 (parametric CDFs may be infinitesimally
                // positive just after 0; the empirical one is exactly 0).
                assert_eq!(model.cdf(0.0), 0.0, "{kind:?}/{ty}");
                assert!(model.cdf(1e-9) < 1e-6, "{kind:?}/{ty}");
                assert!(model.mttf() > 0.0);
            }
        }
    }

    #[test]
    fn non_crunch_scenarios_share_the_market() {
        let a = Scenario::build(ScenarioKind::Crossing, 11, 24.0 * 3600.0, 200).expect("scenario");
        let b = Scenario::build(ScenarioKind::Capped, 11, 24.0 * 3600.0, 200).expect("scenario");
        for ty in a.market.instance_types() {
            assert_eq!(
                a.market.trace(ty).unwrap().samples(),
                b.market.trace(ty).unwrap().samples(),
                "{ty} trace must be identical across non-crunch scenarios"
            );
        }
    }

    #[test]
    fn crunch_scenario_perturbs_the_market() {
        let base = Scenario::build(ScenarioKind::Crossing, 11, 24.0 * 3600.0, 200).expect("base");
        let crunch = Scenario::build(ScenarioKind::Crunch, 11, 24.0 * 3600.0, 200).expect("crunch");
        let ty = InstanceType::R4Xlarge;
        assert_ne!(
            base.market.trace(ty).unwrap().samples(),
            crunch.market.trace(ty).unwrap().samples(),
            "crunch overlay must change the replayed market"
        );
    }

    #[test]
    fn ground_truth_matches_kind() {
        let seed = 3;
        let w = 24.0 * 3600.0;
        assert!(Scenario::build(ScenarioKind::Crossing, seed, w, 200)
            .unwrap()
            .lifetime
            .is_none());
        assert!(matches!(
            Scenario::build(ScenarioKind::Capped, seed, w, 200)
                .unwrap()
                .lifetime,
            Some(LifetimeGroundTruth::Cap { seconds }) if seconds == DEFAULT_CAP_SECONDS
        ));
        assert!(matches!(
            Scenario::build(ScenarioKind::Bathtub, seed, w, 200)
                .unwrap()
                .lifetime,
            Some(LifetimeGroundTruth::Sampled { .. })
        ));
    }
}
