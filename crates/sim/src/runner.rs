//! The job execution event loop (§4): decide → (re)deploy → fast-load →
//! execute → checkpoint → repeat, with evictions driven by the price trace.

use crate::job::JobDescription;
use crate::{Result, SimError};
use hourglass_cloud::billing::CostLedger;
use hourglass_cloud::eviction::{self, EvictionModel};
use hourglass_cloud::{InstanceType, Market, ResourceClass};
use hourglass_core::{Candidate, CurrentDeployment, DecisionContext, Strategy};

/// Shared simulation inputs: the replayed market and the historical
/// eviction statistics strategies are allowed to see.
pub struct SimulationSetup<'a> {
    /// The price trace being replayed (the paper's November trace).
    pub market: &'a Market,
    /// Eviction models per instance type, derived from the historical
    /// trace (the paper's October trace).
    pub eviction_models: &'a [(InstanceType, EvictionModel)],
    /// Safety cap on simulated events per job.
    pub max_events: usize,
    /// Eviction warning lead time in seconds (§9 extension): when the
    /// provider warns at least `t_save` before reclaiming, the engine
    /// checkpoints the progress made up to the warning instead of losing
    /// the whole interval. AWS's real warning is 120 s; 0 disables it.
    pub eviction_warning: f64,
    /// Overrides Daly's checkpoint interval with a fixed value (ablation
    /// hook; `None` = the paper's `√(2·t_save·MTTF)`).
    pub checkpoint_interval_override: Option<f64>,
}

impl<'a> SimulationSetup<'a> {
    /// Creates a setup with the default event cap.
    pub fn new(market: &'a Market, eviction_models: &'a [(InstanceType, EvictionModel)]) -> Self {
        SimulationSetup {
            market,
            eviction_models,
            max_events: 100_000,
            eviction_warning: 0.0,
            checkpoint_interval_override: None,
        }
    }

    /// Enables the §9 eviction-warning extension with the given lead time.
    pub fn with_eviction_warning(mut self, seconds: f64) -> Self {
        self.eviction_warning = seconds;
        self
    }

    fn eviction_model(&self, ty: InstanceType) -> Result<&EvictionModel> {
        self.eviction_models
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, m)| m)
            .ok_or_else(|| SimError::InvalidParameter(format!("no eviction model for {ty}")))
    }
}

/// Builds the per-instance-type eviction models from a historical market,
/// bidding the on-demand price (§7).
pub fn derive_eviction_models(
    history: &Market,
    window: f64,
    samples: usize,
    seed: u64,
) -> Result<Vec<(InstanceType, EvictionModel)>> {
    let mut out = Vec::new();
    for ty in history.instance_types() {
        let trace = history.trace(ty)?;
        let model = EvictionModel::from_trace(trace, ty.on_demand_price(), window, samples, seed)?;
        out.push((ty, model));
    }
    Ok(out)
}

/// The outcome of one simulated job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Total dollars: online billing plus the offline phase.
    pub cost: f64,
    /// Online dollars only.
    pub online_cost: f64,
    /// Completion time relative to job start, seconds.
    pub finish_time: f64,
    /// True when the job finished after its deadline.
    pub missed_deadline: bool,
    /// Evictions suffered.
    pub evictions: usize,
    /// Deployments acquired (including the first).
    pub deployments: usize,
    /// False when the simulation hit the trace horizon before finishing
    /// (counted as a missed deadline).
    pub completed: bool,
}

/// What the job currently holds.
#[derive(Debug, Clone, Copy)]
struct Held {
    /// Index into `job.configs`.
    idx: usize,
    /// Absolute acquisition time.
    acquired: f64,
}

/// Runs one job to completion over the market trace, starting at absolute
/// trace time `start`.
pub fn run_job(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    strategy: &dyn Strategy,
    start: f64,
) -> Result<JobOutcome> {
    if start < 0.0 || start >= setup.market.horizon() {
        return Err(SimError::InvalidParameter(format!(
            "start {start} outside market horizon"
        )));
    }
    let horizon = setup.market.horizon();
    let mut t = start;
    let mut w = 1.0f64;
    let mut ledger = CostLedger::new();
    let mut held: Option<Held> = None;
    let mut first_load_done = false;
    let mut evictions = 0usize;
    let mut deployments = 0usize;
    let mut events = 0usize;
    let mut force_lrc = false;
    let mut last_stuck_pick: Option<usize> = None;

    let outcome = loop {
        events += 1;
        if events > setup.max_events {
            return Err(SimError::RunawayJob { events });
        }
        if w <= 1e-9 {
            let finish_time = t - start;
            break JobOutcome {
                cost: ledger.total() + job.offline_cost,
                online_cost: ledger.total(),
                finish_time,
                missed_deadline: finish_time > job.deadline + 1e-6,
                evictions,
                deployments,
                completed: true,
            };
        }
        if t >= horizon {
            // Ran off the end of the trace: report as incomplete.
            break JobOutcome {
                cost: ledger.total() + job.offline_cost,
                online_cost: ledger.total(),
                finish_time: t - start,
                missed_deadline: true,
                evictions,
                deployments,
                completed: false,
            };
        }

        // Decision point.
        let candidates = build_candidates(setup, job, t, first_load_done)?;
        let ctx = DecisionContext {
            now: t - start,
            deadline: job.deadline,
            work_left: w,
            t_boot: job.t_boot,
            candidates: &candidates,
            current: held.map(|h| CurrentDeployment {
                index: h.idx,
                uptime: t - h.acquired,
            }),
        };
        let pick = if force_lrc {
            force_lrc = false;
            job.lrc()?
        } else {
            strategy.decide(&ctx)?.pick
        };
        let perf = &job.configs[pick];
        let bid = perf.config.on_demand_rate() / perf.config.num_workers as f64;

        // (Re)deploy if the pick differs from the held deployment.
        let continuing = matches!(held, Some(h) if h.idx == pick);
        if !continuing {
            held = None; // Old deployment released (billed on release below).
            let mut acquire_at = t;
            if perf.config.is_transient() {
                // Spot requests are fulfilled when the market clears at or
                // below the bid.
                let trace = setup.market.trace(perf.config.instance_type)?;
                match trace.next_at_or_below(t, bid) {
                    Some(ta) if ta <= t + 1e-9 => acquire_at = t,
                    Some(ta) => {
                        // Market is in a spike: wait in bounded steps,
                        // re-deciding each time so deadline-aware
                        // strategies can bail to the lrc as slack burns.
                        t = ta.min(t + 300.0);
                        continue;
                    }
                    None => {
                        // Market never returns within the trace: fall back
                        // to the last-resort configuration.
                        t += 60.0;
                        force_lrc = true;
                        continue;
                    }
                }
            }
            deployments += 1;
            let setup_time = job.t_boot
                + if first_load_done {
                    perf.t_load_reload
                } else {
                    perf.t_load_first
                };
            let setup_end = acquire_at + setup_time;
            if perf.config.is_transient() {
                let trace = setup.market.trace(perf.config.instance_type)?;
                if let Some(te) = trace.next_crossing_above(acquire_at, bid) {
                    if te < setup_end && te < horizon {
                        // Evicted while booting/loading: no progress.
                        bill(&mut ledger, setup, perf, acquire_at, te)?;
                        evictions += 1;
                        t = te;
                        continue;
                    }
                }
            }
            if setup_end >= horizon {
                bill(&mut ledger, setup, perf, acquire_at, horizon)?;
                t = horizon;
                continue;
            }
            bill(&mut ledger, setup, perf, acquire_at, setup_end)?;
            held = Some(Held {
                idx: pick,
                acquired: acquire_at,
            });
            first_load_done = true;
            t = setup_end;
        }

        // Compute phase.
        if !perf.config.is_transient() {
            // On-demand: run to completion (checkpointing disabled), then
            // store the output.
            let end = t + w * perf.t_exec + perf.t_save;
            let end_clamped = end.min(horizon);
            bill(&mut ledger, setup, perf, t, end_clamped)?;
            if end > horizon {
                t = horizon;
                continue;
            }
            t = end;
            w = 0.0;
            continue;
        }

        // Transient: one checkpointed chunk.
        let h = held.expect("transient compute requires a held deployment");
        let eviction_model = setup.eviction_model(perf.config.instance_type)?;
        let t_ckpt = setup.checkpoint_interval_override.unwrap_or_else(|| {
            hourglass_core::checkpoint::daly_interval(perf.t_save, eviction_model.mttf())
        });
        // When the deployment continued, `t` has not moved since the
        // decision; reuse the candidate set instead of rebuilding.
        let candidates2 = if continuing {
            candidates
        } else {
            build_candidates(setup, job, t, first_load_done)?
        };
        let ctx2 = DecisionContext {
            now: t - start,
            deadline: job.deadline,
            work_left: w,
            t_boot: job.t_boot,
            candidates: &candidates2,
            current: Some(CurrentDeployment {
                index: h.idx,
                uptime: t - h.acquired,
            }),
        };
        let mut chunk = (w * perf.t_exec).min(t_ckpt);
        if let Some(limit) = strategy.chunk_limit(&ctx2, pick) {
            chunk = chunk.min(limit);
        }
        if chunk <= 0.0 {
            // The strategy's own chunk bound says no safe progress is
            // possible here; it must pick something else on the next
            // decision. Guard against livelock on a repeated unsafe pick.
            if last_stuck_pick == Some(pick) {
                force_lrc = true;
            }
            last_stuck_pick = Some(pick);
            continue;
        }
        last_stuck_pick = None;
        let interval_end = t + chunk + perf.t_save;
        let trace = setup.market.trace(perf.config.instance_type)?;
        let evicted_at = trace
            .next_crossing_above(t, bid)
            .filter(|&te| te < interval_end.min(horizon));
        match evicted_at {
            Some(te) => {
                // §9 extension: a warning of at least t_save lets the
                // engine keep computing and still checkpoint right before
                // the reclaim, so only the final t_save of the interval's
                // progress is lost (without a warning the whole interval
                // is).
                if setup.eviction_warning >= perf.t_save {
                    let computed = (te - perf.t_save - t).clamp(0.0, chunk);
                    w = (w - computed / perf.t_exec).max(0.0);
                }
                bill(&mut ledger, setup, perf, t, te)?;
                evictions += 1;
                held = None;
                t = te;
            }
            None => {
                if interval_end >= horizon {
                    bill(&mut ledger, setup, perf, t, horizon)?;
                    t = horizon;
                    continue;
                }
                bill(&mut ledger, setup, perf, t, interval_end)?;
                w = (w - chunk / perf.t_exec).max(0.0);
                t = interval_end;
            }
        }
    };
    Ok(outcome)
}

fn bill(
    ledger: &mut CostLedger,
    setup: &SimulationSetup<'_>,
    perf: &crate::job::ConfigPerf,
    from: f64,
    to: f64,
) -> Result<()> {
    if to > from {
        ledger.bill(setup.market, &perf.config, from, to)?;
    }
    Ok(())
}

/// Builds the candidate set a strategy would see at absolute trace time
/// `t` (exposed for the Figure 9 decision-time experiment and for custom
/// drivers).
pub fn build_decision_candidates(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    t: f64,
    first_load_done: bool,
) -> Result<Vec<Candidate>> {
    build_candidates(setup, job, t, first_load_done)
}

fn build_candidates(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    t: f64,
    first_load_done: bool,
) -> Result<Vec<Candidate>> {
    job.configs
        .iter()
        .map(|perf| {
            let price_rate = match perf.config.class {
                ResourceClass::OnDemand => perf.config.on_demand_rate(),
                ResourceClass::Transient => {
                    // The true market price: during a spike this exceeds
                    // the on-demand rate, which correctly makes the
                    // (currently unavailable) market unattractive.
                    let trace = setup.market.trace(perf.config.instance_type)?;
                    trace.price_at(t.min(trace.horizon() - 1.0))? * perf.config.num_workers as f64
                }
            };
            let eviction = match perf.config.class {
                ResourceClass::OnDemand => eviction::reliable(),
                ResourceClass::Transient => {
                    setup.eviction_model(perf.config.instance_type)?.clone()
                }
            };
            Ok(Candidate {
                config: perf.config,
                t_exec: perf.t_exec,
                t_load: if first_load_done {
                    perf.t_load_reload
                } else {
                    perf.t_load_first
                },
                t_save: perf.t_save,
                price_rate,
                eviction,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{PaperJob, ReloadMode};
    use hourglass_cloud::tracegen;
    use hourglass_core::strategies::{
        DeadlineProtected, EagerStrategy, HourglassStrategy, OnDemandStrategy,
    };

    struct Fixture {
        market: hourglass_cloud::Market,
        models: Vec<(InstanceType, EvictionModel)>,
    }

    fn fixture(seed: u64) -> Fixture {
        let market = tracegen::simulation_market(seed).expect("market");
        let history = tracegen::history_market(seed).expect("market");
        let models = derive_eviction_models(&history, 24.0 * 3600.0, 500, 17).expect("models");
        Fixture { market, models }
    }

    #[test]
    fn on_demand_run_matches_baseline_shape() {
        let f = fixture(1);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::PageRank
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let out = run_job(&setup, &job, &OnDemandStrategy, 0.0).expect("run");
        assert!(out.completed);
        assert!(!out.missed_deadline);
        assert_eq!(out.evictions, 0);
        assert_eq!(out.deployments, 1);
        // Cost close to the baseline (the run additionally bills boot
        // time, the baseline does not).
        let baseline = job.on_demand_baseline_cost().expect("baseline");
        assert!(
            out.online_cost >= baseline && out.online_cost < baseline * 1.2,
            "online {} vs baseline {baseline}",
            out.online_cost
        );
    }

    #[test]
    fn hourglass_never_misses_across_starts() {
        let f = fixture(2);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let horizon = f.market.horizon();
        let mut starts = Vec::new();
        let mut s = 0.0;
        while s < horizon - 3.0 * job.deadline {
            starts.push(s);
            s += horizon / 24.0;
        }
        for &start in &starts {
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            assert!(
                out.completed && !out.missed_deadline,
                "Hourglass missed at start {start}: finish {} vs deadline {}",
                out.finish_time,
                job.deadline
            );
        }
    }

    #[test]
    fn hourglass_cheaper_than_on_demand_on_average() {
        let f = fixture(3);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let hg = HourglassStrategy::new();
        let mut hg_total = 0.0;
        let mut od_total = 0.0;
        for i in 0..8 {
            let start = i as f64 * 2.0 * 86_400.0;
            hg_total += run_job(&setup, &job, &hg, start).expect("run").online_cost;
            od_total += run_job(&setup, &job, &OnDemandStrategy, start)
                .expect("run")
                .online_cost;
        }
        assert!(
            hg_total < 0.8 * od_total,
            "Hourglass {hg_total:.2} should significantly undercut on-demand {od_total:.2}"
        );
    }

    #[test]
    fn eager_misses_deadlines_sometimes() {
        let f = fixture(4);
        let setup = SimulationSetup::new(&f.market, &f.models);
        // Tight slack makes the eager strategy's obliviousness visible.
        let job = PaperJob::GraphColoring
            .description(20.0, ReloadMode::Fast)
            .expect("job");
        let mut missed = 0;
        let mut runs = 0;
        for i in 0..12 {
            let start = i as f64 * 2.0 * 86_400.0;
            if start >= f.market.horizon() - 3.0 * job.deadline {
                break;
            }
            let out = run_job(&setup, &job, &EagerStrategy, start).expect("run");
            runs += 1;
            if out.missed_deadline {
                missed += 1;
            }
        }
        assert!(runs > 5);
        assert!(
            missed > 0,
            "eager should miss at least one deadline out of {runs} tight runs"
        );
    }

    #[test]
    fn dp_wrapper_rescues_eager() {
        let f = fixture(5);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(30.0, ReloadMode::Fast)
            .expect("job");
        let strategy = DeadlineProtected::new(EagerStrategy);
        for i in 0..10 {
            let start = i as f64 * 2.3 * 86_400.0;
            if start >= f.market.horizon() - 3.0 * job.deadline {
                break;
            }
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            assert!(
                !out.missed_deadline,
                "SpotOn+DP missed at start {start}: finish {}",
                out.finish_time
            );
        }
    }

    #[test]
    fn rejects_bad_start() {
        let f = fixture(6);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        assert!(run_job(&setup, &job, &OnDemandStrategy, -5.0).is_err());
        assert!(run_job(&setup, &job, &OnDemandStrategy, 1e12).is_err());
    }

    #[test]
    fn costs_are_positive_and_ledger_consistent() {
        let f = fixture(7);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::PageRank
            .description(80.0, ReloadMode::Fast)
            .expect("job");
        let out = run_job(&setup, &job, &HourglassStrategy::new(), 86_400.0).expect("run");
        assert!(out.online_cost > 0.0);
        assert!(out.cost >= out.online_cost);
        assert!(out.finish_time > 0.0);
    }
}
