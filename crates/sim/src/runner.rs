//! The job execution event loop (§4): decide → (re)deploy → fast-load →
//! execute → checkpoint → repeat, with evictions driven by the price trace.

use crate::events::{EventSink, NullSink, Phase, SimEvent};
use crate::job::JobDescription;
use crate::{Result, SimError};
use hourglass_cloud::billing::CostLedger;
use hourglass_cloud::eviction::{self, DynEviction, EvictionModel, LifetimeCapped};
use hourglass_cloud::{fit, InstanceType, Market, ResourceClass};
use hourglass_core::{Candidate, CurrentDeployment, DecisionContext, Strategy};
use hourglass_faults::{FaultHook, FaultPlan, Site};
use hourglass_metrics as hm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock strategy-decision latency. Real elapsed time on whatever
/// machine ran the decision — explicitly nondeterministic, excluded from
/// the bit-compared deterministic snapshot view.
pub static M_DECIDE_WALL_SECONDS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_decide_wall_seconds",
    help: "Wall-clock strategy decision latency (nondeterministic).",
    kind: hm::MetricKind::Histogram,
    buckets: hm::SECONDS_BUCKETS,
    nondeterministic: true,
};

/// Ground-truth lifetime process overlaid on the price-crossing evictions:
/// a transient deployment dies at `min(price crossing, lifetime)`.
///
/// The *model* strategies see (in [`SimulationSetup::eviction_models`]) and
/// the ground truth the runner enforces are configured separately, so
/// scenario sweeps can study model/world mismatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifetimeGroundTruth {
    /// Every transient deployment is revoked after exactly `seconds` of
    /// uptime (hard platform cap, 24 h-style).
    Cap {
        /// The cap in seconds.
        seconds: f64,
    },
    /// Each deployment's lifetime is drawn from the instance type's
    /// configured eviction process (inverse-CDF, seeded deterministically
    /// per `(seed, run, deployment)` so parallel sweeps stay bit-identical
    /// to sequential).
    Sampled {
        /// Scenario-level seed for the per-deployment draws.
        seed: u64,
    },
}

/// Shared simulation inputs: the replayed market and the historical
/// eviction statistics strategies are allowed to see.
pub struct SimulationSetup<'a> {
    /// The price trace being replayed (the paper's November trace).
    pub market: &'a Market,
    /// Eviction processes per instance type, derived from the historical
    /// trace (the paper's October trace). Trait objects: empirical
    /// price-crossing, lifetime-capped, bathtub — anything implementing
    /// [`hourglass_cloud::EvictionProcess`].
    pub eviction_models: &'a [(InstanceType, DynEviction)],
    /// Safety cap on simulated events per job.
    pub max_events: usize,
    /// Eviction warning lead time in seconds (§9 extension): when the
    /// provider warns at least `t_save` before reclaiming, the engine
    /// checkpoints the progress made up to the warning instead of losing
    /// the whole interval. AWS's real warning is 120 s; 0 disables it.
    pub eviction_warning: f64,
    /// Overrides Daly's checkpoint interval with a fixed value (ablation
    /// hook; `None` = the paper's `√(2·t_save·MTTF)`).
    pub checkpoint_interval_override: Option<f64>,
    /// Deterministic fault plan injected into the modeled I/O: shard
    /// reads during (re)loads and checkpoint puts. Each run draws its own
    /// reproducible fault stream (`FaultHook::for_run`), so sweeps stay
    /// bit-identical between sequential and parallel execution. `None`
    /// models reliable storage.
    pub fault_plan: Option<FaultPlan>,
    /// Ground-truth lifetime process the runner *enforces* on transient
    /// deployments, independently of the models strategies *see*. `None`
    /// means price crossings are the only eviction cause (the paper's
    /// world).
    pub lifetime: Option<LifetimeGroundTruth>,
}

impl<'a> SimulationSetup<'a> {
    /// Creates a setup with the default event cap.
    pub fn new(market: &'a Market, eviction_models: &'a [(InstanceType, DynEviction)]) -> Self {
        SimulationSetup {
            market,
            eviction_models,
            max_events: 100_000,
            eviction_warning: 0.0,
            checkpoint_interval_override: None,
            fault_plan: None,
            lifetime: None,
        }
    }

    /// Enables the §9 eviction-warning extension with the given lead time.
    pub fn with_eviction_warning(mut self, seconds: f64) -> Self {
        self.eviction_warning = seconds;
        self
    }

    /// Injects a deterministic fault plan into the modeled I/O.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overlays a ground-truth lifetime process on transient deployments.
    pub fn with_lifetime(mut self, lifetime: LifetimeGroundTruth) -> Self {
        self.lifetime = Some(lifetime);
        self
    }

    fn eviction_model(&self, ty: InstanceType) -> Result<&DynEviction> {
        self.eviction_models
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, m)| m)
            .ok_or_else(|| SimError::InvalidParameter(format!("no eviction model for {ty}")))
    }

    /// Absolute instant the deployment acquired at `acquire_at` dies from
    /// the ground-truth lifetime process (infinity when only price
    /// crossings can evict it).
    fn lifetime_dies_at(
        &self,
        ty: InstanceType,
        acquire_at: f64,
        run: u32,
        deployment: usize,
    ) -> Result<f64> {
        match self.lifetime {
            None => Ok(f64::INFINITY),
            Some(LifetimeGroundTruth::Cap { seconds }) => Ok(acquire_at + seconds),
            Some(LifetimeGroundTruth::Sampled { seed }) => {
                let model = self.eviction_model(ty)?;
                // Hash-mix (seed, run, deployment) so every deployment draws
                // an independent lifetime, yet the draw depends only on
                // values fixed at acquisition — parallel sweeps replay the
                // identical stream.
                let mix = seed
                    ^ (run as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (deployment as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                let mut rng = StdRng::seed_from_u64(mix);
                let u: f64 = rng.gen();
                Ok(match model.sample_next_eviction(0.0, u) {
                    Some(life) => acquire_at + life,
                    None => f64::INFINITY,
                })
            }
        }
    }
}

/// Model-selection knob for [`derive_eviction_models_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionModelKind {
    /// Empirical price-crossing CDF sampled from the historical trace
    /// (the paper's §7 model).
    Crossing,
    /// The crossing model composed with a hard lifetime cap.
    Capped {
        /// The cap in seconds (e.g. 24 h for GCE-style preemptibles).
        cap: f64,
    },
    /// Piecewise-Weibull bathtub hazard fitted to the crossing samples.
    Bathtub,
}

/// Builds the per-instance-type eviction models from a historical market,
/// bidding the on-demand price (§7).
pub fn derive_eviction_models(
    history: &Market,
    window: f64,
    samples: usize,
    seed: u64,
) -> Result<Vec<(InstanceType, DynEviction)>> {
    derive_eviction_models_with(history, window, samples, seed, EvictionModelKind::Crossing)
}

/// [`derive_eviction_models`] with an explicit model family: the empirical
/// crossing CDF, the crossing CDF under a hard lifetime cap, or a bathtub
/// hazard fitted to the same samples.
pub fn derive_eviction_models_with(
    history: &Market,
    window: f64,
    samples: usize,
    seed: u64,
    kind: EvictionModelKind,
) -> Result<Vec<(InstanceType, DynEviction)>> {
    let mut out = Vec::new();
    for ty in history.instance_types() {
        let trace = history.trace(ty)?;
        let bid = ty.on_demand_price();
        let model: DynEviction = match kind {
            EvictionModelKind::Crossing => Arc::new(EvictionModel::from_trace(
                trace, bid, window, samples, seed,
            )?),
            EvictionModelKind::Capped { cap } => {
                let base: DynEviction = Arc::new(EvictionModel::from_trace(
                    trace, bid, window, samples, seed,
                )?);
                Arc::new(LifetimeCapped::new(base, cap)?)
            }
            EvictionModelKind::Bathtub => {
                Arc::new(fit::fit_bathtub(trace, bid, window, samples, seed)?)
            }
        };
        out.push((ty, model));
    }
    Ok(out)
}

/// The outcome of one simulated job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Total dollars: online billing plus the offline phase.
    pub cost: f64,
    /// Online dollars only.
    pub online_cost: f64,
    /// Completion time relative to job start, seconds.
    pub finish_time: f64,
    /// True when the job finished after its deadline.
    pub missed_deadline: bool,
    /// Evictions suffered.
    pub evictions: usize,
    /// Deployments acquired (including the first).
    pub deployments: usize,
    /// False when the simulation hit the trace horizon before finishing
    /// (counted as a missed deadline).
    pub completed: bool,
}

/// What the job currently holds.
#[derive(Debug, Clone, Copy)]
struct Held {
    /// Index into `job.configs`.
    idx: usize,
    /// Absolute acquisition time.
    acquired: f64,
    /// Absolute instant the ground-truth lifetime process revokes this
    /// deployment (infinity when only price crossings apply).
    dies_at: f64,
}

/// Per-run observation state: the sink events are reported to and the
/// running billed-dollars total they are stamped with.
struct Obs<'s> {
    run: u32,
    billed: f64,
    sink: &'s mut dyn EventSink,
}

impl Obs<'_> {
    fn emit(&mut self, event: SimEvent) {
        self.sink.record(self.run, &event);
    }
}

/// Runs one job to completion over the market trace, starting at absolute
/// trace time `start`.
pub fn run_job(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    strategy: &dyn Strategy,
    start: f64,
) -> Result<JobOutcome> {
    run_job_observed(setup, job, strategy, start, 0, &mut NullSink)
}

/// [`run_job`] with every decision-loop transition reported to `sink`,
/// stamped with run index `run` (sweeps use it to keep interleaved runs
/// apart; standalone callers can pass 0).
pub fn run_job_observed(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    strategy: &dyn Strategy,
    start: f64,
    run: u32,
    sink: &mut dyn EventSink,
) -> Result<JobOutcome> {
    if start < 0.0 || start >= setup.market.horizon() {
        return Err(SimError::InvalidParameter(format!(
            "start {start} outside market horizon"
        )));
    }
    let horizon = setup.market.horizon();
    let mut t = start;
    let mut w = 1.0f64;
    let mut ledger = CostLedger::new();
    let mut held: Option<Held> = None;
    let mut first_load_done = false;
    let mut evictions = 0usize;
    let mut deployments = 0usize;
    let mut events = 0usize;
    let mut force_lrc = false;
    let mut last_stuck_pick: Option<usize> = None;
    let mut obs = Obs {
        run,
        billed: 0.0,
        sink,
    };
    // Fault state: one run-keyed hook per job, so interleaved sweep runs
    // draw independent but individually reproducible fault streams.
    let hook = setup
        .fault_plan
        .as_ref()
        .map(|p| FaultHook::for_run(p, run));
    // Flaky checkpoint stores stretch expected save time; strategies see
    // it as the retry-tail inflation factor p/(1−p).
    let save_retry_factor = setup
        .fault_plan
        .as_ref()
        .map(|p| p.retry_factor(Site::StorePut))
        .unwrap_or(0.0);

    let outcome = loop {
        events += 1;
        if events > setup.max_events {
            return Err(SimError::RunawayJob { events });
        }
        if w <= 1e-9 {
            let finish_time = t - start;
            break JobOutcome {
                cost: ledger.total() + job.offline_cost,
                online_cost: ledger.total(),
                finish_time,
                missed_deadline: finish_time > job.deadline + 1e-6,
                evictions,
                deployments,
                completed: true,
            };
        }
        if t >= horizon {
            // Ran off the end of the trace: report as incomplete.
            break JobOutcome {
                cost: ledger.total() + job.offline_cost,
                online_cost: ledger.total(),
                finish_time: t - start,
                missed_deadline: true,
                evictions,
                deployments,
                completed: false,
            };
        }

        // Decision point.
        let candidates = build_candidates(setup, job, t, first_load_done, held.map(|h| h.idx))?;
        let ctx = DecisionContext {
            now: t - start,
            deadline: job.deadline,
            work_left: w,
            t_boot: job.t_boot,
            candidates: &candidates,
            current: held.map(|h| CurrentDeployment {
                index: h.idx,
                uptime: t - h.acquired,
            }),
            save_retry_factor,
        };
        // Wall-clock decision latency is telemetry, not simulation state:
        // it goes straight into a nondeterministic metrics family and
        // never touches the (bit-compared) event stream.
        let decide_started = hm::enabled().then(Instant::now);
        let (pick, forced) = if force_lrc {
            force_lrc = false;
            (job.lrc()?, true)
        } else {
            (strategy.decide(&ctx)?.pick, false)
        };
        if let Some(started) = decide_started {
            hm::observe(&M_DECIDE_WALL_SECONDS, &[], started.elapsed().as_secs_f64());
        }
        let perf = &job.configs[pick];
        let bid = perf.config.on_demand_rate() / perf.config.num_workers as f64;

        // (Re)deploy if the pick differs from the held deployment.
        let continuing = matches!(held, Some(h) if h.idx == pick);
        obs.emit(SimEvent::Decide {
            t,
            work_left: w,
            billed: obs.billed,
            pick,
            continuation: continuing,
            forced,
            slack: job.deadline - (t - start),
        });
        if !continuing {
            let mut acquire_at = t;
            if perf.config.is_transient() {
                // Spot requests are fulfilled when the market clears at or
                // below the bid. While the request is pending, the held
                // deployment (if any) stays up — idle, but billed — so a
                // strategy that re-picks it once the spike passes continues
                // where it left off instead of paying a fresh boot + load.
                let trace = setup.market.trace(perf.config.instance_type)?;
                match trace.next_at_or_below(t, bid) {
                    Some(ta) if ta <= t + 1e-9 => acquire_at = t,
                    Some(ta) => {
                        // Market is in a spike: wait in bounded steps,
                        // re-deciding each time so deadline-aware
                        // strategies can bail to the lrc as slack burns.
                        let resume_at = ta.min(t + 300.0);
                        obs.emit(SimEvent::SpikeWait {
                            t,
                            work_left: w,
                            billed: obs.billed,
                            pick,
                            resume_at,
                            held: held.map(|h| h.idx),
                        });
                        wait_on_held(
                            &mut held,
                            setup,
                            job,
                            &mut ledger,
                            &mut evictions,
                            w,
                            t,
                            resume_at,
                            horizon,
                            &mut obs,
                        )?;
                        t = resume_at;
                        continue;
                    }
                    None => {
                        // Market never returns within the trace: fall back
                        // to the last-resort configuration.
                        let resume_at = t + 60.0;
                        obs.emit(SimEvent::SpikeWait {
                            t,
                            work_left: w,
                            billed: obs.billed,
                            pick,
                            resume_at,
                            held: held.map(|h| h.idx),
                        });
                        wait_on_held(
                            &mut held,
                            setup,
                            job,
                            &mut ledger,
                            &mut evictions,
                            w,
                            t,
                            resume_at,
                            horizon,
                            &mut obs,
                        )?;
                        t = resume_at;
                        force_lrc = true;
                        continue;
                    }
                }
            }
            // The replacement is available now: only at this point is the
            // old deployment released (it was billed through `t` by the
            // compute/wait intervals that got us here).
            let released = held.take().map(|h| h.idx);
            deployments += 1;
            let dies_at = if perf.config.is_transient() {
                setup.lifetime_dies_at(perf.config.instance_type, acquire_at, run, deployments)?
            } else {
                f64::INFINITY
            };
            let full_load = if first_load_done {
                perf.t_load_reload
            } else {
                perf.t_load_first
            };
            // A voluntary switch away from a still-live deployment is a
            // delta migration: only the rehomed micro-partitions are
            // re-shipped (§6.2). Recovery after an eviction (`released`
            // is `None`) pays the full reload from the datastore.
            let migration = released.filter(|_| first_load_done).map(|from| {
                let fraction = crate::job::delta_reload_fraction(&job.configs[from], perf);
                (from, fraction, fraction * perf.t_load_reload)
            });
            let load_time = migration.map(|(_, _, d)| d).unwrap_or(full_load);
            let mut setup_time = job.t_boot + load_time;
            // Fault seam: the (re)load's datastore reads. A fast reload
            // consults the shard-read site; the first load, the text
            // store. Transient faults stretch the setup by their retry
            // backoff; a fast reload whose shards stay unreadable falls
            // back to re-assembling from the text store (the full first
            // load, again) — wasted setup an eviction can land inside.
            let mut load_degraded: Option<(u32, bool, f64)> = None;
            if let Some(hook) = hook.as_ref() {
                let site = if first_load_done {
                    Site::ShardRead
                } else {
                    Site::StoreGet
                };
                let c = hook.consult(site);
                if c.retries > 0 || c.torn.is_some() || c.delay_ns > 0 || c.exhausted {
                    let mut extra = c.delay_ns as f64 / 1e9;
                    let mut fallback = false;
                    if c.exhausted || c.torn.is_some() {
                        // Fast path abandoned: pay the slow load on top of
                        // the partial attempt (first loads re-read the
                        // store wholesale).
                        extra += perf.t_load_first;
                        fallback = true;
                    }
                    setup_time += extra;
                    load_degraded = Some((c.retries, fallback, extra));
                }
            }
            obs.emit(SimEvent::Acquire {
                t: acquire_at,
                work_left: w,
                billed: obs.billed,
                pick,
                setup_seconds: setup_time,
                first_load: !first_load_done,
                released,
            });
            if let Some((from, fraction, delta_seconds)) = migration {
                obs.emit(SimEvent::Migrate {
                    t: acquire_at,
                    work_left: w,
                    billed: obs.billed,
                    pick,
                    from,
                    moved_fraction: fraction,
                    delta_seconds,
                    full_seconds: perf.t_load_reload,
                });
            }
            if let Some((retries, fallback, wasted)) = load_degraded {
                obs.emit(SimEvent::Degraded {
                    t: acquire_at,
                    work_left: w,
                    billed: obs.billed,
                    pick,
                    retries,
                    fallback,
                    wasted_seconds: wasted,
                });
            }
            let setup_end = acquire_at + setup_time;
            if perf.config.is_transient() {
                let trace = setup.market.trace(perf.config.instance_type)?;
                let te = match trace.next_crossing_above(acquire_at, bid) {
                    Some(c) => c.min(dies_at),
                    None => dies_at,
                };
                if te < setup_end && te < horizon {
                    // Evicted while booting/loading: no progress.
                    bill(&mut ledger, setup, perf, pick, acquire_at, te, w, &mut obs)?;
                    evictions += 1;
                    obs.emit(SimEvent::Evict {
                        t: te,
                        work_left: w,
                        billed: obs.billed,
                        pick,
                        phase: Phase::Setup,
                    });
                    t = te;
                    continue;
                }
            }
            if setup_end >= horizon {
                bill(
                    &mut ledger,
                    setup,
                    perf,
                    pick,
                    acquire_at,
                    horizon,
                    w,
                    &mut obs,
                )?;
                t = horizon;
                continue;
            }
            bill(
                &mut ledger,
                setup,
                perf,
                pick,
                acquire_at,
                setup_end,
                w,
                &mut obs,
            )?;
            held = Some(Held {
                idx: pick,
                acquired: acquire_at,
                dies_at,
            });
            first_load_done = true;
            t = setup_end;
        }

        // Compute phase.
        if !perf.config.is_transient() {
            // On-demand: run to completion (checkpointing disabled), then
            // store the output.
            let end = t + w * perf.t_exec + perf.t_save;
            let end_clamped = end.min(horizon);
            bill(&mut ledger, setup, perf, pick, t, end_clamped, w, &mut obs)?;
            if end > horizon {
                t = horizon;
                continue;
            }
            t = end;
            w = 0.0;
            continue;
        }

        // Transient: one checkpointed chunk.
        let h = held.expect("transient compute requires a held deployment");
        let eviction_model = setup.eviction_model(perf.config.instance_type)?;
        let t_ckpt = setup.checkpoint_interval_override.unwrap_or_else(|| {
            hourglass_core::checkpoint::daly_interval(perf.t_save, eviction_model.mttf())
        });
        // When the deployment continued, `t` has not moved since the
        // decision; reuse the candidate set instead of rebuilding.
        let candidates2 = if continuing {
            candidates
        } else {
            build_candidates(setup, job, t, first_load_done, Some(h.idx))?
        };
        let ctx2 = DecisionContext {
            now: t - start,
            deadline: job.deadline,
            work_left: w,
            t_boot: job.t_boot,
            candidates: &candidates2,
            current: Some(CurrentDeployment {
                index: h.idx,
                uptime: t - h.acquired,
            }),
            save_retry_factor,
        };
        let mut chunk = (w * perf.t_exec).min(t_ckpt);
        if let Some(limit) = strategy.chunk_limit(&ctx2, pick) {
            chunk = chunk.min(limit);
        }
        if chunk <= 0.0 {
            // The strategy's own chunk bound says no safe progress is
            // possible here; it must pick something else on the next
            // decision. Guard against livelock on a repeated unsafe pick.
            if last_stuck_pick == Some(pick) {
                force_lrc = true;
            }
            last_stuck_pick = Some(pick);
            continue;
        }
        last_stuck_pick = None;
        let interval_end = t + chunk + perf.t_save;
        let trace = setup.market.trace(perf.config.instance_type)?;
        let eviction_time = match trace.next_crossing_above(t, bid) {
            Some(c) => c.min(h.dies_at),
            None => h.dies_at,
        };
        let evicted_at = (eviction_time < interval_end.min(horizon)).then_some(eviction_time);
        match evicted_at {
            Some(te) => {
                // §9 extension: a warning of at least t_save lets the
                // engine keep computing and still checkpoint right before
                // the reclaim, so only the final t_save of the interval's
                // progress is lost (without a warning the whole interval
                // is).
                if setup.eviction_warning >= perf.t_save {
                    let computed = (te - perf.t_save - t).clamp(0.0, chunk);
                    w = (w - computed / perf.t_exec).max(0.0);
                }
                bill(&mut ledger, setup, perf, pick, t, te, w, &mut obs)?;
                evictions += 1;
                held = None;
                obs.emit(SimEvent::Evict {
                    t: te,
                    work_left: w,
                    billed: obs.billed,
                    pick,
                    phase: Phase::Compute,
                });
                t = te;
            }
            None => {
                // Fault seam: the checkpoint put. Transient failures are
                // retried (the save stretches by their backoff); a torn
                // write models a reclaim landing mid-save (the chunk's
                // progress is lost with the uncommitted epoch); exhausted
                // retries lose the checkpoint but keep the deployment.
                let consult = hook.as_ref().map(|h| h.consult(Site::StorePut));
                if let Some(fraction) = consult.as_ref().and_then(|c| c.torn) {
                    let te = (t + chunk + fraction * perf.t_save).min(horizon);
                    bill(&mut ledger, setup, perf, pick, t, te, w, &mut obs)?;
                    evictions += 1;
                    held = None;
                    obs.emit(SimEvent::Degraded {
                        t: te,
                        work_left: w,
                        billed: obs.billed,
                        pick,
                        retries: consult.map(|c| c.retries).unwrap_or(0),
                        fallback: true,
                        wasted_seconds: te - t,
                    });
                    obs.emit(SimEvent::Evict {
                        t: te,
                        work_left: w,
                        billed: obs.billed,
                        pick,
                        phase: Phase::Compute,
                    });
                    t = te;
                    continue;
                }
                let save_extra = consult
                    .as_ref()
                    .map(|c| c.delay_ns as f64 / 1e9)
                    .unwrap_or(0.0);
                let interval_end = interval_end + save_extra;
                if interval_end >= horizon {
                    bill(&mut ledger, setup, perf, pick, t, horizon, w, &mut obs)?;
                    t = horizon;
                    continue;
                }
                bill(&mut ledger, setup, perf, pick, t, interval_end, w, &mut obs)?;
                let checkpoint_lost = consult.as_ref().map(|c| c.exhausted).unwrap_or(false);
                if checkpoint_lost {
                    // Every put attempt failed: the interval is billed but
                    // its progress never committed.
                    obs.emit(SimEvent::Degraded {
                        t: interval_end,
                        work_left: w,
                        billed: obs.billed,
                        pick,
                        retries: consult.map(|c| c.retries).unwrap_or(0),
                        fallback: true,
                        wasted_seconds: interval_end - t,
                    });
                    t = interval_end;
                    continue;
                }
                w = (w - chunk / perf.t_exec).max(0.0);
                if let Some(c) = consult.filter(|c| c.retries > 0 || c.delay_ns > 0) {
                    obs.emit(SimEvent::Degraded {
                        t: interval_end,
                        work_left: w,
                        billed: obs.billed,
                        pick,
                        retries: c.retries,
                        fallback: false,
                        wasted_seconds: save_extra,
                    });
                }
                obs.emit(SimEvent::Checkpoint {
                    t: interval_end,
                    work_left: w,
                    billed: obs.billed,
                    pick,
                    chunk_seconds: chunk,
                });
                t = interval_end;
            }
        }
    };
    obs.emit(SimEvent::Complete {
        t,
        work_left: w,
        billed: obs.billed,
        finish_seconds: outcome.finish_time,
        deadline: job.deadline,
        cost: outcome.cost,
        online_cost: outcome.online_cost,
        missed_deadline: outcome.missed_deadline,
        completed: outcome.completed,
        evictions: outcome.evictions,
        deployments: outcome.deployments,
    });
    Ok(outcome)
}

/// Bills the held deployment while it sits idle through a spike wait on
/// `[from, until)`, evicting it if its own market crosses the bid first.
#[allow(clippy::too_many_arguments)]
fn wait_on_held(
    held: &mut Option<Held>,
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    ledger: &mut CostLedger,
    evictions: &mut usize,
    w: f64,
    from: f64,
    until: f64,
    horizon: f64,
    obs: &mut Obs<'_>,
) -> Result<()> {
    let Some(h) = *held else { return Ok(()) };
    let perf = &job.configs[h.idx];
    let until = until.min(horizon);
    if until <= from {
        return Ok(());
    }
    if perf.config.is_transient() {
        let bid = perf.config.on_demand_rate() / perf.config.num_workers as f64;
        let trace = setup.market.trace(perf.config.instance_type)?;
        let eviction_time = match trace.next_crossing_above(from, bid) {
            Some(c) => c.min(h.dies_at),
            None => h.dies_at,
        };
        if let Some(te) = (eviction_time < until).then_some(eviction_time) {
            // The idle deployment is reclaimed mid-wait. Nothing beyond
            // the last checkpoint is lost (`w` already reflects it).
            bill(ledger, setup, perf, h.idx, from, te, w, obs)?;
            *evictions += 1;
            *held = None;
            obs.emit(SimEvent::Evict {
                t: te,
                work_left: w,
                billed: obs.billed,
                pick: h.idx,
                phase: Phase::Wait,
            });
            return Ok(());
        }
    }
    bill(ledger, setup, perf, h.idx, from, until, w, obs)?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn bill(
    ledger: &mut CostLedger,
    setup: &SimulationSetup<'_>,
    perf: &crate::job::ConfigPerf,
    pick: usize,
    from: f64,
    to: f64,
    work_left: f64,
    obs: &mut Obs<'_>,
) -> Result<()> {
    if to > from {
        let cost = ledger.bill(setup.market, &perf.config, from, to)?;
        obs.billed += cost;
        obs.emit(SimEvent::Bill {
            t: from,
            to,
            work_left,
            billed: obs.billed,
            pick,
            cost,
        });
    }
    Ok(())
}

/// Builds the candidate set a strategy would see at absolute trace time
/// `t` (exposed for the Figure 9 decision-time experiment and for custom
/// drivers).
pub fn build_decision_candidates(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    t: f64,
    first_load_done: bool,
) -> Result<Vec<Candidate>> {
    build_candidates(setup, job, t, first_load_done, None)
}

fn build_candidates(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    t: f64,
    first_load_done: bool,
    held_idx: Option<usize>,
) -> Result<Vec<Candidate>> {
    job.configs
        .iter()
        .map(|perf| {
            let price_rate = match perf.config.class {
                ResourceClass::OnDemand => perf.config.on_demand_rate(),
                ResourceClass::Transient => {
                    // The true market price: during a spike this exceeds
                    // the on-demand rate, which correctly makes the
                    // (currently unavailable) market unattractive.
                    let trace = setup.market.trace(perf.config.instance_type)?;
                    trace.price_at(t.min(trace.horizon() - 1.0))? * perf.config.num_workers as f64
                }
            };
            let eviction: DynEviction = match perf.config.class {
                ResourceClass::OnDemand => Arc::new(eviction::reliable()),
                ResourceClass::Transient => {
                    setup.eviction_model(perf.config.instance_type)?.clone()
                }
            };
            let t_load = if first_load_done {
                perf.t_load_reload
            } else {
                perf.t_load_first
            };
            // While a deployment is held, a switch to this candidate ships
            // only the rehomed micro-partitions; `effective_load` charges
            // this instead of `t_load` when the context carries a current
            // deployment.
            let t_load_delta = match held_idx {
                Some(h) if first_load_done => {
                    crate::job::delta_reload_fraction(&job.configs[h], perf) * perf.t_load_reload
                }
                _ => t_load,
            };
            Ok(Candidate {
                config: perf.config,
                t_exec: perf.t_exec,
                t_load,
                t_load_delta,
                t_save: perf.t_save,
                price_rate,
                eviction,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{PaperJob, ReloadMode};
    use hourglass_cloud::tracegen;
    use hourglass_core::strategies::{
        DeadlineProtected, EagerStrategy, HourglassStrategy, OnDemandStrategy,
    };

    struct Fixture {
        market: hourglass_cloud::Market,
        models: Vec<(InstanceType, DynEviction)>,
    }

    fn fixture(seed: u64) -> Fixture {
        let market = tracegen::simulation_market(seed).expect("market");
        let history = tracegen::history_market(seed).expect("market");
        let models = derive_eviction_models(&history, 24.0 * 3600.0, 500, 17).expect("models");
        Fixture { market, models }
    }

    #[test]
    fn on_demand_run_matches_baseline_shape() {
        let f = fixture(1);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::PageRank
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let out = run_job(&setup, &job, &OnDemandStrategy, 0.0).expect("run");
        assert!(out.completed);
        assert!(!out.missed_deadline);
        assert_eq!(out.evictions, 0);
        assert_eq!(out.deployments, 1);
        // Cost close to the baseline (the run additionally bills boot
        // time, the baseline does not).
        let baseline = job.on_demand_baseline_cost().expect("baseline");
        assert!(
            out.online_cost >= baseline && out.online_cost < baseline * 1.2,
            "online {} vs baseline {baseline}",
            out.online_cost
        );
    }

    #[test]
    fn hourglass_never_misses_across_starts() {
        let f = fixture(2);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let horizon = f.market.horizon();
        let mut starts = Vec::new();
        let mut s = 0.0;
        while s < horizon - 3.0 * job.deadline {
            starts.push(s);
            s += horizon / 24.0;
        }
        for &start in &starts {
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            assert!(
                out.completed && !out.missed_deadline,
                "Hourglass missed at start {start}: finish {} vs deadline {}",
                out.finish_time,
                job.deadline
            );
        }
    }

    #[test]
    fn hourglass_cheaper_than_on_demand_on_average() {
        let f = fixture(3);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let hg = HourglassStrategy::new();
        let mut hg_total = 0.0;
        let mut od_total = 0.0;
        for i in 0..8 {
            let start = i as f64 * 2.0 * 86_400.0;
            hg_total += run_job(&setup, &job, &hg, start).expect("run").online_cost;
            od_total += run_job(&setup, &job, &OnDemandStrategy, start)
                .expect("run")
                .online_cost;
        }
        assert!(
            hg_total < 0.8 * od_total,
            "Hourglass {hg_total:.2} should significantly undercut on-demand {od_total:.2}"
        );
    }

    #[test]
    fn eager_misses_deadlines_sometimes() {
        let f = fixture(4);
        let setup = SimulationSetup::new(&f.market, &f.models);
        // Tight slack makes the eager strategy's obliviousness visible.
        let job = PaperJob::GraphColoring
            .description(20.0, ReloadMode::Fast)
            .expect("job");
        let mut missed = 0;
        let mut runs = 0;
        for i in 0..12 {
            let start = i as f64 * 2.0 * 86_400.0;
            if start >= f.market.horizon() - 3.0 * job.deadline {
                break;
            }
            let out = run_job(&setup, &job, &EagerStrategy, start).expect("run");
            runs += 1;
            if out.missed_deadline {
                missed += 1;
            }
        }
        assert!(runs > 5);
        assert!(
            missed > 0,
            "eager should miss at least one deadline out of {runs} tight runs"
        );
    }

    #[test]
    fn dp_wrapper_rescues_eager() {
        let f = fixture(5);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(30.0, ReloadMode::Fast)
            .expect("job");
        let strategy = DeadlineProtected::new(EagerStrategy);
        for i in 0..10 {
            let start = i as f64 * 2.3 * 86_400.0;
            if start >= f.market.horizon() - 3.0 * job.deadline {
                break;
            }
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            assert!(
                !out.missed_deadline,
                "SpotOn+DP missed at start {start}: finish {}",
                out.finish_time
            );
        }
    }

    #[test]
    fn rejects_bad_start() {
        let f = fixture(6);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        assert!(run_job(&setup, &job, &OnDemandStrategy, -5.0).is_err());
        assert!(run_job(&setup, &job, &OnDemandStrategy, 1e12).is_err());
    }

    mod spike_wait {
        use super::*;
        use crate::events::VecSink;
        use crate::job::ConfigPerf;
        use hourglass_cloud::config::DeploymentConfig;
        use hourglass_cloud::PriceTrace;
        use hourglass_core::Decision;
        use std::sync::atomic::{AtomicUsize, Ordering};

        const STEP: f64 = 60.0;
        const POINTS: usize = 2000;
        /// First instant config B's market drops back below its bid.
        const B_RECOVERS: f64 = 20_040.0;

        /// Synthetic market: config A's type (r4.2xlarge) cheap throughout
        /// except an optional mid-trace spike; config B's type (r4.4xlarge)
        /// spiked until [`B_RECOVERS`]; everything else flat and cheap.
        fn market(a_spike: Option<(f64, f64)>) -> Market {
            let traces = InstanceType::ALL
                .iter()
                .map(|&ty| {
                    let prices: Vec<f64> = (0..POINTS)
                        .map(|i| {
                            let t = i as f64 * STEP;
                            match ty {
                                InstanceType::R44xlarge if t < B_RECOVERS => 10.0,
                                InstanceType::R44xlarge => 0.2,
                                InstanceType::R42xlarge => match a_spike {
                                    Some((from, to)) if t >= from && t < to => 1.0,
                                    _ => 0.1,
                                },
                                _ => 0.1,
                            }
                        })
                        .collect();
                    (ty, PriceTrace::new(STEP, prices).expect("trace"))
                })
                .collect();
            Market::new(traces).expect("market")
        }

        fn reliable_models() -> Vec<(InstanceType, DynEviction)> {
            InstanceType::ALL
                .iter()
                .map(|&ty| (ty, Arc::new(eviction::reliable()) as DynEviction))
                .collect()
        }

        fn perf(config: DeploymentConfig, t_exec: f64) -> ConfigPerf {
            ConfigPerf {
                config,
                t_exec,
                t_load_first: 100.0,
                t_load_reload: 100.0,
                t_save: 10.0,
            }
        }

        /// Configs: 0 = A (spot r4.2xlarge), 1 = B (spot r4.4xlarge),
        /// 2 = lrc (on-demand r4.8xlarge).
        fn job() -> JobDescription {
            JobDescription {
                name: "spike-wait".into(),
                deadline: 20_000.0,
                t_boot: 60.0,
                configs: vec![
                    perf(
                        DeploymentConfig::new(InstanceType::R42xlarge, 4, ResourceClass::Transient),
                        4000.0,
                    ),
                    perf(
                        DeploymentConfig::new(InstanceType::R44xlarge, 4, ResourceClass::Transient),
                        2000.0,
                    ),
                    perf(
                        DeploymentConfig::new(InstanceType::R48xlarge, 2, ResourceClass::OnDemand),
                        1000.0,
                    ),
                ],
                offline_cost: 0.0,
            }
        }

        /// Picks B on its `tempted_call`-th decision, A otherwise: one
        /// doomed attempt to switch into B's spiked market.
        struct TemptedByB {
            calls: AtomicUsize,
            tempted_call: usize,
        }

        impl Strategy for TemptedByB {
            fn name(&self) -> String {
                "tempted-by-b".into()
            }

            fn decide(&self, _ctx: &DecisionContext<'_>) -> hourglass_core::Result<Decision> {
                let n = self.calls.fetch_add(1, Ordering::SeqCst);
                Ok(Decision {
                    pick: if n == self.tempted_call { 1 } else { 0 },
                })
            }
        }

        /// The regression this guards: the runner used to drop the held
        /// deployment *before* the replacement's spot request was
        /// fulfilled, so re-picking the old configuration after a spike
        /// wait was treated as a fresh deployment and paid boot + reload
        /// again. With the fix the deployment is kept (idle, billed)
        /// through the wait and the re-pick continues it.
        #[test]
        fn repick_after_spike_wait_continues_held_deployment() {
            let market = market(None);
            let models = reliable_models();
            let mut setup = SimulationSetup::new(&market, &models);
            setup.checkpoint_interval_override = Some(500.0);
            let strategy = TemptedByB {
                calls: AtomicUsize::new(0),
                tempted_call: 1,
            };
            let mut sink = VecSink::new();
            let out = run_job_observed(&setup, &job(), &strategy, 0.0, 0, &mut sink).expect("run");

            // One acquisition, kept across the wait: no second boot+load.
            assert!(out.completed && !out.missed_deadline);
            assert_eq!(out.deployments, 1, "re-pick must not redeploy");
            assert_eq!(out.evictions, 0);
            // Timeline: setup [0,160), chunk to 670, one 300 s wait step
            // for B, then 7 more 510 s chunks on the continued deployment.
            // The old code re-deployed at 970 and finished 160 s later.
            assert!(
                (out.finish_time - 4540.0).abs() < 1.0,
                "finish {} should be 4540 (re-deploying would give 4700)",
                out.finish_time
            );

            let acquires: Vec<_> = sink
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    SimEvent::Acquire { t, first_load, .. } => Some((*t, *first_load)),
                    _ => None,
                })
                .collect();
            assert_eq!(acquires, vec![(0.0, true)]);
            let waits: Vec<_> = sink
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    SimEvent::SpikeWait { t, pick, held, .. } => Some((*t, *pick, *held)),
                    _ => None,
                })
                .collect();
            assert_eq!(waits, vec![(670.0, 1, Some(0))]);
            // The decision right after the wait continues the held config.
            let post_wait_decide = sink
                .events
                .iter()
                .find_map(|(_, e)| match e {
                    SimEvent::Decide {
                        t, continuation, ..
                    } if *t > 670.0 => Some(*continuation),
                    _ => None,
                })
                .expect("decision after the wait");
            assert!(post_wait_decide, "re-pick must continue, not redeploy");
            // The wait interval itself is billed: the held machines sit
            // idle but allocated over [670, 970).
            assert!(sink.events.iter().any(|(_, e)| matches!(
                e,
                SimEvent::Bill { t, to, .. } if *t == 670.0 && *to == 970.0
            )));
        }

        /// The held deployment is *not* immortal during a wait: if its own
        /// market crosses the bid while idle, it is evicted (billed to the
        /// eviction instant) and the post-wait re-pick redeploys afresh.
        #[test]
        fn held_deployment_can_be_evicted_during_wait() {
            // A spikes over [720, 1200): inside the wait window [670, 970).
            let market = market(Some((720.0, 1200.0)));
            let models = reliable_models();
            let mut setup = SimulationSetup::new(&market, &models);
            setup.checkpoint_interval_override = Some(500.0);
            let strategy = TemptedByB {
                calls: AtomicUsize::new(0),
                tempted_call: 1,
            };
            let mut sink = VecSink::new();
            let out = run_job_observed(&setup, &job(), &strategy, 0.0, 0, &mut sink).expect("run");

            assert!(out.completed && !out.missed_deadline);
            assert_eq!(out.evictions, 1, "idle eviction must be counted");
            assert_eq!(out.deployments, 2, "post-wait re-pick must redeploy");
            let wait_evicts: Vec<_> = sink
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    SimEvent::Evict { t, pick, phase, .. } if *phase == Phase::Wait => {
                        Some((*t, *pick))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(wait_evicts, vec![(720.0, 0)]);
            // Billed only up to the idle eviction, not the full wait.
            assert!(sink.events.iter().any(|(_, e)| matches!(
                e,
                SimEvent::Bill { t, to, .. } if *t == 670.0 && *to == 720.0
            )));
        }

        /// With a lifetime-cap ground truth, a deployment whose market
        /// never crosses its bid is still revoked — exactly at the cap.
        #[test]
        fn lifetime_cap_ground_truth_evicts_at_cap() {
            let market = market(None);
            let models = reliable_models();
            let mut setup = SimulationSetup::new(&market, &models)
                .with_lifetime(LifetimeGroundTruth::Cap { seconds: 1000.0 });
            setup.checkpoint_interval_override = Some(500.0);
            let strategy = TemptedByB {
                calls: AtomicUsize::new(0),
                tempted_call: usize::MAX,
            };
            let mut sink = VecSink::new();
            let out = run_job_observed(&setup, &job(), &strategy, 0.0, 0, &mut sink).expect("run");
            assert!(out.completed);
            assert!(out.evictions >= 1, "cap must revoke the deployment");
            assert!(out.deployments >= 2, "revocation must force a redeploy");
            let first_evict = sink
                .events
                .iter()
                .find_map(|(_, e)| match e {
                    SimEvent::Evict { t, .. } => Some(*t),
                    _ => None,
                })
                .expect("evict event");
            assert!(
                (first_evict - 1000.0).abs() < 1e-9,
                "first revocation at {first_evict}, expected the 1000 s cap"
            );
        }
    }

    #[test]
    fn faulted_runs_are_deterministic_and_report_degradations() {
        use crate::events::VecSink;
        let f = fixture(8);
        let setup =
            SimulationSetup::new(&f.market, &f.models).with_fault_plan(FaultPlan::io_flaky(1234));
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();

        let mut degraded_total = 0usize;
        for i in 0..6 {
            let start = i as f64 * 2.0 * 86_400.0;
            let run_once = || {
                let mut sink = VecSink::new();
                let out = run_job_observed(&setup, &job, &strategy, start, i, &mut sink)
                    .expect("faulted run");
                (out, sink.events)
            };
            let (a, ea) = run_once();
            let (b, eb) = run_once();
            // Same seed + same plan → bit-identical outcome and stream.
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
            assert_eq!(ea, eb);
            // ≤10% transient I/O must never cost Hourglass its deadline.
            assert!(a.completed && !a.missed_deadline, "missed at start {start}");
            degraded_total += ea
                .iter()
                .filter(|(_, e)| matches!(e, SimEvent::Degraded { .. }))
                .count();
        }
        assert!(
            degraded_total > 0,
            "io-flaky plan should degrade at least one operation across 6 runs"
        );
    }

    #[test]
    fn torn_checkpoint_write_is_a_mid_save_eviction() {
        use crate::events::VecSink;
        let f = fixture(9);
        let plain = SimulationSetup::new(&f.market, &f.models);
        let torn =
            SimulationSetup::new(&f.market, &f.models).with_fault_plan(FaultPlan::torn_writes(7));
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();

        let mut saw_torn_eviction = false;
        for i in 0..6 {
            let start = i as f64 * 2.0 * 86_400.0;
            let base = run_job(&plain, &job, &strategy, start).expect("plain run");
            let mut sink = VecSink::new();
            let out =
                run_job_observed(&torn, &job, &strategy, start, i, &mut sink).expect("torn run");
            assert!(out.completed, "torn writes must not wedge the run");
            // Every torn checkpoint is surfaced as a fallback degradation
            // immediately followed by a compute-phase eviction.
            let events = &sink.events;
            for (i, (_, e)) in events.iter().enumerate() {
                if let SimEvent::Degraded {
                    fallback: true,
                    wasted_seconds,
                    ..
                } = e
                {
                    if matches!(
                        events.get(i + 1),
                        Some((
                            _,
                            SimEvent::Evict {
                                phase: Phase::Compute,
                                ..
                            }
                        ))
                    ) {
                        saw_torn_eviction = true;
                        assert!(*wasted_seconds > 0.0);
                    }
                }
            }
            // The faulted run can only do worse or equal on evictions.
            assert!(out.evictions >= base.evictions);
        }
        assert!(
            saw_torn_eviction,
            "every-7th-put torn writes should hit at least one checkpoint"
        );
    }

    #[test]
    fn costs_are_positive_and_ledger_consistent() {
        let f = fixture(7);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::PageRank
            .description(80.0, ReloadMode::Fast)
            .expect("job");
        let out = run_job(&setup, &job, &HourglassStrategy::new(), 86_400.0).expect("run");
        assert!(out.online_cost > 0.0);
        assert!(out.cost >= out.online_cost);
        assert!(out.finish_time > 0.0);
    }
}
