//! The job execution event loop (§4): decide → (re)deploy → fast-load →
//! execute → checkpoint → repeat, with evictions driven by the price trace.

use crate::events::{EventSink, NullSink, Phase, SimEvent};
use crate::job::JobDescription;
use crate::{Result, SimError};
use hourglass_cloud::billing::CostLedger;
use hourglass_cloud::eviction::{self, DynEviction, EvictionModel, LifetimeCapped};
use hourglass_cloud::{fit, InstanceType, Market, ResourceClass};
use hourglass_core::{Candidate, CurrentDeployment, DecisionContext, Strategy};
use hourglass_faults::{FaultHook, FaultPlan, Site};
use hourglass_metrics as hm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock strategy-decision latency. Real elapsed time on whatever
/// machine ran the decision — explicitly nondeterministic, excluded from
/// the bit-compared deterministic snapshot view.
pub static M_DECIDE_WALL_SECONDS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_decide_wall_seconds",
    help: "Wall-clock strategy decision latency (nondeterministic).",
    kind: hm::MetricKind::Histogram,
    buckets: hm::SECONDS_BUCKETS,
    nondeterministic: true,
};

/// Ground-truth lifetime process overlaid on the price-crossing evictions:
/// a transient deployment dies at `min(price crossing, lifetime)`.
///
/// The *model* strategies see (in [`SimulationSetup::eviction_models`]) and
/// the ground truth the runner enforces are configured separately, so
/// scenario sweeps can study model/world mismatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifetimeGroundTruth {
    /// Every transient deployment is revoked after exactly `seconds` of
    /// uptime (hard platform cap, 24 h-style).
    Cap {
        /// The cap in seconds.
        seconds: f64,
    },
    /// Each deployment's lifetime is drawn from the instance type's
    /// configured eviction process (inverse-CDF, seeded deterministically
    /// per `(seed, run, deployment)` so parallel sweeps stay bit-identical
    /// to sequential).
    Sampled {
        /// Scenario-level seed for the per-deployment draws.
        seed: u64,
    },
}

/// Shared simulation inputs: the replayed market and the historical
/// eviction statistics strategies are allowed to see.
pub struct SimulationSetup<'a> {
    /// The price trace being replayed (the paper's November trace).
    pub market: &'a Market,
    /// Eviction processes per instance type, derived from the historical
    /// trace (the paper's October trace). Trait objects: empirical
    /// price-crossing, lifetime-capped, bathtub — anything implementing
    /// [`hourglass_cloud::EvictionProcess`].
    pub eviction_models: &'a [(InstanceType, DynEviction)],
    /// Safety cap on simulated events per job.
    pub max_events: usize,
    /// Eviction warning lead time in seconds (§9 extension): when the
    /// provider warns at least `t_save` before reclaiming, the engine
    /// checkpoints the progress made up to the warning instead of losing
    /// the whole interval. AWS's real warning is 120 s; 0 disables it.
    pub eviction_warning: f64,
    /// Overrides Daly's checkpoint interval with a fixed value (ablation
    /// hook; `None` = the paper's `√(2·t_save·MTTF)`).
    pub checkpoint_interval_override: Option<f64>,
    /// Deterministic fault plan injected into the modeled I/O: shard
    /// reads during (re)loads and checkpoint puts. Each run draws its own
    /// reproducible fault stream (`FaultHook::for_run`), so sweeps stay
    /// bit-identical between sequential and parallel execution. `None`
    /// models reliable storage.
    pub fault_plan: Option<FaultPlan>,
    /// Ground-truth lifetime process the runner *enforces* on transient
    /// deployments, independently of the models strategies *see*. `None`
    /// means price crossings are the only eviction cause (the paper's
    /// world).
    pub lifetime: Option<LifetimeGroundTruth>,
}

impl<'a> SimulationSetup<'a> {
    /// Creates a setup with the default event cap.
    pub fn new(market: &'a Market, eviction_models: &'a [(InstanceType, DynEviction)]) -> Self {
        SimulationSetup {
            market,
            eviction_models,
            max_events: 100_000,
            eviction_warning: 0.0,
            checkpoint_interval_override: None,
            fault_plan: None,
            lifetime: None,
        }
    }

    /// Enables the §9 eviction-warning extension with the given lead time.
    pub fn with_eviction_warning(mut self, seconds: f64) -> Self {
        self.eviction_warning = seconds;
        self
    }

    /// Injects a deterministic fault plan into the modeled I/O.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overlays a ground-truth lifetime process on transient deployments.
    pub fn with_lifetime(mut self, lifetime: LifetimeGroundTruth) -> Self {
        self.lifetime = Some(lifetime);
        self
    }

    fn eviction_model(&self, ty: InstanceType) -> Result<&DynEviction> {
        self.eviction_models
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, m)| m)
            .ok_or_else(|| SimError::InvalidParameter(format!("no eviction model for {ty}")))
    }

    /// Absolute instant the deployment acquired at `acquire_at` dies from
    /// the ground-truth lifetime process (infinity when only price
    /// crossings can evict it). `salt` decorrelates draws across fleet
    /// tenants sharing one run index; the single-job runner passes 0,
    /// which leaves the historical mix untouched.
    fn lifetime_dies_at(
        &self,
        ty: InstanceType,
        acquire_at: f64,
        run: u32,
        deployment: usize,
        salt: u64,
    ) -> Result<f64> {
        match self.lifetime {
            None => Ok(f64::INFINITY),
            Some(LifetimeGroundTruth::Cap { seconds }) => Ok(acquire_at + seconds),
            Some(LifetimeGroundTruth::Sampled { seed }) => {
                let model = self.eviction_model(ty)?;
                // Hash-mix (seed, run, deployment) so every deployment draws
                // an independent lifetime, yet the draw depends only on
                // values fixed at acquisition — parallel sweeps replay the
                // identical stream.
                let mix = seed
                    ^ (run as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (deployment as u64 + 1).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                    ^ salt;
                let mut rng = StdRng::seed_from_u64(mix);
                let u: f64 = rng.gen();
                Ok(match model.sample_next_eviction(0.0, u) {
                    Some(life) => acquire_at + life,
                    None => f64::INFINITY,
                })
            }
        }
    }
}

/// Model-selection knob for [`derive_eviction_models_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionModelKind {
    /// Empirical price-crossing CDF sampled from the historical trace
    /// (the paper's §7 model).
    Crossing,
    /// The crossing model composed with a hard lifetime cap.
    Capped {
        /// The cap in seconds (e.g. 24 h for GCE-style preemptibles).
        cap: f64,
    },
    /// Piecewise-Weibull bathtub hazard fitted to the crossing samples.
    Bathtub,
}

/// Builds the per-instance-type eviction models from a historical market,
/// bidding the on-demand price (§7).
pub fn derive_eviction_models(
    history: &Market,
    window: f64,
    samples: usize,
    seed: u64,
) -> Result<Vec<(InstanceType, DynEviction)>> {
    derive_eviction_models_with(history, window, samples, seed, EvictionModelKind::Crossing)
}

/// [`derive_eviction_models`] with an explicit model family: the empirical
/// crossing CDF, the crossing CDF under a hard lifetime cap, or a bathtub
/// hazard fitted to the same samples.
pub fn derive_eviction_models_with(
    history: &Market,
    window: f64,
    samples: usize,
    seed: u64,
    kind: EvictionModelKind,
) -> Result<Vec<(InstanceType, DynEviction)>> {
    let mut out = Vec::new();
    for ty in history.instance_types() {
        let trace = history.trace(ty)?;
        let bid = ty.on_demand_price();
        let model: DynEviction = match kind {
            EvictionModelKind::Crossing => Arc::new(EvictionModel::from_trace(
                trace, bid, window, samples, seed,
            )?),
            EvictionModelKind::Capped { cap } => {
                let base: DynEviction = Arc::new(EvictionModel::from_trace(
                    trace, bid, window, samples, seed,
                )?);
                Arc::new(LifetimeCapped::new(base, cap)?)
            }
            EvictionModelKind::Bathtub => {
                Arc::new(fit::fit_bathtub(trace, bid, window, samples, seed)?)
            }
        };
        out.push((ty, model));
    }
    Ok(out)
}

/// The outcome of one simulated job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Total dollars: online billing plus the offline phase.
    pub cost: f64,
    /// Online dollars only.
    pub online_cost: f64,
    /// Completion time relative to job start, seconds.
    pub finish_time: f64,
    /// True when the job finished after its deadline.
    pub missed_deadline: bool,
    /// Evictions suffered.
    pub evictions: usize,
    /// Deployments acquired (including the first).
    pub deployments: usize,
    /// False when the simulation hit the trace horizon before finishing
    /// (counted as a missed deadline).
    pub completed: bool,
}

/// What the job currently holds.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Held {
    /// Index into `job.configs`.
    pub(crate) idx: usize,
    /// Absolute acquisition time.
    pub(crate) acquired: f64,
    /// Absolute instant the ground-truth lifetime process revokes this
    /// deployment (infinity when only price crossings apply).
    pub(crate) dies_at: f64,
}

/// Arbitration hook a [`JobActor`] consults right before committing a
/// transient acquisition, so a fleet scheduler can enforce a shared
/// capacity cap. On-demand deployments (the last-resort configuration)
/// are never capacity-constrained.
pub(crate) trait CapacityControl {
    /// Asks to deploy `workers` transient machines at absolute time `t`,
    /// releasing `releasing` transient machines of the currently held
    /// deployment at the same instant. `None` grants the request;
    /// `Some(until)` defers it — the actor waits (holding its current
    /// deployment idle, billed) until `until` and re-decides.
    fn request_transient(&mut self, t: f64, workers: usize, releasing: usize) -> Option<f64>;
}

/// Grants every request: the single-job runner's control, equivalent to
/// an unbounded fleet.
pub(crate) struct UnlimitedCapacity;

impl CapacityControl for UnlimitedCapacity {
    fn request_transient(&mut self, _t: f64, _workers: usize, _releasing: usize) -> Option<f64> {
        None
    }
}

/// The single-job decision loop rehosted as a steppable event-queue
/// actor. One [`JobActor::step`] call executes exactly one iteration of
/// the legacy `run_job_observed` loop — decide → maybe (re)deploy → one
/// compute chunk — emitting the identical events in the identical order
/// and performing the identical f64 operations, so the legacy driver
/// below and the fleet scheduler replay bit-identical runs. The actor's
/// clock `t` only moves forward at step boundaries, and every billed
/// interval ends at or before the clock, so a fleet can interleave many
/// actors in ascending-clock order without ever rolling one back.
pub(crate) struct JobActor<'a> {
    setup: &'a SimulationSetup<'a>,
    job: &'a JobDescription,
    strategy: &'a dyn Strategy,
    start: f64,
    run: u32,
    horizon: f64,
    t: f64,
    w: f64,
    ledger: CostLedger,
    held: Option<Held>,
    first_load_done: bool,
    evictions: usize,
    deployments: usize,
    events: usize,
    force_lrc: bool,
    last_stuck_pick: Option<usize>,
    billed: f64,
    hook: Option<FaultHook>,
    save_retry_factor: f64,
    lifetime_salt: u64,
    outcome: Option<JobOutcome>,
}

impl<'a> JobActor<'a> {
    /// Creates an actor for one job starting at absolute trace time
    /// `start`, with events stamped with run index `run`.
    pub(crate) fn new(
        setup: &'a SimulationSetup<'a>,
        job: &'a JobDescription,
        strategy: &'a dyn Strategy,
        start: f64,
        run: u32,
    ) -> Result<Self> {
        if start < 0.0 || start >= setup.market.horizon() {
            return Err(SimError::InvalidParameter(format!(
                "start {start} outside market horizon"
            )));
        }
        // Fault state: one run-keyed hook per job, so interleaved sweep
        // runs draw independent but individually reproducible fault
        // streams.
        let hook = setup
            .fault_plan
            .as_ref()
            .map(|p| FaultHook::for_run(p, run));
        // Flaky checkpoint stores stretch expected save time; strategies
        // see it as the retry-tail inflation factor p/(1−p).
        let save_retry_factor = setup
            .fault_plan
            .as_ref()
            .map(|p| p.retry_factor(Site::StorePut))
            .unwrap_or(0.0);
        Ok(JobActor {
            setup,
            job,
            strategy,
            start,
            run,
            horizon: setup.market.horizon(),
            t: start,
            w: 1.0,
            ledger: CostLedger::new(),
            held: None,
            first_load_done: false,
            evictions: 0,
            deployments: 0,
            events: 0,
            force_lrc: false,
            last_stuck_pick: None,
            billed: 0.0,
            hook,
            save_retry_factor,
            lifetime_salt: 0,
            outcome: None,
        })
    }

    /// Seeds the actor with warm state shared from an earlier job of the
    /// same tenant: `held` hands over a still-live deployment (boot and
    /// load skipped when the first decision re-picks it), and
    /// `shards_cached` marks the tenant's clustered shards as already in
    /// the datastore, so even a cold acquire pays the reload path instead
    /// of the first text-store ingest.
    pub(crate) fn with_warm_state(mut self, held: Option<Held>, shards_cached: bool) -> Self {
        self.held = held;
        if shards_cached || self.held.is_some() {
            self.first_load_done = true;
        }
        self
    }

    /// Decorrelates ground-truth lifetime draws across fleet tenants
    /// sharing one run index (0 = the legacy single-job stream).
    pub(crate) fn with_lifetime_salt(mut self, salt: u64) -> Self {
        self.lifetime_salt = salt;
        self
    }

    /// The actor's simulation clock (absolute trace time).
    pub(crate) fn now(&self) -> f64 {
        self.t
    }

    /// Work fraction remaining.
    pub(crate) fn work_left(&self) -> f64 {
        self.w
    }

    /// The held deployment, if any.
    pub(crate) fn held(&self) -> Option<Held> {
        self.held
    }

    /// Consumes the actor, returning the outcome of a finished run.
    pub(crate) fn into_outcome(self) -> JobOutcome {
        self.outcome.expect("actor stepped to completion")
    }

    fn emit(&self, sink: &mut dyn EventSink, event: SimEvent) {
        sink.record(self.run, &event);
    }

    fn finish(&mut self, outcome: JobOutcome, sink: &mut dyn EventSink) {
        self.emit(
            sink,
            SimEvent::Complete {
                t: self.t,
                work_left: self.w,
                billed: self.billed,
                finish_seconds: outcome.finish_time,
                deadline: self.job.deadline,
                cost: outcome.cost,
                online_cost: outcome.online_cost,
                missed_deadline: outcome.missed_deadline,
                completed: outcome.completed,
                evictions: outcome.evictions,
                deployments: outcome.deployments,
            },
        );
        self.outcome = Some(outcome);
    }

    /// Forcibly releases the held deployment at the actor's current clock
    /// — the fleet scheduler sacrificing `victim`'s deployment to another
    /// tenant. Billing needs no adjustment: every interval is billed
    /// through the clock by the step that advanced it. The next step
    /// re-decides and redeploys (or bails to the last resort).
    pub(crate) fn revoke(&mut self, victim: u32, sink: &mut dyn EventSink) {
        let Some(h) = self.held.take() else { return };
        self.emit(
            sink,
            SimEvent::Preempt {
                t: self.t,
                work_left: self.w,
                billed: self.billed,
                victim,
                pick: h.idx,
            },
        );
        self.evictions += 1;
        self.emit(
            sink,
            SimEvent::Evict {
                t: self.t,
                work_left: self.w,
                billed: self.billed,
                pick: h.idx,
                phase: Phase::Preempted,
            },
        );
    }

    /// Bills a warm deployment handed over by the fleet across the idle
    /// gap `[from, start)`, evicting it (warmth lost, shard cache kept)
    /// if its market crosses the bid or its lifetime ends mid-gap.
    pub(crate) fn bill_idle_handoff(&mut self, from: f64, sink: &mut dyn EventSink) -> Result<()> {
        self.wait_on_held(from, self.start, sink)
    }

    /// Executes one iteration of the decision loop. Returns `true` when
    /// the run finished (the outcome is stored and a
    /// [`SimEvent::Complete`] was emitted).
    pub(crate) fn step(
        &mut self,
        sink: &mut dyn EventSink,
        ctrl: &mut dyn CapacityControl,
    ) -> Result<bool> {
        if self.outcome.is_some() {
            return Ok(true);
        }
        self.events += 1;
        if self.events > self.setup.max_events {
            return Err(SimError::RunawayJob {
                events: self.events,
            });
        }
        if self.w <= 1e-9 {
            let finish_time = self.t - self.start;
            let outcome = JobOutcome {
                cost: self.ledger.total() + self.job.offline_cost,
                online_cost: self.ledger.total(),
                finish_time,
                missed_deadline: finish_time > self.job.deadline + 1e-6,
                evictions: self.evictions,
                deployments: self.deployments,
                completed: true,
            };
            self.finish(outcome, sink);
            return Ok(true);
        }
        if self.t >= self.horizon {
            // Ran off the end of the trace: report as incomplete.
            let outcome = JobOutcome {
                cost: self.ledger.total() + self.job.offline_cost,
                online_cost: self.ledger.total(),
                finish_time: self.t - self.start,
                missed_deadline: true,
                evictions: self.evictions,
                deployments: self.deployments,
                completed: false,
            };
            self.finish(outcome, sink);
            return Ok(true);
        }

        // Decision point.
        let candidates = build_candidates(
            self.setup,
            self.job,
            self.t,
            self.first_load_done,
            self.held.map(|h| h.idx),
        )?;
        let ctx = DecisionContext {
            now: self.t - self.start,
            deadline: self.job.deadline,
            work_left: self.w,
            t_boot: self.job.t_boot,
            candidates: &candidates,
            current: self.held.map(|h| CurrentDeployment {
                index: h.idx,
                uptime: self.t - h.acquired,
            }),
            save_retry_factor: self.save_retry_factor,
        };
        // Wall-clock decision latency is telemetry, not simulation state:
        // it goes straight into a nondeterministic metrics family and
        // never touches the (bit-compared) event stream.
        let decide_started = hm::enabled().then(Instant::now);
        let (pick, forced) = if self.force_lrc {
            self.force_lrc = false;
            (self.job.lrc()?, true)
        } else {
            (self.strategy.decide(&ctx)?.pick, false)
        };
        if let Some(started) = decide_started {
            hm::observe(&M_DECIDE_WALL_SECONDS, &[], started.elapsed().as_secs_f64());
        }
        let perf = self.job.configs[pick];
        let bid = perf.config.on_demand_rate() / perf.config.num_workers as f64;

        // (Re)deploy if the pick differs from the held deployment.
        let continuing = matches!(self.held, Some(h) if h.idx == pick);
        self.emit(
            sink,
            SimEvent::Decide {
                t: self.t,
                work_left: self.w,
                billed: self.billed,
                pick,
                continuation: continuing,
                forced,
                slack: self.job.deadline - (self.t - self.start),
            },
        );
        if !continuing {
            let mut acquire_at = self.t;
            if perf.config.is_transient() {
                // Spot requests are fulfilled when the market clears at or
                // below the bid. While the request is pending, the held
                // deployment (if any) stays up — idle, but billed — so a
                // strategy that re-picks it once the spike passes continues
                // where it left off instead of paying a fresh boot + load.
                let trace = self.setup.market.trace(perf.config.instance_type)?;
                match trace.next_at_or_below(self.t, bid) {
                    Some(ta) if ta <= self.t + 1e-9 => acquire_at = self.t,
                    Some(ta) => {
                        // Market is in a spike: wait in bounded steps,
                        // re-deciding each time so deadline-aware
                        // strategies can bail to the lrc as slack burns.
                        let resume_at = ta.min(self.t + 300.0);
                        self.emit(
                            sink,
                            SimEvent::SpikeWait {
                                t: self.t,
                                work_left: self.w,
                                billed: self.billed,
                                pick,
                                resume_at,
                                held: self.held.map(|h| h.idx),
                            },
                        );
                        self.wait_on_held(self.t, resume_at, sink)?;
                        self.t = resume_at;
                        return Ok(false);
                    }
                    None => {
                        // Market never returns within the trace: fall back
                        // to the last-resort configuration.
                        let resume_at = self.t + 60.0;
                        self.emit(
                            sink,
                            SimEvent::SpikeWait {
                                t: self.t,
                                work_left: self.w,
                                billed: self.billed,
                                pick,
                                resume_at,
                                held: self.held.map(|h| h.idx),
                            },
                        );
                        self.wait_on_held(self.t, resume_at, sink)?;
                        self.t = resume_at;
                        self.force_lrc = true;
                        return Ok(false);
                    }
                }
                // Fleet seam: the market clears, but the shared fleet may
                // be out of machines. A deferred request behaves exactly
                // like a spike wait — the held deployment idles, billed —
                // so capacity pressure burns slack the same way price
                // spikes do and deadline-aware strategies bail in time.
                let releasing = match self.held {
                    Some(h) if self.job.configs[h.idx].config.is_transient() => {
                        self.job.configs[h.idx].config.num_workers as usize
                    }
                    _ => 0,
                };
                if let Some(until) =
                    ctrl.request_transient(acquire_at, perf.config.num_workers as usize, releasing)
                {
                    self.emit(
                        sink,
                        SimEvent::SpikeWait {
                            t: self.t,
                            work_left: self.w,
                            billed: self.billed,
                            pick,
                            resume_at: until,
                            held: self.held.map(|h| h.idx),
                        },
                    );
                    self.wait_on_held(self.t, until, sink)?;
                    self.t = until;
                    return Ok(false);
                }
            }
            // The replacement is available now: only at this point is the
            // old deployment released (it was billed through `t` by the
            // compute/wait intervals that got us here).
            let released = self.held.take().map(|h| h.idx);
            self.deployments += 1;
            let dies_at = if perf.config.is_transient() {
                self.setup.lifetime_dies_at(
                    perf.config.instance_type,
                    acquire_at,
                    self.run,
                    self.deployments,
                    self.lifetime_salt,
                )?
            } else {
                f64::INFINITY
            };
            let full_load = if self.first_load_done {
                perf.t_load_reload
            } else {
                perf.t_load_first
            };
            // A voluntary switch away from a still-live deployment is a
            // delta migration: only the rehomed micro-partitions are
            // re-shipped (§6.2). Recovery after an eviction (`released`
            // is `None`) pays the full reload from the datastore.
            let migration = released.filter(|_| self.first_load_done).map(|from| {
                let fraction = crate::job::delta_reload_fraction(&self.job.configs[from], &perf);
                (from, fraction, fraction * perf.t_load_reload)
            });
            let load_time = migration.map(|(_, _, d)| d).unwrap_or(full_load);
            let mut setup_time = self.job.t_boot + load_time;
            // Fault seam: the (re)load's datastore reads. A fast reload
            // consults the shard-read site; the first load, the text
            // store. Transient faults stretch the setup by their retry
            // backoff; a fast reload whose shards stay unreadable falls
            // back to re-assembling from the text store (the full first
            // load, again) — wasted setup an eviction can land inside.
            let mut load_degraded: Option<(u32, bool, f64)> = None;
            if let Some(hook) = self.hook.as_ref() {
                let site = if self.first_load_done {
                    Site::ShardRead
                } else {
                    Site::StoreGet
                };
                let c = hook.consult(site);
                if c.retries > 0 || c.torn.is_some() || c.delay_ns > 0 || c.exhausted {
                    let mut extra = c.delay_ns as f64 / 1e9;
                    let mut fallback = false;
                    if c.exhausted || c.torn.is_some() {
                        // Fast path abandoned: pay the slow load on top of
                        // the partial attempt (first loads re-read the
                        // store wholesale).
                        extra += perf.t_load_first;
                        fallback = true;
                    }
                    setup_time += extra;
                    load_degraded = Some((c.retries, fallback, extra));
                }
            }
            self.emit(
                sink,
                SimEvent::Acquire {
                    t: acquire_at,
                    work_left: self.w,
                    billed: self.billed,
                    pick,
                    setup_seconds: setup_time,
                    first_load: !self.first_load_done,
                    released,
                },
            );
            if let Some((from, fraction, delta_seconds)) = migration {
                self.emit(
                    sink,
                    SimEvent::Migrate {
                        t: acquire_at,
                        work_left: self.w,
                        billed: self.billed,
                        pick,
                        from,
                        moved_fraction: fraction,
                        delta_seconds,
                        full_seconds: perf.t_load_reload,
                    },
                );
            }
            if let Some((retries, fallback, wasted)) = load_degraded {
                self.emit(
                    sink,
                    SimEvent::Degraded {
                        t: acquire_at,
                        work_left: self.w,
                        billed: self.billed,
                        pick,
                        retries,
                        fallback,
                        wasted_seconds: wasted,
                    },
                );
            }
            let setup_end = acquire_at + setup_time;
            if perf.config.is_transient() {
                let trace = self.setup.market.trace(perf.config.instance_type)?;
                let te = match trace.next_crossing_above(acquire_at, bid) {
                    Some(c) => c.min(dies_at),
                    None => dies_at,
                };
                if te < setup_end && te < self.horizon {
                    // Evicted while booting/loading: no progress.
                    self.bill(&perf, pick, acquire_at, te, sink)?;
                    self.evictions += 1;
                    self.emit(
                        sink,
                        SimEvent::Evict {
                            t: te,
                            work_left: self.w,
                            billed: self.billed,
                            pick,
                            phase: Phase::Setup,
                        },
                    );
                    self.t = te;
                    return Ok(false);
                }
            }
            if setup_end >= self.horizon {
                self.bill(&perf, pick, acquire_at, self.horizon, sink)?;
                self.t = self.horizon;
                return Ok(false);
            }
            self.bill(&perf, pick, acquire_at, setup_end, sink)?;
            self.held = Some(Held {
                idx: pick,
                acquired: acquire_at,
                dies_at,
            });
            self.first_load_done = true;
            self.t = setup_end;
        }

        // Compute phase.
        if !perf.config.is_transient() {
            // On-demand: run to completion (checkpointing disabled), then
            // store the output.
            let end = self.t + self.w * perf.t_exec + perf.t_save;
            let end_clamped = end.min(self.horizon);
            self.bill(&perf, pick, self.t, end_clamped, sink)?;
            if end > self.horizon {
                self.t = self.horizon;
                return Ok(false);
            }
            self.t = end;
            self.w = 0.0;
            return Ok(false);
        }

        // Transient: one checkpointed chunk.
        let h = self
            .held
            .expect("transient compute requires a held deployment");
        let eviction_model = self.setup.eviction_model(perf.config.instance_type)?;
        let t_ckpt = self.setup.checkpoint_interval_override.unwrap_or_else(|| {
            hourglass_core::checkpoint::daly_interval(perf.t_save, eviction_model.mttf())
        });
        // When the deployment continued, `t` has not moved since the
        // decision; reuse the candidate set instead of rebuilding.
        let candidates2 = if continuing {
            candidates
        } else {
            build_candidates(
                self.setup,
                self.job,
                self.t,
                self.first_load_done,
                Some(h.idx),
            )?
        };
        let ctx2 = DecisionContext {
            now: self.t - self.start,
            deadline: self.job.deadline,
            work_left: self.w,
            t_boot: self.job.t_boot,
            candidates: &candidates2,
            current: Some(CurrentDeployment {
                index: h.idx,
                uptime: self.t - h.acquired,
            }),
            save_retry_factor: self.save_retry_factor,
        };
        let mut chunk = (self.w * perf.t_exec).min(t_ckpt);
        if let Some(limit) = self.strategy.chunk_limit(&ctx2, pick) {
            chunk = chunk.min(limit);
        }
        if chunk <= 0.0 {
            // The strategy's own chunk bound says no safe progress is
            // possible here; it must pick something else on the next
            // decision. Guard against livelock on a repeated unsafe pick.
            if self.last_stuck_pick == Some(pick) {
                self.force_lrc = true;
            }
            self.last_stuck_pick = Some(pick);
            return Ok(false);
        }
        self.last_stuck_pick = None;
        let interval_end = self.t + chunk + perf.t_save;
        let trace = self.setup.market.trace(perf.config.instance_type)?;
        let eviction_time = match trace.next_crossing_above(self.t, bid) {
            Some(c) => c.min(h.dies_at),
            None => h.dies_at,
        };
        let evicted_at = (eviction_time < interval_end.min(self.horizon)).then_some(eviction_time);
        match evicted_at {
            Some(te) => {
                // §9 extension: a warning of at least t_save lets the
                // engine keep computing and still checkpoint right before
                // the reclaim, so only the final t_save of the interval's
                // progress is lost (without a warning the whole interval
                // is).
                if self.setup.eviction_warning >= perf.t_save {
                    let computed = (te - perf.t_save - self.t).clamp(0.0, chunk);
                    self.w = (self.w - computed / perf.t_exec).max(0.0);
                }
                self.bill(&perf, pick, self.t, te, sink)?;
                self.evictions += 1;
                self.held = None;
                self.emit(
                    sink,
                    SimEvent::Evict {
                        t: te,
                        work_left: self.w,
                        billed: self.billed,
                        pick,
                        phase: Phase::Compute,
                    },
                );
                self.t = te;
            }
            None => {
                // Fault seam: the checkpoint put. Transient failures are
                // retried (the save stretches by their backoff); a torn
                // write models a reclaim landing mid-save (the chunk's
                // progress is lost with the uncommitted epoch); exhausted
                // retries lose the checkpoint but keep the deployment.
                let consult = self.hook.as_ref().map(|h| h.consult(Site::StorePut));
                if let Some(fraction) = consult.as_ref().and_then(|c| c.torn) {
                    let te = (self.t + chunk + fraction * perf.t_save).min(self.horizon);
                    self.bill(&perf, pick, self.t, te, sink)?;
                    self.evictions += 1;
                    self.held = None;
                    self.emit(
                        sink,
                        SimEvent::Degraded {
                            t: te,
                            work_left: self.w,
                            billed: self.billed,
                            pick,
                            retries: consult.map(|c| c.retries).unwrap_or(0),
                            fallback: true,
                            wasted_seconds: te - self.t,
                        },
                    );
                    self.emit(
                        sink,
                        SimEvent::Evict {
                            t: te,
                            work_left: self.w,
                            billed: self.billed,
                            pick,
                            phase: Phase::Compute,
                        },
                    );
                    self.t = te;
                    return Ok(false);
                }
                let save_extra = consult
                    .as_ref()
                    .map(|c| c.delay_ns as f64 / 1e9)
                    .unwrap_or(0.0);
                let interval_end = interval_end + save_extra;
                if interval_end >= self.horizon {
                    self.bill(&perf, pick, self.t, self.horizon, sink)?;
                    self.t = self.horizon;
                    return Ok(false);
                }
                self.bill(&perf, pick, self.t, interval_end, sink)?;
                let checkpoint_lost = consult.as_ref().map(|c| c.exhausted).unwrap_or(false);
                if checkpoint_lost {
                    // Every put attempt failed: the interval is billed but
                    // its progress never committed.
                    self.emit(
                        sink,
                        SimEvent::Degraded {
                            t: interval_end,
                            work_left: self.w,
                            billed: self.billed,
                            pick,
                            retries: consult.map(|c| c.retries).unwrap_or(0),
                            fallback: true,
                            wasted_seconds: interval_end - self.t,
                        },
                    );
                    self.t = interval_end;
                    return Ok(false);
                }
                self.w = (self.w - chunk / perf.t_exec).max(0.0);
                if let Some(c) = consult.filter(|c| c.retries > 0 || c.delay_ns > 0) {
                    self.emit(
                        sink,
                        SimEvent::Degraded {
                            t: interval_end,
                            work_left: self.w,
                            billed: self.billed,
                            pick,
                            retries: c.retries,
                            fallback: false,
                            wasted_seconds: save_extra,
                        },
                    );
                }
                self.emit(
                    sink,
                    SimEvent::Checkpoint {
                        t: interval_end,
                        work_left: self.w,
                        billed: self.billed,
                        pick,
                        chunk_seconds: chunk,
                    },
                );
                self.t = interval_end;
            }
        }
        Ok(false)
    }

    /// Bills the held deployment while it sits idle through a wait on
    /// `[from, until)`, evicting it if its own market crosses the bid
    /// first.
    fn wait_on_held(&mut self, from: f64, until: f64, sink: &mut dyn EventSink) -> Result<()> {
        let Some(h) = self.held else { return Ok(()) };
        let perf = self.job.configs[h.idx];
        let until = until.min(self.horizon);
        if until <= from {
            return Ok(());
        }
        if perf.config.is_transient() {
            let bid = perf.config.on_demand_rate() / perf.config.num_workers as f64;
            let trace = self.setup.market.trace(perf.config.instance_type)?;
            let eviction_time = match trace.next_crossing_above(from, bid) {
                Some(c) => c.min(h.dies_at),
                None => h.dies_at,
            };
            if let Some(te) = (eviction_time < until).then_some(eviction_time) {
                // The idle deployment is reclaimed mid-wait. Nothing beyond
                // the last checkpoint is lost (`w` already reflects it).
                self.bill(&perf, h.idx, from, te, sink)?;
                self.evictions += 1;
                self.held = None;
                self.emit(
                    sink,
                    SimEvent::Evict {
                        t: te,
                        work_left: self.w,
                        billed: self.billed,
                        pick: h.idx,
                        phase: Phase::Wait,
                    },
                );
                return Ok(());
            }
        }
        self.bill(&perf, h.idx, from, until, sink)?;
        Ok(())
    }

    fn bill(
        &mut self,
        perf: &crate::job::ConfigPerf,
        pick: usize,
        from: f64,
        to: f64,
        sink: &mut dyn EventSink,
    ) -> Result<()> {
        if to > from {
            let cost = self
                .ledger
                .bill(self.setup.market, &perf.config, from, to)?;
            self.billed += cost;
            self.emit(
                sink,
                SimEvent::Bill {
                    t: from,
                    to,
                    work_left: self.w,
                    billed: self.billed,
                    pick,
                    cost,
                },
            );
        }
        Ok(())
    }
}

/// Runs one job to completion over the market trace, starting at absolute
/// trace time `start`.
pub fn run_job(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    strategy: &dyn Strategy,
    start: f64,
) -> Result<JobOutcome> {
    run_job_observed(setup, job, strategy, start, 0, &mut NullSink)
}

/// [`run_job`] with every decision-loop transition reported to `sink`,
/// stamped with run index `run` (sweeps use it to keep interleaved runs
/// apart; standalone callers can pass 0). A thin driver over
/// [`JobActor`]: it steps the actor to completion with unlimited
/// capacity, which is the exact legacy single-job loop.
pub fn run_job_observed(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    strategy: &dyn Strategy,
    start: f64,
    run: u32,
    sink: &mut dyn EventSink,
) -> Result<JobOutcome> {
    let mut actor = JobActor::new(setup, job, strategy, start, run)?;
    let mut ctrl = UnlimitedCapacity;
    while !actor.step(sink, &mut ctrl)? {}
    Ok(actor.into_outcome())
}

/// Builds the candidate set a strategy would see at absolute trace time
/// `t` (exposed for the Figure 9 decision-time experiment and for custom
/// drivers).
pub fn build_decision_candidates(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    t: f64,
    first_load_done: bool,
) -> Result<Vec<Candidate>> {
    build_candidates(setup, job, t, first_load_done, None)
}

fn build_candidates(
    setup: &SimulationSetup<'_>,
    job: &JobDescription,
    t: f64,
    first_load_done: bool,
    held_idx: Option<usize>,
) -> Result<Vec<Candidate>> {
    job.configs
        .iter()
        .map(|perf| {
            let price_rate = match perf.config.class {
                ResourceClass::OnDemand => perf.config.on_demand_rate(),
                ResourceClass::Transient => {
                    // The true market price: during a spike this exceeds
                    // the on-demand rate, which correctly makes the
                    // (currently unavailable) market unattractive.
                    let trace = setup.market.trace(perf.config.instance_type)?;
                    trace.price_at(t.min(trace.horizon() - 1.0))? * perf.config.num_workers as f64
                }
            };
            let eviction: DynEviction = match perf.config.class {
                ResourceClass::OnDemand => Arc::new(eviction::reliable()),
                ResourceClass::Transient => {
                    setup.eviction_model(perf.config.instance_type)?.clone()
                }
            };
            let t_load = if first_load_done {
                perf.t_load_reload
            } else {
                perf.t_load_first
            };
            // While a deployment is held, a switch to this candidate ships
            // only the rehomed micro-partitions; `effective_load` charges
            // this instead of `t_load` when the context carries a current
            // deployment.
            let t_load_delta = match held_idx {
                Some(h) if first_load_done => {
                    crate::job::delta_reload_fraction(&job.configs[h], perf) * perf.t_load_reload
                }
                _ => t_load,
            };
            Ok(Candidate {
                config: perf.config,
                t_exec: perf.t_exec,
                t_load,
                t_load_delta,
                t_save: perf.t_save,
                price_rate,
                eviction,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{PaperJob, ReloadMode};
    use hourglass_cloud::tracegen;
    use hourglass_core::strategies::{
        DeadlineProtected, EagerStrategy, HourglassStrategy, OnDemandStrategy,
    };

    struct Fixture {
        market: hourglass_cloud::Market,
        models: Vec<(InstanceType, DynEviction)>,
    }

    fn fixture(seed: u64) -> Fixture {
        let market = tracegen::simulation_market(seed).expect("market");
        let history = tracegen::history_market(seed).expect("market");
        let models = derive_eviction_models(&history, 24.0 * 3600.0, 500, 17).expect("models");
        Fixture { market, models }
    }

    #[test]
    fn on_demand_run_matches_baseline_shape() {
        let f = fixture(1);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::PageRank
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let out = run_job(&setup, &job, &OnDemandStrategy, 0.0).expect("run");
        assert!(out.completed);
        assert!(!out.missed_deadline);
        assert_eq!(out.evictions, 0);
        assert_eq!(out.deployments, 1);
        // Cost close to the baseline (the run additionally bills boot
        // time, the baseline does not).
        let baseline = job.on_demand_baseline_cost().expect("baseline");
        assert!(
            out.online_cost >= baseline && out.online_cost < baseline * 1.2,
            "online {} vs baseline {baseline}",
            out.online_cost
        );
    }

    #[test]
    fn hourglass_never_misses_across_starts() {
        let f = fixture(2);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let horizon = f.market.horizon();
        let mut starts = Vec::new();
        let mut s = 0.0;
        while s < horizon - 3.0 * job.deadline {
            starts.push(s);
            s += horizon / 24.0;
        }
        for &start in &starts {
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            assert!(
                out.completed && !out.missed_deadline,
                "Hourglass missed at start {start}: finish {} vs deadline {}",
                out.finish_time,
                job.deadline
            );
        }
    }

    #[test]
    fn hourglass_cheaper_than_on_demand_on_average() {
        let f = fixture(3);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let hg = HourglassStrategy::new();
        let mut hg_total = 0.0;
        let mut od_total = 0.0;
        for i in 0..8 {
            let start = i as f64 * 2.0 * 86_400.0;
            hg_total += run_job(&setup, &job, &hg, start).expect("run").online_cost;
            od_total += run_job(&setup, &job, &OnDemandStrategy, start)
                .expect("run")
                .online_cost;
        }
        assert!(
            hg_total < 0.8 * od_total,
            "Hourglass {hg_total:.2} should significantly undercut on-demand {od_total:.2}"
        );
    }

    #[test]
    fn eager_misses_deadlines_sometimes() {
        let f = fixture(4);
        let setup = SimulationSetup::new(&f.market, &f.models);
        // Tight slack makes the eager strategy's obliviousness visible.
        let job = PaperJob::GraphColoring
            .description(20.0, ReloadMode::Fast)
            .expect("job");
        let mut missed = 0;
        let mut runs = 0;
        for i in 0..12 {
            let start = i as f64 * 2.0 * 86_400.0;
            if start >= f.market.horizon() - 3.0 * job.deadline {
                break;
            }
            let out = run_job(&setup, &job, &EagerStrategy, start).expect("run");
            runs += 1;
            if out.missed_deadline {
                missed += 1;
            }
        }
        assert!(runs > 5);
        assert!(
            missed > 0,
            "eager should miss at least one deadline out of {runs} tight runs"
        );
    }

    #[test]
    fn dp_wrapper_rescues_eager() {
        let f = fixture(5);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::GraphColoring
            .description(30.0, ReloadMode::Fast)
            .expect("job");
        let strategy = DeadlineProtected::new(EagerStrategy);
        for i in 0..10 {
            let start = i as f64 * 2.3 * 86_400.0;
            if start >= f.market.horizon() - 3.0 * job.deadline {
                break;
            }
            let out = run_job(&setup, &job, &strategy, start).expect("run");
            assert!(
                !out.missed_deadline,
                "SpotOn+DP missed at start {start}: finish {}",
                out.finish_time
            );
        }
    }

    #[test]
    fn rejects_bad_start() {
        let f = fixture(6);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        assert!(run_job(&setup, &job, &OnDemandStrategy, -5.0).is_err());
        assert!(run_job(&setup, &job, &OnDemandStrategy, 1e12).is_err());
    }

    mod spike_wait {
        use super::*;
        use crate::events::VecSink;
        use crate::job::ConfigPerf;
        use hourglass_cloud::config::DeploymentConfig;
        use hourglass_cloud::PriceTrace;
        use hourglass_core::Decision;
        use std::sync::atomic::{AtomicUsize, Ordering};

        const STEP: f64 = 60.0;
        const POINTS: usize = 2000;
        /// First instant config B's market drops back below its bid.
        const B_RECOVERS: f64 = 20_040.0;

        /// Synthetic market: config A's type (r4.2xlarge) cheap throughout
        /// except an optional mid-trace spike; config B's type (r4.4xlarge)
        /// spiked until [`B_RECOVERS`]; everything else flat and cheap.
        fn market(a_spike: Option<(f64, f64)>) -> Market {
            let traces = InstanceType::ALL
                .iter()
                .map(|&ty| {
                    let prices: Vec<f64> = (0..POINTS)
                        .map(|i| {
                            let t = i as f64 * STEP;
                            match ty {
                                InstanceType::R44xlarge if t < B_RECOVERS => 10.0,
                                InstanceType::R44xlarge => 0.2,
                                InstanceType::R42xlarge => match a_spike {
                                    Some((from, to)) if t >= from && t < to => 1.0,
                                    _ => 0.1,
                                },
                                _ => 0.1,
                            }
                        })
                        .collect();
                    (ty, PriceTrace::new(STEP, prices).expect("trace"))
                })
                .collect();
            Market::new(traces).expect("market")
        }

        fn reliable_models() -> Vec<(InstanceType, DynEviction)> {
            InstanceType::ALL
                .iter()
                .map(|&ty| (ty, Arc::new(eviction::reliable()) as DynEviction))
                .collect()
        }

        fn perf(config: DeploymentConfig, t_exec: f64) -> ConfigPerf {
            ConfigPerf {
                config,
                t_exec,
                t_load_first: 100.0,
                t_load_reload: 100.0,
                t_save: 10.0,
            }
        }

        /// Configs: 0 = A (spot r4.2xlarge), 1 = B (spot r4.4xlarge),
        /// 2 = lrc (on-demand r4.8xlarge).
        fn job() -> JobDescription {
            JobDescription {
                name: "spike-wait".into(),
                deadline: 20_000.0,
                t_boot: 60.0,
                configs: vec![
                    perf(
                        DeploymentConfig::new(InstanceType::R42xlarge, 4, ResourceClass::Transient),
                        4000.0,
                    ),
                    perf(
                        DeploymentConfig::new(InstanceType::R44xlarge, 4, ResourceClass::Transient),
                        2000.0,
                    ),
                    perf(
                        DeploymentConfig::new(InstanceType::R48xlarge, 2, ResourceClass::OnDemand),
                        1000.0,
                    ),
                ],
                offline_cost: 0.0,
            }
        }

        /// Picks B on its `tempted_call`-th decision, A otherwise: one
        /// doomed attempt to switch into B's spiked market.
        struct TemptedByB {
            calls: AtomicUsize,
            tempted_call: usize,
        }

        impl Strategy for TemptedByB {
            fn name(&self) -> String {
                "tempted-by-b".into()
            }

            fn decide(&self, _ctx: &DecisionContext<'_>) -> hourglass_core::Result<Decision> {
                let n = self.calls.fetch_add(1, Ordering::SeqCst);
                Ok(Decision {
                    pick: if n == self.tempted_call { 1 } else { 0 },
                })
            }
        }

        /// The regression this guards: the runner used to drop the held
        /// deployment *before* the replacement's spot request was
        /// fulfilled, so re-picking the old configuration after a spike
        /// wait was treated as a fresh deployment and paid boot + reload
        /// again. With the fix the deployment is kept (idle, billed)
        /// through the wait and the re-pick continues it.
        #[test]
        fn repick_after_spike_wait_continues_held_deployment() {
            let market = market(None);
            let models = reliable_models();
            let mut setup = SimulationSetup::new(&market, &models);
            setup.checkpoint_interval_override = Some(500.0);
            let strategy = TemptedByB {
                calls: AtomicUsize::new(0),
                tempted_call: 1,
            };
            let mut sink = VecSink::new();
            let out = run_job_observed(&setup, &job(), &strategy, 0.0, 0, &mut sink).expect("run");

            // One acquisition, kept across the wait: no second boot+load.
            assert!(out.completed && !out.missed_deadline);
            assert_eq!(out.deployments, 1, "re-pick must not redeploy");
            assert_eq!(out.evictions, 0);
            // Timeline: setup [0,160), chunk to 670, one 300 s wait step
            // for B, then 7 more 510 s chunks on the continued deployment.
            // The old code re-deployed at 970 and finished 160 s later.
            assert!(
                (out.finish_time - 4540.0).abs() < 1.0,
                "finish {} should be 4540 (re-deploying would give 4700)",
                out.finish_time
            );

            let acquires: Vec<_> = sink
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    SimEvent::Acquire { t, first_load, .. } => Some((*t, *first_load)),
                    _ => None,
                })
                .collect();
            assert_eq!(acquires, vec![(0.0, true)]);
            let waits: Vec<_> = sink
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    SimEvent::SpikeWait { t, pick, held, .. } => Some((*t, *pick, *held)),
                    _ => None,
                })
                .collect();
            assert_eq!(waits, vec![(670.0, 1, Some(0))]);
            // The decision right after the wait continues the held config.
            let post_wait_decide = sink
                .events
                .iter()
                .find_map(|(_, e)| match e {
                    SimEvent::Decide {
                        t, continuation, ..
                    } if *t > 670.0 => Some(*continuation),
                    _ => None,
                })
                .expect("decision after the wait");
            assert!(post_wait_decide, "re-pick must continue, not redeploy");
            // The wait interval itself is billed: the held machines sit
            // idle but allocated over [670, 970).
            assert!(sink.events.iter().any(|(_, e)| matches!(
                e,
                SimEvent::Bill { t, to, .. } if *t == 670.0 && *to == 970.0
            )));
        }

        /// The held deployment is *not* immortal during a wait: if its own
        /// market crosses the bid while idle, it is evicted (billed to the
        /// eviction instant) and the post-wait re-pick redeploys afresh.
        #[test]
        fn held_deployment_can_be_evicted_during_wait() {
            // A spikes over [720, 1200): inside the wait window [670, 970).
            let market = market(Some((720.0, 1200.0)));
            let models = reliable_models();
            let mut setup = SimulationSetup::new(&market, &models);
            setup.checkpoint_interval_override = Some(500.0);
            let strategy = TemptedByB {
                calls: AtomicUsize::new(0),
                tempted_call: 1,
            };
            let mut sink = VecSink::new();
            let out = run_job_observed(&setup, &job(), &strategy, 0.0, 0, &mut sink).expect("run");

            assert!(out.completed && !out.missed_deadline);
            assert_eq!(out.evictions, 1, "idle eviction must be counted");
            assert_eq!(out.deployments, 2, "post-wait re-pick must redeploy");
            let wait_evicts: Vec<_> = sink
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    SimEvent::Evict { t, pick, phase, .. } if *phase == Phase::Wait => {
                        Some((*t, *pick))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(wait_evicts, vec![(720.0, 0)]);
            // Billed only up to the idle eviction, not the full wait.
            assert!(sink.events.iter().any(|(_, e)| matches!(
                e,
                SimEvent::Bill { t, to, .. } if *t == 670.0 && *to == 720.0
            )));
        }

        /// With a lifetime-cap ground truth, a deployment whose market
        /// never crosses its bid is still revoked — exactly at the cap.
        #[test]
        fn lifetime_cap_ground_truth_evicts_at_cap() {
            let market = market(None);
            let models = reliable_models();
            let mut setup = SimulationSetup::new(&market, &models)
                .with_lifetime(LifetimeGroundTruth::Cap { seconds: 1000.0 });
            setup.checkpoint_interval_override = Some(500.0);
            let strategy = TemptedByB {
                calls: AtomicUsize::new(0),
                tempted_call: usize::MAX,
            };
            let mut sink = VecSink::new();
            let out = run_job_observed(&setup, &job(), &strategy, 0.0, 0, &mut sink).expect("run");
            assert!(out.completed);
            assert!(out.evictions >= 1, "cap must revoke the deployment");
            assert!(out.deployments >= 2, "revocation must force a redeploy");
            let first_evict = sink
                .events
                .iter()
                .find_map(|(_, e)| match e {
                    SimEvent::Evict { t, .. } => Some(*t),
                    _ => None,
                })
                .expect("evict event");
            assert!(
                (first_evict - 1000.0).abs() < 1e-9,
                "first revocation at {first_evict}, expected the 1000 s cap"
            );
        }
    }

    #[test]
    fn faulted_runs_are_deterministic_and_report_degradations() {
        use crate::events::VecSink;
        let f = fixture(8);
        let setup =
            SimulationSetup::new(&f.market, &f.models).with_fault_plan(FaultPlan::io_flaky(1234));
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();

        let mut degraded_total = 0usize;
        for i in 0..6 {
            let start = i as f64 * 2.0 * 86_400.0;
            let run_once = || {
                let mut sink = VecSink::new();
                let out = run_job_observed(&setup, &job, &strategy, start, i, &mut sink)
                    .expect("faulted run");
                (out, sink.events)
            };
            let (a, ea) = run_once();
            let (b, eb) = run_once();
            // Same seed + same plan → bit-identical outcome and stream.
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
            assert_eq!(ea, eb);
            // ≤10% transient I/O must never cost Hourglass its deadline.
            assert!(a.completed && !a.missed_deadline, "missed at start {start}");
            degraded_total += ea
                .iter()
                .filter(|(_, e)| matches!(e, SimEvent::Degraded { .. }))
                .count();
        }
        assert!(
            degraded_total > 0,
            "io-flaky plan should degrade at least one operation across 6 runs"
        );
    }

    #[test]
    fn torn_checkpoint_write_is_a_mid_save_eviction() {
        use crate::events::VecSink;
        let f = fixture(9);
        let plain = SimulationSetup::new(&f.market, &f.models);
        let torn =
            SimulationSetup::new(&f.market, &f.models).with_fault_plan(FaultPlan::torn_writes(7));
        let job = PaperJob::GraphColoring
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();

        let mut saw_torn_eviction = false;
        for i in 0..6 {
            let start = i as f64 * 2.0 * 86_400.0;
            let base = run_job(&plain, &job, &strategy, start).expect("plain run");
            let mut sink = VecSink::new();
            let out =
                run_job_observed(&torn, &job, &strategy, start, i, &mut sink).expect("torn run");
            assert!(out.completed, "torn writes must not wedge the run");
            // Every torn checkpoint is surfaced as a fallback degradation
            // immediately followed by a compute-phase eviction.
            let events = &sink.events;
            for (i, (_, e)) in events.iter().enumerate() {
                if let SimEvent::Degraded {
                    fallback: true,
                    wasted_seconds,
                    ..
                } = e
                {
                    if matches!(
                        events.get(i + 1),
                        Some((
                            _,
                            SimEvent::Evict {
                                phase: Phase::Compute,
                                ..
                            }
                        ))
                    ) {
                        saw_torn_eviction = true;
                        assert!(*wasted_seconds > 0.0);
                    }
                }
            }
            // The faulted run can only do worse or equal on evictions.
            assert!(out.evictions >= base.evictions);
        }
        assert!(
            saw_torn_eviction,
            "every-7th-put torn writes should hit at least one checkpoint"
        );
    }

    #[test]
    fn costs_are_positive_and_ledger_consistent() {
        let f = fixture(7);
        let setup = SimulationSetup::new(&f.market, &f.models);
        let job = PaperJob::PageRank
            .description(80.0, ReloadMode::Fast)
            .expect("job");
        let out = run_job(&setup, &job, &HourglassStrategy::new(), 86_400.0).expect("run");
        assert!(out.online_cost > 0.0);
        assert!(out.cost >= out.online_cost);
        assert!(out.finish_time > 0.0);
    }
}
