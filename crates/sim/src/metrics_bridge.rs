//! Folds decision-loop events into the cross-layer metrics registry.
//!
//! [`MetricsBridge`] is an [`EventSink`] that mirrors every [`SimEvent`]
//! into `hourglass-metrics` families labelled by strategy. Everything it
//! records derives from the event payloads (simulated time, simulated
//! dollars), never from wall clocks, so the folded counters are a pure
//! function of the event stream: a metered sweep produces bit-identical
//! snapshots whether it ran sequentially or in parallel, and metering
//! cannot perturb outcomes. Sweeps replay buffered per-run streams into
//! the caller's sink in ascending run order, which fixes the fold order
//! of the `f64` dollar sums.
//!
//! The one wall-clock quantity of the decision loop — strategy decision
//! latency — deliberately does *not* flow through here; the runner
//! reports it directly into the nondeterministic
//! [`crate::runner::M_DECIDE_WALL_SECONDS`] family.

use crate::events::{EventSink, Phase, SimEvent};
use hourglass_metrics as hm;

/// Strategy decisions folded from `Decide` events.
pub static M_DECISIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_decisions_total",
    help: "Strategy decisions taken.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Decisions that continued the held deployment.
pub static M_CONTINUATIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_continuations_total",
    help: "Decisions that continued the held deployment.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Decisions forced to the last-resort configuration.
pub static M_FORCED_DECISIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_forced_decisions_total",
    help: "Decisions forced to the last-resort configuration.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Spike-wait steps taken while the market sat above the bid.
pub static M_SPIKE_WAITS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_spike_waits_total",
    help: "Spot-request wait steps during market spikes.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Deployments acquired.
pub static M_ACQUISITIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_acquisitions_total",
    help: "Deployments acquired.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Delta migrations between still-live deployments.
pub static M_MIGRATIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_migrations_total",
    help: "Delta migrations between still-live deployments.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Evictions, labelled by the lifecycle phase they hit.
pub static M_EVICTIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_evictions_total",
    help: "Market evictions, by lifecycle phase.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Checkpoints landed.
pub static M_CHECKPOINTS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_checkpoints_total",
    help: "Checkpoints landed.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Fault-injected degradation events.
pub static M_DEGRADATIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_degradations_total",
    help: "Fault-injected degradations of modeled I/O.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Transient faults retried away across all degradations.
pub static M_FAULT_RETRIES: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_fault_retries_total",
    help: "Transient faults retried away in the modeled I/O.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Degradations that abandoned their fast recovery path.
pub static M_FALLBACKS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_fallbacks_total",
    help: "Degradations that fell back to a slower recovery path.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Online dollars billed, folded from `Bill` events.
pub static M_BILLED_DOLLARS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_billed_dollars_total",
    help: "Online dollars billed against the market.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Total dollars (online plus offline), folded from `Complete` events.
pub static M_TOTAL_DOLLARS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_total_dollars_total",
    help: "Total dollars including the offline phase.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Runs completed (one `Complete` event each).
pub static M_RUNS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_runs_total",
    help: "Simulated runs completed.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Runs that missed their deadline.
pub static M_DEADLINE_MISSES: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_deadline_misses_total",
    help: "Runs that missed their deadline.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Runs cut short by the trace horizon.
pub static M_INCOMPLETE_RUNS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_incomplete_runs_total",
    help: "Runs cut short by the trace horizon.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Deadline slack at completion (simulated seconds; negative = missed).
pub static M_DEADLINE_SLACK: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_sim_deadline_slack_seconds",
    help: "Deadline slack remaining at completion (negative = missed).",
    kind: hm::MetricKind::Histogram,
    buckets: hm::SLACK_BUCKETS,
    nondeterministic: false,
};

/// Fleet admission decisions, labelled by outcome.
pub static M_ADMISSIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_fleet_admissions_total",
    help: "Fleet admission decisions, by outcome.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Deployments sacrificed by the fleet scheduler.
pub static M_PREEMPTIONS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_fleet_preemptions_total",
    help: "Deployments sacrificed by the fleet scheduler.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Warm-state share hits across jobs of the same tenant.
pub static M_SHARE_HITS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_fleet_share_hits_total",
    help: "Warm instance / cached shard reuses across tenant jobs.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Per-tenant online dollars billed (fleet runs only).
pub static M_TENANT_BILLED: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_fleet_tenant_billed_dollars_total",
    help: "Online dollars billed, by tenant.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Per-tenant completed runs (fleet runs only).
pub static M_TENANT_RUNS: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_fleet_tenant_runs_total",
    help: "Runs completed, by tenant.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};
/// Per-tenant deadline misses (fleet runs only).
pub static M_TENANT_MISSES: hm::FamilyDesc = hm::FamilyDesc {
    name: "hourglass_fleet_tenant_deadline_misses_total",
    help: "Deadline misses, by tenant.",
    kind: hm::MetricKind::Counter,
    buckets: &[],
    nondeterministic: false,
};

fn phase_label(phase: Phase) -> &'static str {
    match phase {
        Phase::Setup => "setup",
        Phase::Compute => "compute",
        Phase::Wait => "wait",
        Phase::Preempted => "preempted",
    }
}

/// An [`EventSink`] that folds every decision event into the metrics
/// registry, labelled with the strategy under study.
///
/// Records nothing (and allocates nothing) when no
/// [`hourglass_metrics::MetricsSession`] is active, so it is safe to wire
/// unconditionally and gate only on `--metrics` at export time.
#[derive(Debug, Clone)]
pub struct MetricsBridge {
    strategy: String,
    // Label strings are interned per tenant so per-tenant folds don't
    // allocate on every event.
    tenant_labels: std::collections::BTreeMap<u32, String>,
}

impl MetricsBridge {
    /// Creates a bridge labelling every family with `strategy`.
    pub fn new(strategy: impl Into<String>) -> Self {
        MetricsBridge {
            strategy: strategy.into(),
            tenant_labels: std::collections::BTreeMap::new(),
        }
    }
}

impl EventSink for MetricsBridge {
    fn record(&mut self, _run: u32, event: &SimEvent) {
        if !hm::enabled() {
            return;
        }
        let s = self.strategy.as_str();
        let labels: &[(&str, &str)] = &[("strategy", s)];
        match *event {
            SimEvent::Decide {
                continuation,
                forced,
                ..
            } => {
                hm::add(&M_DECISIONS, labels, 1);
                if continuation {
                    hm::add(&M_CONTINUATIONS, labels, 1);
                }
                if forced {
                    hm::add(&M_FORCED_DECISIONS, labels, 1);
                }
            }
            SimEvent::SpikeWait { .. } => hm::add(&M_SPIKE_WAITS, labels, 1),
            SimEvent::Acquire { .. } => hm::add(&M_ACQUISITIONS, labels, 1),
            SimEvent::Migrate { .. } => hm::add(&M_MIGRATIONS, labels, 1),
            SimEvent::Evict { phase, .. } => {
                hm::add(
                    &M_EVICTIONS,
                    &[("strategy", s), ("phase", phase_label(phase))],
                    1,
                );
            }
            SimEvent::Checkpoint { .. } => hm::add(&M_CHECKPOINTS, labels, 1),
            SimEvent::Bill { cost, .. } => hm::addf(&M_BILLED_DOLLARS, labels, cost),
            SimEvent::Degraded {
                retries, fallback, ..
            } => {
                hm::add(&M_DEGRADATIONS, labels, 1);
                hm::add(&M_FAULT_RETRIES, labels, retries as u64);
                if fallback {
                    hm::add(&M_FALLBACKS, labels, 1);
                }
            }
            SimEvent::Complete {
                finish_seconds,
                deadline,
                cost,
                missed_deadline,
                completed,
                ..
            } => {
                hm::add(&M_RUNS, labels, 1);
                if missed_deadline {
                    hm::add(&M_DEADLINE_MISSES, labels, 1);
                }
                if !completed {
                    hm::add(&M_INCOMPLETE_RUNS, labels, 1);
                }
                hm::addf(&M_TOTAL_DOLLARS, labels, cost);
                hm::observe(&M_DEADLINE_SLACK, labels, deadline - finish_seconds);
            }
            SimEvent::Admit { accepted, .. } => {
                let outcome = if accepted { "accepted" } else { "rejected" };
                hm::add(&M_ADMISSIONS, &[("strategy", s), ("outcome", outcome)], 1);
            }
            SimEvent::Preempt { .. } => hm::add(&M_PREEMPTIONS, labels, 1),
            SimEvent::ShareHit { warm, .. } => {
                let kind = if warm {
                    "warm_instance"
                } else {
                    "cached_shards"
                };
                hm::add(&M_SHARE_HITS, &[("strategy", s), ("kind", kind)], 1);
            }
        }
    }

    fn record_tenant(&mut self, run: u32, tenant: u32, event: &SimEvent) {
        self.record(run, event);
        if !hm::enabled() {
            return;
        }
        self.tenant_labels
            .entry(tenant)
            .or_insert_with(|| tenant.to_string());
        let tenant_label = self.tenant_labels[&tenant].as_str();
        let labels: &[(&str, &str)] = &[
            ("strategy", self.strategy.as_str()),
            ("tenant", tenant_label),
        ];
        match *event {
            SimEvent::Bill { cost, .. } => hm::addf(&M_TENANT_BILLED, labels, cost),
            SimEvent::Complete {
                missed_deadline, ..
            } => {
                hm::add(&M_TENANT_RUNS, labels, 1);
                if missed_deadline {
                    hm::add(&M_TENANT_MISSES, labels, 1);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{NullSink, TeeSink, VecSink};
    use crate::job::{PaperJob, ReloadMode};
    use crate::runner::{derive_eviction_models, SimulationSetup};
    use crate::sweep::sweep_jobs;
    use hourglass_cloud::tracegen;
    use hourglass_core::strategies::HourglassStrategy;

    fn swept_snapshot(parallel: bool) -> (hm::Snapshot, Vec<crate::runner::JobOutcome>) {
        let market = tracegen::simulation_market(51).expect("market");
        let history = tracegen::history_market(51).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::PageRank
            .description(60.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let starts: Vec<f64> = (0..8).map(|i| i as f64 * 120_000.0).collect();
        let session = hm::MetricsSession::start();
        let mut bridge = MetricsBridge::new("hourglass");
        let out =
            sweep_jobs(&setup, &job, &strategy, &starts, parallel, &mut bridge).expect("sweep");
        (session.finish(), out)
    }

    /// The simulated-time families fold bit-identically whether the sweep
    /// ran sequentially or in parallel; the wall-clock decide family is
    /// the only nondeterministic one and is excluded from the comparison.
    #[test]
    fn metered_sweep_folds_deterministically() {
        let (seq, out_seq) = swept_snapshot(false);
        let (par, out_par) = swept_snapshot(true);
        assert!(
            seq.deterministic().bit_eq(&par.deterministic()),
            "deterministic metric views must be bit-identical"
        );
        for (a, b) in out_seq.iter().zip(&out_par) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
        let labels = [("strategy", "hourglass")];
        assert_eq!(
            seq.scalar("hourglass_sim_runs_total", &labels),
            out_seq.len() as f64
        );
        let total: f64 = out_seq.iter().map(|o| o.cost).sum();
        let folded = seq.scalar("hourglass_sim_total_dollars_total", &labels);
        assert!(
            (folded - total).abs() < 1e-9,
            "folded {folded} vs outcomes {total}"
        );
        let slack = seq
            .get("hourglass_sim_deadline_slack_seconds", &labels)
            .expect("slack histogram");
        assert_eq!(slack.value.count(), out_seq.len() as u64);
    }

    /// Metering a sweep changes neither outcomes nor the event stream.
    #[test]
    fn metered_sweep_is_bit_identical_to_unmetered() {
        let market = tracegen::simulation_market(52).expect("market");
        let history = tracegen::history_market(52).expect("market");
        let models = derive_eviction_models(&history, 86_400.0, 300, 5).expect("models");
        let setup = SimulationSetup::new(&market, &models);
        let job = PaperJob::Sssp
            .description(50.0, ReloadMode::Fast)
            .expect("job");
        let strategy = HourglassStrategy::new();
        let starts = [0.0, 250_000.0, 700_000.0];

        let mut plain_sink = VecSink::new();
        let plain =
            sweep_jobs(&setup, &job, &strategy, &starts, true, &mut plain_sink).expect("plain");

        let session = hm::MetricsSession::start();
        let mut bridge = MetricsBridge::new("hourglass");
        let mut metered_sink = VecSink::new();
        let mut tee = TeeSink {
            first: &mut metered_sink,
            second: &mut bridge,
        };
        let metered =
            sweep_jobs(&setup, &job, &strategy, &starts, true, &mut tee).expect("metered");
        let snapshot = session.finish();

        assert_eq!(plain.len(), metered.len());
        for (a, b) in plain.iter().zip(&metered) {
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.finish_time.to_bits(), b.finish_time.to_bits());
        }
        assert_eq!(plain_sink.events, metered_sink.events);
        assert!(!snapshot.series.is_empty(), "bridge folded nothing");
    }

    /// Without an active session the bridge records nothing.
    #[test]
    fn bridge_is_inert_without_session() {
        hm::with_metrics_disabled(|| {
            let mut bridge = MetricsBridge::new("noop");
            bridge.record(
                0,
                &SimEvent::Evict {
                    t: 10.0,
                    work_left: 0.5,
                    billed: 1.0,
                    pick: 2,
                    phase: Phase::Compute,
                },
            );
        });
        let session = hm::MetricsSession::start();
        let snapshot = session.finish();
        assert!(snapshot.series.is_empty());
        // NullSink still satisfies the sink contract alongside the bridge.
        let mut null = NullSink;
        null.record(
            0,
            &SimEvent::Evict {
                t: 10.0,
                work_left: 0.5,
                billed: 1.0,
                pick: 2,
                phase: Phase::Setup,
            },
        );
    }
}
